"""PPA-aware clustering (Algorithm 1, lines 2-10; Section 3.1).

Orchestrates the paper's clustering pipeline:

1. extract the logical hierarchy and run the dendrogram/Rent clustering
   of Algorithm 2 (when hierarchy is present),
2. turn it into grouping constraints,
3. extract the top-|P| critical paths and vectorless switching
   activity with the STA substrate,
4. compute the Eq. 3 edge scores,
5. run the enhanced multilevel FC coarsening.

Singleton clusters are deliberately left unmerged (footnote 2 of the
paper: merging them into a catch-all cluster degrades post-route PPA).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.constraints import GroupingConstraints
from repro.cluster.fc import FirstChoiceConfig, first_choice_clustering
from repro.core.costs import CostConfig, compute_edge_scores
from repro.core.hier_clustering import (
    HierarchyClusteringResult,
    hierarchy_based_clustering,
)
from repro.db.database import DesignDatabase
from repro.sta.activity import propagate_activity
from repro.sta.analysis import TimingAnalyzer
from repro.sta.delay import FanoutWireModel
from repro.sta.graph import timing_graph_for
from repro.sta.paths import find_path_ends


@dataclass
class PPAClusteringConfig:
    """Knobs of the PPA-aware clustering.

    Attributes:
        cost: Eq. 2/3 scaling factors (alpha, beta, gamma, mu).
        num_paths: |P|, the number of critical paths extracted
            (OpenSTA group count; the paper uses 100000).
        target_cluster_size: Average instances per cluster; the FC
            target cluster count is ``n / target_cluster_size``.
        min_target_clusters: Lower bound on the FC target.
        use_hierarchy: Enable Algorithm 2 grouping constraints.
        use_timing: Enable the timing cost term.
        use_switching: Enable the switching cost term.
        seed: RNG seed for the FC visit order.
    """

    cost: CostConfig = field(default_factory=CostConfig)
    num_paths: int = 100000
    target_cluster_size: int = 100
    min_target_clusters: int = 8
    max_cluster_area_factor: float = 4.0
    use_hierarchy: bool = True
    use_timing: bool = True
    use_switching: bool = True
    seed: int = 0


@dataclass
class ClusteringResult:
    """Output of the PPA-aware clustering.

    Attributes:
        cluster_of: Cluster id per instance.
        hierarchy: Algorithm 2 result (None when hierarchy disabled or
            absent).
        edge_scores: Eq. 3 numerators actually used.
        runtimes: Stage -> seconds (hier_clustering, sta, clustering).
    """

    cluster_of: np.ndarray
    hierarchy: Optional[HierarchyClusteringResult] = None
    edge_scores: Optional[np.ndarray] = None
    runtimes: Dict[str, float] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return int(self.cluster_of.max()) + 1 if len(self.cluster_of) else 0

    def members(self) -> List[List[int]]:
        """Per-cluster lists of instance indices."""
        out: List[List[int]] = [[] for _ in range(self.num_clusters)]
        for v, c in enumerate(self.cluster_of):
            out[int(c)].append(v)
        return out

    def singleton_count(self) -> int:
        """Number of singleton clusters (kept unmerged per footnote 2)."""
        sizes = np.bincount(self.cluster_of, minlength=self.num_clusters)
        return int((sizes == 1).sum())


def ppa_aware_clustering(
    db: DesignDatabase,
    config: Optional[PPAClusteringConfig] = None,
) -> ClusteringResult:
    """Run the full PPA-aware clustering pipeline on a design database."""
    config = config or PPAClusteringConfig()
    design = db.design
    hgraph = db.hypergraph
    runtimes: Dict[str, float] = {}

    # --- Algorithm 1 lines 2-7: hierarchy clustering -> constraints ---
    hierarchy_result: Optional[HierarchyClusteringResult] = None
    constraints = GroupingConstraints.none(hgraph.num_vertices)
    if config.use_hierarchy and db.hierarchy.has_hierarchy():
        t0 = time.perf_counter()
        hierarchy_result = hierarchy_based_clustering(hgraph, db.hierarchy)
        constraints = GroupingConstraints.from_clusters(hierarchy_result.cluster_of)
        runtimes["hier_clustering"] = time.perf_counter() - t0

    # --- Lines 4-5: timing paths and switching activity ----------------
    paths = None
    net_activity = None
    if config.use_timing or config.use_switching:
        t0 = time.perf_counter()
        graph = timing_graph_for(design)
        if config.use_timing and design.clock_period:
            analyzer = TimingAnalyzer(graph, FanoutWireModel(design))
            analyzer.update()
            paths = find_path_ends(analyzer, group_count=config.num_paths)
        if config.use_switching:
            net_activity = propagate_activity(graph)
        runtimes["sta"] = time.perf_counter() - t0

    # --- Line 9: enhanced multilevel clustering -------------------------
    t0 = time.perf_counter()
    edge_scores = compute_edge_scores(
        hgraph,
        config.cost,
        paths=paths if config.use_timing else None,
        net_activity=net_activity if config.use_switching else None,
        clock_period=design.clock_period,
    )
    target = max(
        config.min_target_clusters,
        hgraph.num_vertices // max(1, config.target_cluster_size),
    )
    fc_config = FirstChoiceConfig(
        target_clusters=target,
        max_cluster_area_factor=config.max_cluster_area_factor,
        seed=config.seed,
    )
    cluster_of = first_choice_clustering(
        hgraph,
        fc_config,
        edge_scores=edge_scores,
        constraints=constraints,
    )
    runtimes["clustering"] = time.perf_counter() - t0

    return ClusteringResult(
        cluster_of=cluster_of,
        hierarchy=hierarchy_result,
        edge_scores=edge_scores,
        runtimes=runtimes,
    )
