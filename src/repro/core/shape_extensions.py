"""Non-rectangular cluster shapes (the paper's future work).

The conclusion of the paper lists "the effects of different cluster
shapes (L-shaped, diamond, circle, etc.) on placement" as ongoing
research.  This module implements the L-shaped variant on top of the
existing V-P&R framework: an L-shaped virtual die is realised as the
bounding rectangle with one corner blocked by a fixed dummy macro, so
the same placer/router evaluate it without modification, and the same
Total Cost (Eqs. 4-5) ranks it against the rectangular candidates.

``sweep_with_lshapes`` extends a cluster's 20-candidate sweep with
L-shaped variants and reports whether any L-shape beats the best
rectangle — the experiment behind the extension bench
(benchmarks/bench_ext_lshape.py).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.shapes import ShapeCandidate
from repro.core.vpr import (
    CandidateEvaluation,
    VPRFramework,
    _configure_virtual_die,
)
from repro.netlist.design import Design, MasterCell
from repro.place.placer import GlobalPlacer, PlacerConfig
from repro.place.problem import PlacementProblem
from repro.place.hpwl import net_hpwl
from repro.route.gcell import GCellGrid
from repro.route.global_route import GlobalRouter

#: Corner the L-shape cuts out.
CORNERS = ("ne", "nw", "se", "sw")


@dataclass(frozen=True)
class LShapeCandidate:
    """An L-shaped cluster die.

    The shape is the ``aspect_ratio``/``utilization`` bounding rectangle
    with a ``notch_fraction`` x ``notch_fraction`` corner removed; the
    bounding box is inflated so the usable area still realises the
    requested utilization.

    Attributes:
        aspect_ratio: Height / width of the bounding rectangle.
        utilization: Cell area / usable (non-notched) area.
        notch_fraction: Side fraction of the removed corner square
            (0.5 removes a quarter of the bounding box).
        corner: Which corner is removed ("ne", "nw", "se", "sw").
    """

    aspect_ratio: float
    utilization: float
    notch_fraction: float = 0.5
    corner: str = "ne"

    def bounding_dimensions(self, cell_area: float) -> Tuple[float, float]:
        """Bounding-rectangle (width, height) for a cell area."""
        usable_fraction = 1.0 - self.notch_fraction**2
        footprint = cell_area / (self.utilization * usable_fraction)
        width = math.sqrt(footprint / self.aspect_ratio)
        return width, footprint / width

    def notch_rect(
        self, width: float, height: float, margin: float
    ) -> Tuple[float, float, float, float]:
        """Blocked rectangle (llx, lly, urx, ury) in die coordinates."""
        nw = self.notch_fraction * width
        nh = self.notch_fraction * height
        if self.corner == "ne":
            return margin + width - nw, margin + height - nh, margin + width, margin + height
        if self.corner == "nw":
            return margin, margin + height - nh, margin + nw, margin + height
        if self.corner == "se":
            return margin + width - nw, margin, margin + width, margin + nh
        if self.corner == "sw":
            return margin, margin, margin + nw, margin + nh
        raise ValueError(f"unknown corner {self.corner!r}")

    def __str__(self) -> str:
        return (
            f"L({self.corner})/AR={self.aspect_ratio:.2f}"
            f"/U={self.utilization:.2f}/n={self.notch_fraction:.2f}"
        )


def default_lshape_candidates(
    notch_fraction: float = 0.5,
) -> List[LShapeCandidate]:
    """A modest L-shape grid: square-ish bounding boxes, all corners."""
    out = []
    for ar in (0.75, 1.0, 1.5):
        for util in (0.80, 0.90):
            for corner in CORNERS:
                out.append(
                    LShapeCandidate(
                        aspect_ratio=ar,
                        utilization=util,
                        notch_fraction=notch_fraction,
                        corner=corner,
                    )
                )
    return out


class LShapeVPRFramework(VPRFramework):
    """V-P&R extended with L-shaped candidates.

    Rectangular candidates are evaluated by the base framework;
    L-shaped candidates block the notch with a fixed dummy macro so the
    placer's density spreading and the router's congestion both see the
    unusable corner.
    """

    def evaluate_lshape(
        self, sub: Design, cell_area: float, candidate: LShapeCandidate
    ) -> CandidateEvaluation:
        """Place + route the sub-netlist on an L-shaped virtual die."""
        config = self.config
        width, height = candidate.bounding_dimensions(max(cell_area, 1e-6))
        rect_equiv = ShapeCandidate(
            aspect_ratio=height / width,
            utilization=cell_area / (width * height),
        )
        _configure_virtual_die(sub, cell_area, rect_equiv, config.die_margin)

        # Block the notch with a fixed dummy macro.
        llx, lly, urx, ury = candidate.notch_rect(
            width, height, config.die_margin
        )
        blockage_master = MasterCell(
            name="__lshape_blockage__",
            width=urx - llx,
            height=ury - lly,
            is_macro=True,
            cell_class="macro",
        )
        sub.masters.pop("__lshape_blockage__", None)
        if sub.has_instance("__lshape_blockage__"):
            raise RuntimeError("blockage already present")  # pragma: no cover
        blockage = sub.add_instance("__lshape_blockage__", blockage_master)
        blockage.x = 0.5 * (llx + urx)
        blockage.y = 0.5 * (lly + ury)
        blockage.fixed = True
        try:
            problem = PlacementProblem(sub)
            GlobalPlacer(
                problem,
                PlacerConfig(
                    max_iterations=config.placer_iterations,
                    min_iterations=2,
                    target_overflow=0.15,
                    seed=config.seed,
                ),
            ).run()
            grid = GCellGrid.for_floorplan(
                sub.floorplan, target_cells=config.route_target_cells
            )
            routing = GlobalRouter(sub, grid=grid).run()
            nets = [n for n in sub.nets if n.degree >= 2]
            hpwl_avg = (
                sum(net_hpwl(sub, n) for n in nets) / len(nets) if nets else 0.0
            )
            fp = sub.floorplan
            hpwl_cost = hpwl_avg / max(fp.core_width + fp.core_height, 1e-9)
            congestion_cost = routing.top_percent_congestion(
                config.top_x_percent
            )
        finally:
            # Remove the blockage so the sub-netlist can be reused.
            sub.instances.remove(blockage)
            for i, inst in enumerate(sub.instances):
                inst.index = i
            sub._instance_by_name.pop("__lshape_blockage__", None)
            sub.masters.pop("__lshape_blockage__", None)
        return CandidateEvaluation(
            candidate=rect_equiv,  # bounding-box equivalent for records
            hpwl_cost=hpwl_cost,
            congestion_cost=congestion_cost,
        )

    def sweep_with_lshapes(
        self,
        source: Design,
        member_indices: Sequence[int],
        lshape_candidates: Optional[Sequence[LShapeCandidate]] = None,
    ) -> dict:
        """Sweep rectangles + L-shapes; returns the comparison record.

        Returns a dict with the best rectangular and L-shaped Total
        Costs and whether an L-shape wins (the extension study's
        question).
        """
        sub, cell_area = self.induce(source, member_indices)
        delta = self.config.delta

        rect_evals = [
            self.evaluate_candidate(sub, cell_area, c)
            for c in self.config.candidates
        ]
        best_rect = min(rect_evals, key=lambda e: e.total(delta))

        lshapes = list(lshape_candidates or default_lshape_candidates())
        lshape_results = []
        for candidate in lshapes:
            evaluation = self.evaluate_lshape(sub, cell_area, candidate)
            lshape_results.append((candidate, evaluation))
        best_l = min(lshape_results, key=lambda ce: ce[1].total(delta))

        return {
            "best_rect_cost": best_rect.total(delta),
            "best_rect": best_rect.candidate,
            "best_lshape_cost": best_l[1].total(delta),
            "best_lshape": best_l[0],
            "lshape_wins": best_l[1].total(delta) < best_rect.total(delta),
            "num_rect": len(rect_evals),
            "num_lshape": len(lshape_results),
        }
