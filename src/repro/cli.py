"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``flow`` — run the clustered placement flow (or a baseline) on a
  benchmark or on netlist files, printing the PPA metrics.
* ``bench-table`` — print Table 1 (benchmark statistics).
* ``cluster`` — run PPA-aware clustering only and report the summary.
* ``sta`` — timing/power report on a placed benchmark.
* ``viz`` — render placement / cluster / congestion SVGs.
* ``report`` — inspect or diff telemetry run reports (``run.json`` files
  or the run directories holding them); ``report diff A B`` exits
  non-zero when a QoR stream regressed.
* ``top`` — live single-screen view of a monitored run directory
  (``flow --telemetry DIR --monitor``), from any process.
* ``cache`` — manage the cross-run V-P&R evaluation cache
  (``stats`` / ``gc`` / ``clear``); see ``flow --cache DIR``.
* ``worker`` — fleet worker process for a distributed V-P&R sweep:
  dials a ``flow --fleet`` parent and evaluates sweep chunks remotely;
  see ``docs/performance.md``, "Distributed sweep".
* ``serve`` — long-lived flow job server: an async job queue over a
  bounded worker pool, every job sharing one evaluation cache; see
  ``docs/serving.md``.

All commands accept ``--seed`` for determinism.  See ``--help`` of each
subcommand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _add_flow_parser(subparsers) -> None:
    p = subparsers.add_parser("flow", help="run a placement flow")
    p.add_argument("--benchmark", default="aes", help="benchmark name (Table 1)")
    p.add_argument(
        "--flow",
        default="ours",
        choices=["ours", "default", "blob"],
        help="ours = Algorithm 1; default = flat placement; blob = [9]",
    )
    p.add_argument(
        "--tool", default="openroad", choices=["openroad", "innovus"]
    )
    p.add_argument(
        "--clustering",
        default="ppa",
        choices=["ppa", "mfc", "leiden", "louvain", "bc", "ec"],
    )
    p.add_argument(
        "--shapes",
        default="vpr",
        choices=["vpr", "uniform", "random"],
        help="cluster shape selector",
    )
    p.add_argument("--no-routing", action="store_true", help="stop post-place")
    p.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="checkpoint each completed flow stage (and each V-P&R work "
        "item) to DIR so an interrupted run can be resumed "
        "(--flow ours only); see docs/recovery.md",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint DIR instead of starting fresh; "
        "the resumed run reproduces the uninterrupted run's QoR bit "
        "for bit",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        help="serve V-P&R candidate evaluations from (and store them "
        "into) a content-addressed cross-run cache in DIR; warm "
        "results are byte-identical to cold (--flow ours only); see "
        "docs/performance.md",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool width for the V-P&R sweep (results are "
        "identical to a serial run)",
    )
    p.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="run the V-P&R sweep on a distributed worker fleet of N "
        "workers instead of the in-process pool (QoR is byte-identical "
        "either way); see docs/performance.md, 'Distributed sweep'",
    )
    p.add_argument(
        "--fleet-listen",
        metavar="HOST:PORT",
        default=None,
        help="address the fleet parent listens on (default "
        "127.0.0.1:0 — loopback, ephemeral port; bind a routable "
        "address to accept workers from other hosts)",
    )
    p.add_argument(
        "--fleet-external",
        action="store_true",
        help="with --fleet: do not spawn local workers — wait for N "
        "externally launched `repro worker --connect HOST:PORT` "
        "processes (e.g. over ssh) to dial in",
    )
    p.add_argument(
        "--perf-report",
        help="write a repro.perf JSON report (stage timings, counters, "
        "cache hit rates) to this path; also honours REPRO_PROFILE=<path> "
        "for a cProfile dump",
    )
    p.add_argument(
        "--telemetry",
        metavar="DIR",
        help="enable flow-wide telemetry (tracing spans, QoR metric "
        "streams, structured events) and write DIR/run.json, "
        "DIR/report.html and DIR/events.jsonl",
    )
    p.add_argument(
        "--monitor",
        action="store_true",
        help="with --telemetry: run the live flight recorder — a "
        "background RSS/CPU sampler, per-loop progress accounting and "
        "an atomically-refreshed DIR/status.json that `repro top DIR` "
        "renders from any process; see docs/observability.md",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--report", help="write a QoR JSON report to this path")
    p.add_argument("--verilog", help=".v netlist (overrides --benchmark)")
    p.add_argument("--liberty", help=".lib library (with --verilog)")
    p.add_argument("--def", dest="def_file", help=".def floorplan")
    p.add_argument("--sdc", help=".sdc constraints")
    p.add_argument(
        "--generator",
        metavar="JSON",
        help="generate the design from DesignSpec parameters given as a "
        "JSON object (overrides --benchmark), e.g. "
        '\'{"name": "tiny", "num_instances": 600}\'',
    )


def _add_simple_parsers(subparsers) -> None:
    subparsers.add_parser("bench-table", help="print Table 1 statistics")

    p = subparsers.add_parser("cluster", help="run PPA-aware clustering only")
    p.add_argument("--benchmark", default="aes")
    p.add_argument("--target-size", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)

    p = subparsers.add_parser("sta", help="place + timing/power report")
    p.add_argument("--benchmark", default="aes")
    p.add_argument("--paths", type=int, default=5, help="critical paths shown")
    p.add_argument("--seed", type=int, default=0)

    p = subparsers.add_parser(
        "viz", help="render placement / cluster / congestion SVGs"
    )
    p.add_argument("--benchmark", default="aes")
    p.add_argument("--out", default="/tmp/repro_viz", help="output directory")
    p.add_argument("--seed", type=int, default=0)

    p = subparsers.add_parser(
        "report", help="inspect / diff telemetry run reports"
    )
    rsub = p.add_subparsers(dest="report_command", required=True)
    d = rsub.add_parser(
        "diff",
        help="compare two run.json files; exit 1 when a QoR stream "
        "regressed past the thresholds",
    )
    d.add_argument(
        "baseline", help="baseline run.json (or a run directory)"
    )
    d.add_argument(
        "candidate", help="candidate run.json (or a run directory)"
    )
    d.add_argument(
        "--rel",
        type=float,
        default=0.05,
        help="relative worsening threshold (default 0.05 = 5%%)",
    )
    d.add_argument(
        "--abs",
        dest="abs_threshold",
        type=float,
        default=1e-9,
        help="absolute worsening threshold",
    )
    d.add_argument(
        "--stream",
        action="append",
        dest="streams",
        help="limit the gate to these streams (repeatable; a named "
        "stream missing from either run counts as a regression)",
    )
    s = rsub.add_parser("show", help="summarise one run.json")
    s.add_argument("path", help="run.json (or a run directory) to summarise")
    s.add_argument(
        "--html", help="also render a self-contained HTML report here"
    )

    t = subparsers.add_parser(
        "top", help="live view of a monitored run directory"
    )
    t.add_argument(
        "rundir",
        help="run directory of a `flow --telemetry DIR --monitor` run",
    )
    t.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (for scripts / CI logs)",
    )
    t.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between frames (default 1.0)",
    )
    t.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="stop after this many seconds even if the run is still "
        "going (default: poll until the run leaves the running state)",
    )

    p = subparsers.add_parser(
        "cache", help="manage the cross-run V-P&R evaluation cache"
    )
    csub = p.add_subparsers(dest="cache_command", required=True)
    c = csub.add_parser("stats", help="entry count and total bytes stored")
    c.add_argument("directory", help="cache directory (flow --cache DIR)")
    c = csub.add_parser(
        "gc", help="evict least-recently-used entries past the bounds"
    )
    c.add_argument("directory", help="cache directory")
    c.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="entry-count bound (default: the store's built-in bound)",
    )
    c.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="total-size bound in bytes (default: unlimited)",
    )
    c = csub.add_parser("clear", help="remove every cached entry")
    c.add_argument("directory", help="cache directory")

    p = subparsers.add_parser(
        "eco",
        help="incremental ECO: apply a netlist edit script to a "
        "checkpointed run and recompute QoR in seconds",
    )
    p.add_argument(
        "checkpoint",
        help="checkpoint directory of a *finished* `flow ours "
        "--checkpoint DIR` run (must contain the eco_base snapshot)",
    )
    p.add_argument(
        "--edits",
        required=True,
        metavar="FILE",
        help="JSON edit script (schema repro.eco/1): resize / swap / "
        "add / remove cell, reconnect pin; an empty list replays the "
        "checkpointed metrics bit-identically",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="evaluation cache the base run used; unchanged-cluster "
        "sweeps become pure cache hits and hot entries are "
        "mtime-touched so GC keeps them warm",
    )
    p.add_argument(
        "--report",
        metavar="FILE",
        help="write the updated metrics + reuse summary as JSON",
    )
    p.add_argument(
        "--perf-report",
        help="write a repro.perf JSON report (eco.* counters, stage "
        "timings) to this path",
    )
    p.add_argument(
        "--telemetry",
        metavar="DIR",
        help="write eco.* spans/events + run.json to DIR (same layout "
        "as flow --telemetry)",
    )
    p.add_argument(
        "--monitor",
        action="store_true",
        help="with --telemetry: live status.json progress (eco.edits / "
        "vpr.items / eco.gp.iters tasks) for `repro top DIR`",
    )

    p = subparsers.add_parser(
        "worker",
        help="fleet worker for a distributed V-P&R sweep "
        "(dials a `flow --fleet` parent)",
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the sweep parent's fleet listener (printed by "
        "`flow --fleet ... --fleet-listen`)",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="read V-P&R evaluations from this cache directory instead "
        "of the parent's path (use '' to disable the cache on this "
        "worker); workers only read — the parent is the single writer",
    )
    p.add_argument(
        "--reconnect",
        type=int,
        default=0,
        metavar="N",
        help="extra connection attempts after a refused dial or a "
        "dropped parent (default 0)",
    )
    p.add_argument(
        "--reconnect-delay",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds between connection attempts (default 1.0)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress status lines"
    )

    p = subparsers.add_parser(
        "serve",
        help="long-lived flow job server on a shared evaluation cache",
    )
    p.add_argument(
        "--run-root",
        default="serve-run",
        help="directory for server.json and per-job telemetry dirs "
        "(default ./serve-run)",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="shared evaluation cache all jobs read and write "
        "(default RUN_ROOT/cache); content-addressed keys make it "
        "naturally multi-tenant",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="flow-worker pool width = max concurrent jobs (each job "
        "runs in its own runner subprocess; default 2)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8181,
        help="TCP port (0 picks an ephemeral port, published in "
        "RUN_ROOT/server.json)",
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="kill a runner exceeding this many seconds and mark the "
        "job failed (default: unbounded)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PPA-relevant clustering-driven placement (DAC 2024 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_flow_parser(subparsers)
    _add_simple_parsers(subparsers)
    return parser


def _load_design(args):
    if getattr(args, "generator", None):
        import dataclasses
        import json

        from repro.designs.generator import DesignSpec, generate_design

        try:
            params = json.loads(args.generator)
        except ValueError as exc:
            raise SystemExit(f"--generator: invalid JSON: {exc}")
        if not isinstance(params, dict):
            raise SystemExit("--generator expects a JSON object")
        known = {f.name for f in dataclasses.fields(DesignSpec)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise SystemExit(
                f"--generator: unknown DesignSpec field(s): {unknown}"
            )
        return generate_design(DesignSpec(**params))
    if getattr(args, "verilog", None):
        from repro.db import load_design_files

        if not args.liberty:
            raise SystemExit("--verilog requires --liberty")
        db = load_design_files(
            args.verilog,
            args.liberty,
            def_path=args.def_file,
            sdc_path=args.sdc,
        )
        return db.design
    from repro.designs import load_benchmark

    return load_benchmark(args.benchmark, use_cache=False)


def _cmd_flow(args) -> int:
    import contextlib
    import os

    from repro import perf
    from repro.core import (
        ClusteredPlacementFlow,
        FlowConfig,
        blob_placement_flow,
        default_flow,
    )
    from repro.core.vpr import RandomShapeSelector, UniformShapeSelector

    perf_path = getattr(args, "perf_report", None)
    telemetry_dir = getattr(args, "telemetry", None)
    monitor_on = bool(getattr(args, "monitor", False))
    if monitor_on and not telemetry_dir:
        raise SystemExit("--monitor requires --telemetry DIR")
    if perf_path or telemetry_dir:
        # Telemetry runs embed the perf report in run.json.
        perf.enable()
        perf.reset()
    if telemetry_dir:
        from repro import telemetry

        telemetry.enable(telemetry_dir)
        telemetry.event(
            "run.config",
            command="flow",
            benchmark=getattr(args, "benchmark", None),
            flow=args.flow,
            tool=args.tool,
            clustering=args.clustering,
            shapes=args.shapes,
            routing=not args.no_routing,
            jobs=args.jobs,
            seed=args.seed,
            version=__version__,
        )
    profile_path = os.environ.get("REPRO_PROFILE")
    profile_ctx = (
        perf.cprofile_to(profile_path, top=25)
        if profile_path
        else contextlib.nullcontext()
    )

    checkpoint_dir = getattr(args, "checkpoint", None)
    if args.resume and not checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint DIR")
    if checkpoint_dir and args.flow != "ours":
        raise SystemExit("--checkpoint is only supported with --flow ours")
    cache_dir = getattr(args, "cache", None)
    if cache_dir and args.flow != "ours":
        raise SystemExit("--cache is only supported with --flow ours")
    if getattr(args, "fleet", 0) and args.flow != "ours":
        raise SystemExit("--fleet is only supported with --flow ours")

    design = _load_design(args)
    run_routing = not args.no_routing
    monitor_summary = None
    if monitor_on:
        from repro import monitor

        monitor.enable(telemetry_dir)
        monitor.set_meta(
            design=design.name, flow=args.flow, jobs=args.jobs, seed=args.seed
        )
    try:
        with profile_ctx:
            if args.flow == "default":
                result = default_flow(
                    design, tool=args.tool, run_routing=run_routing, seed=args.seed
                )
            elif args.flow == "blob":
                result = blob_placement_flow(
                    design, run_routing=run_routing, seed=args.seed
                )
            else:
                selector = None
                if args.shapes == "uniform":
                    selector = UniformShapeSelector()
                elif args.shapes == "random":
                    selector = RandomShapeSelector(seed=args.seed)
                config = FlowConfig(
                    tool=args.tool,
                    clustering=args.clustering,
                    shape_selector=selector,
                    run_routing=run_routing,
                    jobs=args.jobs,
                    seed=args.seed,
                    checkpoint_dir=checkpoint_dir,
                    resume=args.resume,
                    cache_dir=cache_dir,
                    fleet_workers=max(0, getattr(args, "fleet", 0)),
                    fleet_listen=getattr(args, "fleet_listen", None),
                    fleet_spawn=not getattr(args, "fleet_external", False),
                )
                result = ClusteredPlacementFlow(config).run(design)
    except BaseException as exc:
        # Leave a final "failed" status.json behind so `repro top` (and
        # anything polling the run) sees why the updates stopped.
        if monitor_on:
            from repro import monitor

            monitor.disable(state="failed", error=repr(exc))
        raise
    if monitor_on:
        from repro import monitor

        session = monitor.get_monitor()
        monitor.disable(state="done")
        monitor_summary = session.summary() if session is not None else None

    if perf_path:
        report = perf.report(
            meta={
                "design": design.name,
                "flow": args.flow,
                "jobs": args.jobs,
                "seed": args.seed,
            }
        )
        report.write(perf_path)
        print(f"wrote perf report to {perf_path}")
        for line in report.summary_lines():
            print(f"  {line}")

    if getattr(args, "report", None):
        from repro.core.reporting import write_qor_json

        write_qor_json(args.report, result, design)
        print(f"wrote QoR report to {args.report}")

    if telemetry_dir:
        from repro import telemetry
        from repro.core.reporting import flow_qor_summary
        from repro.telemetry import render_html

        run = telemetry.run_report(
            meta={
                "design": design.name,
                "instances": design.num_instances,
                "flow": args.flow,
                "tool": args.tool,
                "clustering": args.clustering,
                "shapes": args.shapes,
                "jobs": args.jobs,
                "seed": args.seed,
                "version": __version__,
            },
            qor=flow_qor_summary(result),
            perf=perf.report().to_dict(),
            monitor=monitor_summary,
        )
        run_path = os.path.join(telemetry_dir, "run.json")
        run.write(run_path)
        render_html(run, os.path.join(telemetry_dir, "report.html"))
        telemetry.disable()
        print(
            f"wrote telemetry to {telemetry_dir} "
            f"({len(run.metrics)} streams, {len(run.spans)} spans, "
            f"{len(run.events)} events)"
        )

    m = result.metrics
    print(f"design        : {design.name} ({design.num_instances} instances)")
    if result.num_clusters:
        print(f"clusters      : {result.num_clusters}")
    print(f"HPWL          : {m.hpwl:.1f} um")
    if m.rwl is not None:
        print(f"routed WL     : {m.rwl:.1f} um")
        print(f"WNS           : {m.wns * 1e3:.0f} ps")
        print(f"TNS           : {m.tns:.3f} ns")
        print(f"power         : {m.power:.3f} mW")
    print(f"placement CPU : {m.placement_runtime:.2f} s")
    for stage, seconds in sorted(m.runtimes.items()):
        print(f"  {stage:<18}: {seconds:.3f} s")
    return 0


def _cmd_bench_table(_args) -> int:
    from repro.designs import benchmark_table

    print(f"{'design':<16}{'#insts':>9}{'#nets':>9}{'TCP':>7}{'macros':>8}")
    for row in benchmark_table():
        print(
            f"{row['design']:<16}{row['instances']:>9}{row['nets']:>9}"
            f"{row['tcp_or']:>7.2f}{row['macros']:>8}"
        )
    return 0


def _cmd_cluster(args) -> int:
    from repro.core.ppa_clustering import (
        PPAClusteringConfig,
        ppa_aware_clustering,
    )
    from repro.db import DesignDatabase

    design = _load_design(args)
    db = DesignDatabase(design)
    result = ppa_aware_clustering(
        db,
        PPAClusteringConfig(target_cluster_size=args.target_size, seed=args.seed),
    )
    sizes = sorted((len(m) for m in result.members()), reverse=True)
    print(f"design     : {design.name}")
    print(f"clusters   : {result.num_clusters}")
    print(f"singletons : {result.singleton_count()}")
    print(f"largest    : {sizes[:5]}")
    if result.hierarchy is not None:
        print(f"hier level : {result.hierarchy.best_level}")
        print(
            "rent/level : "
            + ", ".join(
                f"{lvl}:{r:.3f}"
                for lvl, r in sorted(result.hierarchy.rent_by_level.items())
            )
        )
    cut = db.hypergraph.cut_size(result.cluster_of)
    print(f"cut weight : {cut:.1f} / {db.hypergraph.edge_weights.sum():.1f}")
    return 0


def _cmd_sta(args) -> int:
    from repro.place import GlobalPlacer, PlacementProblem, PlacerConfig
    from repro.sta import (
        PlacementWireModel,
        TimingAnalyzer,
        find_path_ends,
        propagate_activity,
        analyze_power,
        timing_graph_for,
    )

    design = _load_design(args)
    GlobalPlacer(PlacementProblem(design), PlacerConfig(seed=args.seed)).run()
    graph = timing_graph_for(design)
    analyzer = TimingAnalyzer(graph, PlacementWireModel(design))
    report = analyzer.update()
    print(f"WNS : {report.wns * 1e3:.0f} ps")
    print(f"TNS : {report.tns:.3f} ns")
    print(f"failing endpoints: {report.num_failing}/{len(report.endpoint_slacks)}")
    for path in find_path_ends(analyzer, group_count=args.paths):
        print(
            f"  {path.slack * 1e3:>8.0f} ps  "
            f"{graph.node_name(path.startpoint)} -> "
            f"{graph.node_name(path.endpoint)} ({len(path) // 2} stages)"
        )
    activity = propagate_activity(graph)
    power = analyze_power(design, PlacementWireModel(design), net_activity=activity)
    print(
        f"power: {power.total:.3f} mW (sw {power.switching:.3f}, "
        f"int {power.internal:.3f}, leak {power.leakage:.4f})"
    )
    return 0


def _cmd_viz(args) -> int:
    from pathlib import Path

    from repro.core.ppa_clustering import ppa_aware_clustering
    from repro.db import DesignDatabase
    from repro.place import GlobalPlacer, PlacementProblem, PlacerConfig
    from repro.route import GlobalRouter
    from repro.viz import (
        render_clusters_svg,
        render_congestion_svg,
        render_placement_svg,
    )

    design = _load_design(args)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(db)
    GlobalPlacer(PlacementProblem(design), PlacerConfig(seed=args.seed)).run()
    routing = GlobalRouter(design).run()
    for kind, path in (
        ("placement", out_dir / f"{design.name}_placement.svg"),
        ("clusters", out_dir / f"{design.name}_clusters.svg"),
        ("congestion", out_dir / f"{design.name}_congestion.svg"),
    ):
        if kind == "placement":
            render_placement_svg(design, path=str(path))
        elif kind == "clusters":
            render_clusters_svg(design, clustering.cluster_of, path=str(path))
        else:
            render_congestion_svg(design, routing.grid, path=str(path))
        print(f"wrote {path}")
    return 0


def _resolve_run_json(path: str) -> str:
    """Accept either a run.json path or the run directory holding one.

    A directory without a ``run.json`` fails with a diagnosis instead
    of a traceback: the event log (read tolerantly, so an in-flight
    write cannot break the message) tells whether the run is still
    going — in which case ``repro top`` is the right tool — or never
    finished.
    """
    import os

    if not os.path.isdir(path):
        return path
    candidate = os.path.join(path, "run.json")
    if os.path.isfile(candidate):
        return candidate
    from repro.telemetry.events import iter_events

    n_events = sum(
        1 for _ in iter_events(os.path.join(path, "events.jsonl"))
    )
    hint = (
        f" Its event log has {n_events} record(s), so a run started but "
        f"has not written run.json — if it is still in flight, watch it "
        f"with `repro top {path}`."
        if n_events
        else " No event log either — was this directory passed to "
        "`flow --telemetry`?"
    )
    raise SystemExit(
        f"error: no run.json in {path} (a completed `flow --telemetry` "
        f"run writes one).{hint}"
    )


def _cmd_report(args) -> int:
    from repro.telemetry import RunReport, diff_runs, render_html

    if args.report_command == "diff":
        diff = diff_runs(
            RunReport.load(_resolve_run_json(args.baseline)),
            RunReport.load(_resolve_run_json(args.candidate)),
            rel_threshold=args.rel,
            abs_threshold=args.abs_threshold,
            streams=args.streams,
        )
        for delta in diff.deltas:
            print(delta.describe())
        if not diff.ok:
            print(f"FAIL: {len(diff.regressions)} stream(s) regressed")
            return 1
        print("ok: no regressions")
        return 0

    report = RunReport.load(_resolve_run_json(args.path))
    for key in sorted(report.meta):
        print(f"{key:<12}: {report.meta[key]}")
    print(f"{'spans':<12}: {len(report.spans)} ({len(report.span_tree())} roots)")
    print(f"{'events':<12}: {len(report.events)}")
    print(f"{'streams':<12}: {len(report.metrics)}")
    for name in sorted(report.metrics):
        stream = report.metrics[name]
        n = len(stream.get("values") or [])
        final = report.stream_final(name)
        final_text = f"{final:.6g}" if final is not None else "-"
        print(f"  {name:<24} n={n:<5} final={final_text}")
    if report.qor:
        print("qor:")
        for key in sorted(report.qor):
            print(f"  {key:<24} {report.qor[key]:.6g}")
    if report.monitor:
        peak = report.monitor.get("peak_rss_bytes") or 0
        print(
            f"{'monitor':<12}: peak RSS {peak / (1024 * 1024):.1f} MiB "
            f"over {report.monitor.get('samples', 0)} samples"
        )
        for name, stage_peak in sorted(
            (report.monitor.get("stage_peak_rss_bytes") or {}).items()
        ):
            print(f"  {name:<24} peak {stage_peak / (1024 * 1024):.1f} MiB")
        for task in report.monitor.get("progress") or []:
            print(
                f"  {task.get('name', '?'):<24} "
                f"{task.get('done')}/{task.get('total')} {task.get('unit')}"
            )
    if getattr(args, "html", None):
        render_html(report, args.html)
        print(f"wrote {args.html}")
    return 0


def _cmd_top(args) -> int:
    from repro.monitor.top import run_top

    return run_top(
        args.rundir,
        once=args.once,
        interval=args.interval,
        timeout=args.timeout,
    )


def _cmd_cache(args) -> int:
    from repro.cache import EvaluationCache, derive_cache_summary

    cache = EvaluationCache(args.directory)
    if args.cache_command == "stats":
        stats = cache.stats()
        totals = cache.read_totals()
        summary = derive_cache_summary(
            totals["hits"], totals["misses"], totals["stores"], stats
        )
        print(f"directory     : {args.directory}")
        print(f"entries       : {summary['entries']}")
        print(f"bytes on disk : {summary['bytes_on_disk']}")
        print(f"hits          : {summary['hits']}")
        print(f"misses        : {summary['misses']}")
        print(f"stores        : {summary['stores']}")
        print(f"hit ratio     : {summary['hit_ratio']:.3f}")
        return 0
    if args.cache_command == "gc":
        evicted = cache.gc(
            max_entries=args.max_entries, max_bytes=args.max_bytes
        )
        stats = cache.stats()
        print(f"evicted {evicted} entries; {stats.entries} remain")
        return 0
    removed = cache.clear()
    print(f"removed {removed} entries")
    return 0


def _cmd_eco(args) -> int:
    import json
    import os

    from repro import perf
    from repro.eco import EcoError, load_edit_script, run_eco
    from repro.recovery import CheckpointError

    telemetry_dir = getattr(args, "telemetry", None)
    monitor_on = bool(getattr(args, "monitor", False))
    if monitor_on and not telemetry_dir:
        raise SystemExit("--monitor requires --telemetry DIR")
    if args.perf_report or telemetry_dir:
        perf.enable()
        perf.reset()
    if telemetry_dir:
        from repro import telemetry

        telemetry.enable(telemetry_dir)
        telemetry.event(
            "run.config", command="eco", checkpoint=args.checkpoint
        )
    if monitor_on:
        from repro import monitor

        monitor.enable(telemetry_dir)
        monitor.set_meta(command="eco", checkpoint=args.checkpoint)
    try:
        edits = load_edit_script(args.edits)
        result = run_eco(args.checkpoint, edits, cache_dir=args.cache)
    except (EcoError, CheckpointError) as exc:
        if monitor_on:
            from repro import monitor

            monitor.disable(state="failed", error=repr(exc))
        raise SystemExit(f"eco: {exc}")
    except BaseException as exc:
        if monitor_on:
            from repro import monitor

            monitor.disable(state="failed", error=repr(exc))
        raise
    if monitor_on:
        from repro import monitor

        monitor.disable(state="done")

    summary = result.summary()
    if telemetry_dir:
        from repro import telemetry

        run = telemetry.run_report(
            meta={"command": "eco", "checkpoint": args.checkpoint,
                  "edits": len(edits)},
            qor=result.qor_summary(),
            perf=perf.report().to_dict(),
        )
        run.write(os.path.join(telemetry_dir, "run.json"))
        telemetry.disable()
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote ECO report to {args.report}")
    if args.perf_report:
        report = perf.report(
            meta={"checkpoint": args.checkpoint, "edits": len(edits)}
        )
        report.write(args.perf_report)
        print(f"wrote perf report to {args.perf_report}")

    m = result.metrics
    print(f"edits         : {len(edits)}" + (" (no-op)" if result.noop else ""))
    if not result.noop:
        print(
            f"clusters      : {len(result.dirty_clusters)} dirty, "
            f"{result.reused_clusters} reused "
            f"(re-swept: {len(result.resweep_clusters)})"
        )
        print(
            f"instances     : {result.free_instances} re-placed / "
            f"{result.total_instances}"
        )
    print(f"HPWL          : {m.hpwl:.1f} um")
    if m.rwl:
        print(f"routed WL     : {m.rwl:.1f} um")
        print(f"WNS / TNS     : {m.wns:.4f} / {m.tns:.4f} ns")
        print(f"power         : {m.power:.3f} mW")
    print(f"eco runtime   : {result.runtimes.get('eco_total', 0.0):.2f} s")
    return 0


def _cmd_worker(args) -> int:
    from repro.core.worker import run_worker

    return run_worker(
        args.connect,
        cache_dir=args.cache,
        reconnect=args.reconnect,
        reconnect_delay=args.reconnect_delay,
        quiet=args.quiet,
    )


def _cmd_serve(args) -> int:
    from repro.serve import run_serve

    return run_serve(
        args.run_root,
        cache_dir=args.cache,
        workers=args.workers,
        host=args.host,
        port=args.port,
        job_timeout=args.job_timeout,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "flow": _cmd_flow,
        "bench-table": _cmd_bench_table,
        "cluster": _cmd_cluster,
        "sta": _cmd_sta,
        "viz": _cmd_viz,
        "report": _cmd_report,
        "top": _cmd_top,
        "cache": _cmd_cache,
        "eco": _cmd_eco,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
