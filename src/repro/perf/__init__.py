"""Performance instrumentation for the flow's hot paths.

The package provides three layers:

* :mod:`repro.perf.timers` — a process-wide :class:`PerfRegistry` of
  hierarchical stage timers and event counters.  Disabled by default;
  when disabled every hook degenerates to a shared no-op object so the
  instrumented code pays (almost) nothing.
* :mod:`repro.perf.report` — :class:`PerfReport`, the JSON-serialisable
  snapshot the flow/CLI emit (``--perf-report``).
* :mod:`repro.perf.profile` — an optional :func:`cprofile_to` hook that
  wraps a block in :mod:`cProfile` and dumps pstats to disk.

Typical use::

    from repro import perf

    perf.enable()
    with perf.stage("flow/vpr"):
        ...
    perf.count("steiner.rsmt.hit")
    report = perf.report()          # PerfReport
    report.write("perf.json")
"""

from repro.perf.profile import cprofile_to
from repro.perf.report import PerfReport
from repro.perf.rss import cpu_seconds, peak_rss_bytes, rss_bytes
from repro.perf.timers import (
    PerfRegistry,
    count,
    counter_value,
    disable,
    enable,
    get_registry,
    is_enabled,
    merge_counters,
    reset,
    stage,
)


def report(meta=None) -> PerfReport:
    """Snapshot the default registry into a :class:`PerfReport`.

    ``meta`` is free-form run context recorded in the report (design
    name, jobs, seed, ...).
    """
    return PerfReport.from_registry(get_registry(), meta=meta)


__all__ = [
    "PerfRegistry",
    "PerfReport",
    "cprofile_to",
    "count",
    "counter_value",
    "cpu_seconds",
    "disable",
    "enable",
    "get_registry",
    "is_enabled",
    "merge_counters",
    "peak_rss_bytes",
    "report",
    "reset",
    "rss_bytes",
    "stage",
]
