"""Process resident-set-size probes (no external dependencies).

One implementation of the RSS questions the repo keeps asking:

* :func:`rss_bytes` — the process's *current* resident set, read from
  ``/proc/self/statm`` (field 2, in pages).  This is what a live
  sampler wants: it goes down when memory is released.
* :func:`peak_rss_bytes` — the high-water mark since process start,
  from ``resource.getrusage`` (``ru_maxrss``).  This is what a
  benchmark gate wants: it never under-reports a transient spike
  between samples.

Consumers: the :mod:`repro.monitor` resource sampler (live
``monitor.rss`` timeline + per-stage peaks) and
``benchmarks/bench_scale.py`` (peak-RSS scaling gates).

On platforms without ``/proc`` the current-RSS probe falls back to the
peak (documented, monotone, still useful for ceilings); ``ru_maxrss``
units differ per platform (KiB on Linux, bytes on macOS) and are
normalised to bytes here.
"""

from __future__ import annotations

import os
import resource
import sys

_STATM_PATH = "/proc/self/statm"

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover - exotic host
    _PAGE_SIZE = 4096


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both are
    normalised to bytes.  Monotone over the process lifetime.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - mac only
        return int(peak)
    return int(peak) * 1024


def rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Reads ``/proc/self/statm`` (second field, resident pages).  On
    hosts without ``/proc`` this degrades to :func:`peak_rss_bytes`
    (an upper bound that never goes down).
    """
    try:
        with open(_STATM_PATH, "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):  # pragma: no cover - no /proc
        return peak_rss_bytes()


def cpu_seconds() -> float:
    """CPU time (user + system) consumed by this process, in seconds.

    Reads ``/proc/self/stat`` (utime + stime jiffies over the clock
    tick rate); falls back to :func:`os.times` elsewhere.  Used by the
    monitor sampler to derive a CPU-utilisation timeline.
    """
    try:
        with open("/proc/self/stat", "rb") as handle:
            data = handle.read()
        # comm can contain spaces/parens; fields are positional after
        # the closing paren of field 2.
        after = data[data.rindex(b")") + 2 :].split()
        utime, stime = int(after[11]), int(after[12])
        ticks = os.sysconf("SC_CLK_TCK")
        return (utime + stime) / float(ticks)
    except (OSError, ValueError, IndexError, AttributeError):
        times = os.times()
        return float(times.user + times.system)
