"""Hierarchical stage timers and event counters.

A :class:`PerfRegistry` aggregates wall-clock per *stage* and integer
*counters* (cache hits, work-item counts, payload sizes).  Stage names
are hierarchical: entering ``stage("vpr")`` and then ``stage("place")``
records the inner time under ``"vpr/place"``, so a report reads like a
call tree without any profiler overhead.

The module keeps one process-wide default registry.  Instrumentation is
**off by default**: :func:`stage` then returns a shared no-op context
manager and :func:`count` returns immediately, so hot paths can be
instrumented unconditionally (see ``tests/perf`` for the overhead
budget).  Worker processes of the parallel V-P&R engine each carry
their own registry; their counters travel back with the results and are
folded into the parent via :func:`merge_counters`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StageStat:
    """Aggregate timing of one stage.

    Attributes:
        total: Summed wall-clock seconds.
        calls: Number of enter/exit pairs.
        min: Fastest single call (seconds).
        max: Slowest single call (seconds).
    """

    total: float = 0.0
    calls: int = 0
    min: float = float("inf")
    max: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one measured call into the aggregate."""
        self.total += seconds
        self.calls += 1
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds


class _NullStage:
    """Shared no-op context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_STAGE = _NullStage()


class _Stage:
    """Context manager that times one stage entry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "PerfRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Stage":
        self._registry._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry._pop(elapsed)


class PerfRegistry:
    """Thread-safe store of stage timings and counters."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._stages: Dict[str, StageStat] = {}
        self._counters: Dict[str, int] = {}
        self._local = threading.local()

    # -- stage stack (per thread) --------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> None:
        stack = self._stack()
        qualified = f"{stack[-1]}/{name}" if stack else name
        stack.append(qualified)

    def _pop(self, elapsed: float) -> None:
        stack = self._stack()
        qualified = stack.pop()
        with self._lock:
            stat = self._stages.get(qualified)
            if stat is None:
                stat = self._stages[qualified] = StageStat()
            stat.add(elapsed)

    # -- public API ----------------------------------------------------
    def stage(self, name: str):
        """Context manager timing ``name`` (no-op while disabled)."""
        if not self.enabled:
            return _NULL_STAGE
        return _Stage(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def merge_counters(self, counters: Dict[str, int]) -> None:
        """Fold a worker process's counter snapshot into this registry."""
        if not self.enabled or not counters:
            return
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict copy of all stages and counters."""
        with self._lock:
            stages = {
                name: {
                    "total_s": stat.total,
                    "calls": stat.calls,
                    "mean_s": stat.total / stat.calls if stat.calls else 0.0,
                    "min_s": stat.min if stat.calls else 0.0,
                    "max_s": stat.max,
                }
                for name, stat in self._stages.items()
            }
            counters = dict(self._counters)
        return {"stages": stages, "counters": counters}

    def reset(self) -> None:
        """Drop all recorded stages and counters."""
        with self._lock:
            self._stages.clear()
            self._counters.clear()


_DEFAULT = PerfRegistry()


def get_registry() -> PerfRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def enable() -> None:
    """Turn instrumentation on for the default registry."""
    _DEFAULT.enabled = True


def disable() -> None:
    """Turn instrumentation off (hooks become no-ops)."""
    _DEFAULT.enabled = False


def is_enabled() -> bool:
    """Whether the default registry is recording."""
    return _DEFAULT.enabled


def reset() -> None:
    """Clear the default registry."""
    _DEFAULT.reset()


def stage(name: str):
    """Time a stage on the default registry (``with perf.stage(...)``)."""
    if not _DEFAULT.enabled:
        return _NULL_STAGE
    return _Stage(_DEFAULT, name)


def count(name: str, n: int = 1) -> None:
    """Increment a counter on the default registry."""
    if not _DEFAULT.enabled:
        return
    _DEFAULT.count(name, n)


def counter_value(name: str) -> int:
    """Read a counter from the default registry."""
    return _DEFAULT.counter_value(name)


def merge_counters(counters: Optional[Dict[str, int]]) -> None:
    """Fold worker counters into the default registry."""
    if counters:
        _DEFAULT.merge_counters(counters)
