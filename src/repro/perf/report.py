"""The JSON perf report emitted by the flow / CLI.

Schema (``repro.perf/1``)::

    {
      "schema": "repro.perf/1",
      "stages": {
        "<hierarchical/stage/name>": {
          "total_s": float,   # summed wall-clock seconds
          "calls": int,       # enter/exit pairs
          "mean_s": float,
          "min_s": float,
          "max_s": float
        }, ...
      },
      "counters": { "<name>": int, ... },
      "meta": { ... }         # free-form run context (design, jobs, ...)
    }

Stage names are slash-separated paths (``flow/vpr/place``), so a report
can be folded into a tree for display; counters follow a dotted
``subsystem.event`` convention (``steiner.rsmt.hit``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.perf.timers import PerfRegistry

SCHEMA = "repro.perf/1"


@dataclass
class PerfReport:
    """A serialisable snapshot of a :class:`PerfRegistry`."""

    stages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls, registry: PerfRegistry, meta: Optional[Dict[str, object]] = None
    ) -> "PerfReport":
        """Snapshot ``registry`` (stages + counters) into a report."""
        snap = registry.snapshot()
        return cls(
            stages=snap["stages"],
            counters=snap["counters"],
            meta=dict(meta or {}),
        )

    def to_dict(self) -> Dict[str, object]:
        """The schema dict (see module docstring)."""
        return {
            "schema": SCHEMA,
            "stages": self.stages,
            "counters": self.counters,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerfReport":
        """Rebuild a report from its schema dict.

        Raises ``ValueError`` on a wrong/missing schema marker, so a
        stale or foreign JSON file fails loudly instead of producing an
        empty report.
        """
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"not a perf report (schema {schema!r}, expected {SCHEMA!r})"
            )
        return cls(
            stages=dict(data.get("stages") or {}),
            counters=dict(data.get("counters") or {}),
            meta=dict(data.get("meta") or {}),
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the JSON report to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "PerfReport":
        """Read a JSON report back (inverse of :meth:`write`)."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- convenience ---------------------------------------------------
    def stage_total(self, name: str) -> float:
        """Total seconds of one stage (0 when absent)."""
        entry = self.stages.get(name)
        return float(entry["total_s"]) if entry else 0.0

    def cache_rate(self, prefix: str) -> Optional[float]:
        """Hit rate of a ``<prefix>.hit`` / ``<prefix>.miss`` counter
        pair; None when the cache was never queried."""
        hits = self.counters.get(f"{prefix}.hit", 0)
        misses = self.counters.get(f"{prefix}.miss", 0)
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def summary_lines(self, top: int = 12) -> list:
        """Human-readable top-N stage lines (for CLI output)."""
        ranked = sorted(
            self.stages.items(), key=lambda kv: -kv[1]["total_s"]
        )[:top]
        width = max((len(name) for name, _ in ranked), default=0)
        lines = [
            f"{name:<{width}}  {stat['total_s']:8.3f} s  x{stat['calls']}"
            for name, stat in ranked
        ]
        for prefix in sorted(
            {
                name.rsplit(".", 1)[0]
                for name in self.counters
                if name.endswith((".hit", ".miss"))
            }
        ):
            rate = self.cache_rate(prefix)
            if rate is not None:
                lines.append(f"{prefix}: {100 * rate:.0f}% cache hits")
        return lines
