"""Optional cProfile hook.

Wraps a block in :mod:`cProfile` and dumps the pstats file next to an
optional text summary::

    with cprofile_to("/tmp/vpr.prof", top=20):
        selector.select(design, members)

The hook is independent of the stage timers: timers stay cheap enough
to leave on in production runs, the profiler is for drill-downs.  It
also honours the ``REPRO_PROFILE`` environment variable: when set, the
CLI profiles its command into that path without code changes.
"""

from __future__ import annotations

import contextlib
import cProfile
import io
import pstats
from typing import Iterator, Optional


@contextlib.contextmanager
def cprofile_to(
    path: Optional[str], top: int = 0, sort: str = "cumulative"
) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block into ``path`` (no-op when None).

    Args:
        path: pstats dump destination; ``None`` disables profiling so
            callers can thread an optional knob straight through.
        top: When > 0, also write a ``<path>.txt`` with the top-N
            functions by ``sort``.
        sort: pstats sort key for the text summary.

    Yields:
        The active :class:`cProfile.Profile`, or None when disabled.
    """
    if not path:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        if top > 0:
            buffer = io.StringIO()
            pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(top)
            with open(f"{path}.txt", "w") as fh:
                fh.write(buffer.getvalue())
