"""Progress accounting for the flow's known-cardinality loops.

A :class:`ProgressTask` tracks one bounded loop — the V-P&R
(cluster, candidate) sweep, global-placement iterations, multilevel
coarsening passes — as ``done / total`` with a rate and an ETA derived
from the observed pace.  The :class:`ProgressTracker` holds all live
tasks and enforces the accounting invariants the tests pin down:

* ``done`` never exceeds ``total`` and never decreases;
* :meth:`ProgressTask.record` is deterministic — the identity fields
  (name, unit, total, done) carry no timing, so serial and parallel
  runs of the same design finish with identical records;
* completing a task clamps ``total`` down to ``done`` for loops with
  an early exit (a placer that converges before ``max_iterations``
  reports 14/14, not 14/44).

Timing fields (rate, ETA, elapsed) live only in the *snapshot* used by
``status.json`` — they are presentation, not accounting.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional


class ProgressTask:
    """One bounded loop's ``done / total`` state."""

    __slots__ = ("name", "unit", "total", "done", "started", "updated", "finished")

    def __init__(self, name: str, total: int, unit: str = "items") -> None:
        self.name = name
        self.unit = unit
        self.total = max(0, int(total))
        self.done = 0
        self.started = time.perf_counter()
        self.updated = self.started
        self.finished: Optional[float] = None

    # -- accounting ----------------------------------------------------
    def advance(self, n: int = 1) -> None:
        """Add ``n`` completed items (clamped into ``[done, total]``)."""
        if n > 0:
            self.done = min(self.total, self.done + int(n))
            self.updated = time.perf_counter()

    def set_done(self, done: int) -> None:
        """Raise ``done`` to an absolute value (never decreases)."""
        clamped = min(self.total, int(done))
        if clamped > self.done:
            self.done = clamped
            self.updated = time.perf_counter()

    def complete(self) -> None:
        """Mark the loop finished; an early exit clamps ``total``."""
        self.total = self.done
        self.finished = time.perf_counter()
        self.updated = self.finished

    # -- views ---------------------------------------------------------
    @property
    def is_finished(self) -> bool:
        return self.finished is not None

    @property
    def rate(self) -> Optional[float]:
        """Items per second at the observed pace (None before data)."""
        end = self.finished if self.finished is not None else self.updated
        elapsed = end - self.started
        if self.done <= 0 or elapsed <= 0:
            return None
        return self.done / elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Seconds to completion at the observed pace."""
        if self.is_finished:
            return 0.0
        rate = self.rate
        if rate is None or rate <= 0:
            return None
        return (self.total - self.done) / rate

    def record(self) -> Dict[str, Any]:
        """The deterministic accounting record (no timing fields)."""
        return {
            "name": self.name,
            "unit": self.unit,
            "total": self.total,
            "done": self.done,
            "finished": self.is_finished,
        }

    def snapshot(self) -> Dict[str, Any]:
        """The live view for ``status.json`` (adds pace + timing)."""
        out = self.record()
        out["elapsed_s"] = (
            (self.finished if self.finished is not None else time.perf_counter())
            - self.started
        )
        rate = self.rate
        eta = self.eta_seconds
        if rate is not None:
            out["rate_per_s"] = rate
        if eta is not None:
            out["eta_s"] = eta
        return out


class ProgressTracker:
    """Thread-safe registry of live progress tasks.

    ``on_tick`` (when set) fires after every mutation — the monitor
    session hooks it to refresh ``status.json`` (itself throttled, so
    a tight loop does not turn into a write storm).
    """

    def __init__(self, on_tick: Optional[Callable[[], None]] = None) -> None:
        self._lock = threading.Lock()
        self._tasks: Dict[str, ProgressTask] = {}
        self.on_tick = on_tick

    def _tick(self) -> None:
        callback = self.on_tick
        if callback is not None:
            callback()

    # -- mutations -----------------------------------------------------
    def start(self, name: str, total: int, unit: str = "items") -> ProgressTask:
        """Begin (or restart) tracking a bounded loop."""
        with self._lock:
            task = ProgressTask(name, total, unit)
            self._tasks[name] = task
        self._tick()
        return task

    def advance(self, name: str, n: int = 1) -> None:
        """Add completed items to ``name`` (no-op for unknown tasks, so
        shared loop bodies can tick unconditionally)."""
        with self._lock:
            task = self._tasks.get(name)
            if task is None:
                return
            task.advance(n)
        self._tick()

    def set_done(self, name: str, done: int) -> None:
        with self._lock:
            task = self._tasks.get(name)
            if task is None:
                return
            task.set_done(done)
        self._tick()

    def complete(self, name: str) -> None:
        """Finish a task (clamping ``total`` on early exit)."""
        with self._lock:
            task = self._tasks.get(name)
            if task is None:
                return
            task.complete()
        self._tick()

    # -- views ---------------------------------------------------------
    def get(self, name: str) -> Optional[ProgressTask]:
        with self._lock:
            return self._tasks.get(name)

    def records(self) -> List[Dict[str, Any]]:
        """Deterministic records of every task, in start order."""
        with self._lock:
            return [t.record() for t in self._tasks.values()]

    def snapshots(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [t.snapshot() for t in self._tasks.values()]
