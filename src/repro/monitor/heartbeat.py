"""Worker heartbeats: per-process liveness files the parent merges.

The V-P&R pool returns results per *chunk*, so a worker grinding (or
hung) inside a long item is invisible to the parent until the chunk
resolves — or until the item's SIGALRM timeout fires, which can be
minutes away (or disabled).  Heartbeats close that gap with the same
file discipline the telemetry layer already uses:

* each worker appends one flushed JSON line to its own
  ``worker-<pid>.jsonl`` under the monitor directory when it *starts*
  and *finishes* an item (no cross-process locks — one writer per
  file);
* the parent's status refresh reads the **last intact line** of every
  worker file (via the tolerant :func:`repro.telemetry.events.iter_events`
  reader, so a torn mid-append line is skipped, never an error) and
  merges them into ``status.json``'s ``workers`` block with the age of
  each worker's last beat.

A worker whose last beat is ``phase: "start"`` and old is *visibly
hung* in ``repro top`` long before its timeout ends it.  Heartbeats
are best-effort by design: a worker that cannot write (disk full,
torn directory) degrades to no liveness data, never to a failed item.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.telemetry.events import iter_events

#: Subdirectory of the telemetry out-dir holding worker heartbeats.
HEARTBEAT_DIRNAME = "monitor"

_PREFIX = "worker-"
_SUFFIX = ".jsonl"


def heartbeat_dir(out_dir: str) -> str:
    """The heartbeat directory under a telemetry out-dir."""
    return os.path.join(out_dir, HEARTBEAT_DIRNAME)


class HeartbeatWriter:
    """One worker process's append-only heartbeat file."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.pid = os.getpid()
        self.path = os.path.join(directory, f"{_PREFIX}{self.pid}{_SUFFIX}")
        self._handle = None
        try:
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a")
        except OSError:  # pragma: no cover - heartbeats are best-effort
            self._handle = None

    def beat(self, phase: str, **fields: Any) -> None:
        """Append one beat (``phase`` is ``"start"`` / ``"done"``)."""
        if self._handle is None:
            return
        record = {"pid": self.pid, "t": time.time(), "phase": phase}
        record.update(fields)
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        except OSError:  # pragma: no cover - best-effort
            pass

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None


def read_worker_beats(
    directory: str, now: Optional[float] = None
) -> List[Dict[str, Any]]:
    """The last intact beat of every worker file, parent-side.

    Returns one record per worker, each with an ``age_s`` field (time
    since the beat) so a stalled worker stands out.  Missing or torn
    files contribute nothing — the reader shares the event log's
    tolerance guarantees.
    """
    if now is None:
        now = time.time()
    beats: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return beats
    for name in names:
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        last = None
        for record in iter_events(os.path.join(directory, name)):
            last = record
        if last is None:
            continue
        beat = dict(last)
        beat["age_s"] = max(0.0, now - float(beat.get("t", now)))
        beats.append(beat)
    return beats


def clear_worker_beats(directory: str) -> None:
    """Remove stale heartbeat files (start-of-sweep hygiene)."""
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:  # pragma: no cover - best-effort
                pass
