"""Worker heartbeats: per-process liveness files the parent merges.

The V-P&R pool returns results per *chunk*, so a worker grinding (or
hung) inside a long item is invisible to the parent until the chunk
resolves — or until the item's SIGALRM timeout fires, which can be
minutes away (or disabled).  Heartbeats close that gap with the same
file discipline the telemetry layer already uses:

* each worker appends one flushed JSON line to its own
  ``worker-<pid>.jsonl`` under the monitor directory when it *starts*
  and *finishes* an item (no cross-process locks — one writer per
  file);
* the parent's status refresh reads the **last intact line** of every
  worker file (a fixed-size tail read with the same torn-line
  tolerance as :func:`repro.telemetry.events.iter_events`, so the
  poll cost stays constant however many items a long sweep appends)
  and merges them into ``status.json``'s ``workers`` block with the
  age of each worker's last beat.

A worker whose last beat is ``phase: "start"`` and old is *visibly
hung* in ``repro top`` long before its timeout ends it.  Heartbeats
are best-effort by design: a worker that cannot write (disk full,
torn directory) degrades to no liveness data, never to a failed item.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Subdirectory of the telemetry out-dir holding worker heartbeats.
HEARTBEAT_DIRNAME = "monitor"

_PREFIX = "worker-"
_SUFFIX = ".jsonl"

#: Bytes read from the end of a beat file per poll.  One beat record
#: is well under 200 bytes, so this always covers the last line while
#: keeping the per-poll cost independent of how many items the worker
#: has completed (status refreshes poll at sampler rate).
_TAIL_BYTES = 4096


def heartbeat_dir(out_dir: str) -> str:
    """The heartbeat directory under a telemetry out-dir."""
    return os.path.join(out_dir, HEARTBEAT_DIRNAME)


class HeartbeatWriter:
    """One worker's append-only heartbeat file.

    By default the writer describes *this* process (``worker-<pid>``,
    the pool-worker case).  The fleet parent also instantiates one per
    **remote** worker to relay the beats arriving over the socket into
    the same directory — ``name`` keeps two remote workers (possibly
    with colliding pids on different hosts) in distinct files, and
    ``pid`` / ``host`` stamp the relayed records with the remote
    identity so ``repro top`` can render ``host:pid``.
    """

    def __init__(
        self,
        directory: str,
        name: Optional[str] = None,
        pid: Optional[int] = None,
        host: Optional[str] = None,
    ) -> None:
        self.directory = directory
        self.pid = pid if pid is not None else os.getpid()
        self.host = host
        stem = name if name is not None else str(self.pid)
        self.path = os.path.join(directory, f"{_PREFIX}{stem}{_SUFFIX}")
        self._handle = None
        try:
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a")
        except OSError:  # pragma: no cover - heartbeats are best-effort
            self._handle = None

    def beat(self, phase: str, **fields: Any) -> None:
        """Append one beat (``phase`` is ``"start"`` / ``"done"``)."""
        if self._handle is None:
            return
        record = {"pid": self.pid, "t": time.time(), "phase": phase}
        if self.host is not None:
            record["host"] = self.host
        record.update(fields)
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        except OSError:  # pragma: no cover - best-effort
            pass

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None


def _last_beat(path: str) -> Optional[Dict[str, Any]]:
    """The last intact JSON record of a beat file via a tail read.

    Seeks to the final :data:`_TAIL_BYTES` of the file and parses
    newline-terminated lines back-to-front, so the cost per poll is
    constant regardless of file length.  A torn trailing line (writer
    mid-append), a partial first line (the seek landed mid-record), or
    an unreadable file all degrade to ``None`` / being skipped — the
    same tolerance contract as the event log reader.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(max(0, size - _TAIL_BYTES))
            data = handle.read(_TAIL_BYTES)
    except OSError:
        return None
    lines = data.split(b"\n")
    if not data.endswith(b"\n"):
        lines = lines[:-1]  # torn trailing line: never a complete record
    for line in reversed(lines):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            return record
    return None


def read_worker_beats(
    directory: str, now: Optional[float] = None
) -> List[Dict[str, Any]]:
    """The last intact beat of every worker file, parent-side.

    Returns one record per worker, each with an ``age_s`` field (time
    since the beat) so a stalled worker stands out.  Missing or torn
    files contribute nothing — the reader shares the event log's
    tolerance guarantees.
    """
    if now is None:
        now = time.time()
    beats: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return beats
    for name in names:
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        last = _last_beat(os.path.join(directory, name))
        if last is None:
            continue
        beat = dict(last)
        beat["age_s"] = max(0.0, now - float(beat.get("t", now)))
        beats.append(beat)
    return beats


def clear_worker_beats(directory: str) -> None:
    """Remove stale heartbeat files (start-of-sweep hygiene)."""
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:  # pragma: no cover - best-effort
                pass
