"""Live flight recorder: in-flight progress, resource sampling, ``repro top``.

``repro.telemetry`` records what a run *did*; this package shows what a
run *is doing*.  Four pieces, all dependency-free:

* :mod:`repro.monitor.sampler` — a background thread sampling RSS/CPU
  from procfs into ``monitor.rss`` / ``monitor.cpu`` metric streams and
  per-stage peak-RSS counters;
* :mod:`repro.monitor.progress` — done/total accounting for the flow's
  bounded loops (V-P&R sweep items, GP iterations, clustering passes)
  with rate + ETA;
* :mod:`repro.monitor.status` — an atomically-replaced ``status.json``
  (schema ``repro.monitor/1``) in the telemetry out-dir, refreshed on
  every progress tick;
* :mod:`repro.monitor.top` — the ``repro top RUNDIR`` renderer that
  tails ``status.json`` + ``events.jsonl`` from any process.

Off by default; one flag check per hook while disabled.  Enable with::

    from repro import monitor, telemetry

    telemetry.enable("/tmp/run0")
    monitor.enable("/tmp/run0")
    ...  # run the flow; `repro top /tmp/run0` works from another shell
    block = monitor.summary()   # run.json "monitor" section
    monitor.disable()
"""

from repro.monitor.heartbeat import (
    HEARTBEAT_DIRNAME,
    HeartbeatWriter,
    clear_worker_beats,
    heartbeat_dir,
    read_worker_beats,
)
from repro.monitor.progress import ProgressTask, ProgressTracker
from repro.monitor.sampler import ResourceSampler
from repro.monitor.session import (
    MonitorSession,
    advance,
    complete,
    disable,
    enable,
    get_monitor,
    is_enabled,
    set_done,
    set_meta,
    stage,
    start_task,
    summary,
    worker_dir,
)
from repro.monitor.status import (
    STATUS_FILENAME,
    STATUS_SCHEMA,
    StatusWriter,
    load_status,
    status_path,
)
from repro.monitor.top import render, render_dir, run_top, sparkline

__all__ = [
    "HEARTBEAT_DIRNAME",
    "STATUS_FILENAME",
    "STATUS_SCHEMA",
    "HeartbeatWriter",
    "MonitorSession",
    "ProgressTask",
    "ProgressTracker",
    "ResourceSampler",
    "StatusWriter",
    "advance",
    "clear_worker_beats",
    "complete",
    "disable",
    "enable",
    "get_monitor",
    "heartbeat_dir",
    "is_enabled",
    "load_status",
    "read_worker_beats",
    "render",
    "render_dir",
    "run_top",
    "set_done",
    "set_meta",
    "sparkline",
    "stage",
    "start_task",
    "status_path",
    "summary",
    "worker_dir",
]
