"""``repro top``: a live single-screen view of a running flow.

The viewer is a *separate process* from the flow: it tails the run
directory's ``status.json`` (atomically replaced by the monitor, so a
poll always sees a complete document) and the last few records of
``events.jsonl`` (via the tolerant tail reader, so racing the writer
is safe).  One frame shows:

* run header — state, pid, elapsed, the run meta (design, jobs, ...);
* the stage history with the active stage marked;
* one progress bar per live loop, with rate and ETA;
* an RSS sparkline over the sampler's recent timeline + CPU %;
* pool workers with the age of their last heartbeat (a worker still
  in ``phase: "start"`` past the hang threshold is flagged — visible
  long before its item timeout fires);
* the last few flow events.

Rendering is plain text (one optional ANSI clear between live frames)
so it works over ssh, in CI logs, and under ``--once`` for scripts.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from repro.monitor.status import load_status
from repro.telemetry.events import tail_events

#: Last heartbeat older than this (seconds) while in "start" flags the
#: worker as possibly hung.
HANG_AFTER_S = 10.0

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_BAR_WIDTH = 28
_SPARK_WIDTH = 48


def _fmt_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}TiB"  # pragma: no cover - unreachable


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def _bar(done: int, total: int, width: int = _BAR_WIDTH) -> str:
    if total <= 0:
        return "[" + "░" * width + "]"
    filled = int(round(width * min(1.0, done / total)))
    return "[" + "█" * filled + "░" * (width - filled) + "]"


def sparkline(values: List[float], width: int = _SPARK_WIDTH) -> str:
    """Down-sample ``values`` into a fixed-width unicode sparkline."""
    if not values:
        return ""
    if len(values) > width:
        # keep the most recent window — top is about "now"
        values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    chars = []
    for v in values:
        idx = 0 if span <= 0 else int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        chars.append(_SPARK_CHARS[idx])
    return "".join(chars)


def render(
    status: Dict[str, Any],
    events: Optional[List[Dict[str, Any]]] = None,
    hang_after_s: float = HANG_AFTER_S,
) -> str:
    """One frame of the top view as a plain-text block."""
    lines: List[str] = []
    state = status.get("state", "?")
    meta = status.get("meta") or {}
    meta_str = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    lines.append(
        f"repro top — {state} pid={status.get('pid', '?')} "
        f"elapsed={_fmt_duration(status.get('elapsed_s'))}"
        + (f"  [{meta_str}]" if meta_str else "")
    )
    if status.get("error"):
        lines.append(f"error: {status['error']}")

    stages = status.get("stages") or []
    if stages:
        lines.append("stages:")
        for entry in stages:
            marker = "▶" if entry.get("state") == "running" else "✔"
            peak = entry.get("peak_rss_bytes")
            peak_str = f"  peak {_fmt_bytes(peak)}" if peak else ""
            lines.append(
                f"  {marker} {entry.get('name', '?'):<12}"
                f" {_fmt_duration(entry.get('elapsed_s'))}{peak_str}"
            )

    progress = status.get("progress") or []
    if progress:
        lines.append("progress:")
        for task in progress:
            total = int(task.get("total", 0))
            done = int(task.get("done", 0))
            pct = 100.0 * done / total if total else 100.0
            rate = task.get("rate_per_s")
            rate_str = f" {rate:.1f}/s" if rate else ""
            eta = "done" if task.get("finished") else (
                f"eta {_fmt_duration(task['eta_s'])}" if "eta_s" in task else "eta --"
            )
            lines.append(
                f"  {task.get('name', '?'):<16} {_bar(done, total)} "
                f"{done}/{total} ({pct:.0f}%){rate_str}  {eta}"
            )

    resources = status.get("resources") or {}
    timeline = resources.get("rss_timeline") or []
    if resources:
        rss_values = [float(point[1]) for point in timeline]
        spark = sparkline(rss_values)
        lines.append(
            f"rss: {_fmt_bytes(resources.get('rss_bytes', 0))}"
            f" (peak {_fmt_bytes(resources.get('peak_rss_bytes', 0))})"
            f"  cpu: {resources.get('cpu_percent', 0.0):.0f}%"
        )
        if spark:
            lines.append(f"  {spark}")

    workers = status.get("workers") or []
    if workers:
        lines.append("workers:")
        for beat in sorted(
            workers, key=lambda b: (str(b.get("host", "")), b.get("pid", 0))
        ):
            age = float(beat.get("age_s", 0.0))
            phase = beat.get("phase", "?")
            # Remote fleet workers are labelled host:pid (relayed beats
            # carry the remote identity); local pool workers stay pid.
            host = beat.get("host")
            label = (
                f"{host}:{beat.get('pid', '?')}"
                if host
                else f"pid {beat.get('pid', '?')}"
            )
            # A worker is "silent" when it went quiet mid-work: inside
            # an item (phase start) or holding a dispatched chunk.  A
            # beat that carries the chunk's remaining deadline tightens
            # the threshold so the flag shows *before* the parent's
            # deadline police re-dispatches the chunk.
            threshold = hang_after_s
            deadline_s = beat.get("deadline_s")
            if isinstance(deadline_s, (int, float)) and deadline_s > 0:
                threshold = min(threshold, 0.8 * float(deadline_s))
            hung = phase in ("start", "dispatch") and age > threshold
            flag = "  ⚠ possibly hung" if hung else ""
            item = beat.get("item")
            item_str = f" item={item}" if item is not None else ""
            chunk = beat.get("chunk")
            chunk_str = f" chunk={chunk}" if chunk is not None else ""
            lines.append(
                f"  {label}: {phase}{chunk_str}{item_str}"
                f" ({_fmt_duration(age)} ago){flag}"
            )

    if events:
        lines.append("events:")
        for record in events:
            t = record.get("t")
            t_str = f"{float(t):8.2f}s" if isinstance(t, (int, float)) else "       ?"
            extra = {
                k: v
                for k, v in record.items()
                if k not in ("schema", "seq", "t", "type")
            }
            extra_str = " ".join(
                f"{k}={v}" for k, v in sorted(extra.items())
            )
            lines.append(f"  {t_str}  {record.get('type', '?')}  {extra_str}".rstrip())
    return "\n".join(lines)


def render_dir(run_dir: str, event_limit: int = 8) -> Optional[str]:
    """One frame for a run directory (None when no status exists yet)."""
    status = load_status(run_dir)
    if status is None:
        return None
    events = tail_events(os.path.join(run_dir, "events.jsonl"), limit=event_limit)
    return render(status, events)


def run_top(
    run_dir: str,
    once: bool = False,
    interval: float = 1.0,
    timeout: Optional[float] = None,
    out=None,
) -> int:
    """The ``repro top RUNDIR`` loop.  Returns a process exit code.

    Polls until the run leaves the ``running`` state (rendering a
    final frame), or forever under ``once=False`` with no timeout;
    ``once=True`` renders a single frame and exits (0 when a status
    document existed, 1 otherwise).
    """
    import sys

    if out is None:
        out = sys.stdout
    deadline = None if timeout is None else time.monotonic() + timeout
    live = not once and out.isatty()
    waiting_announced = False
    while True:
        frame = render_dir(run_dir)
        if frame is None:
            if once:
                print(f"no status.json under {run_dir} (is the run monitored?)",
                      file=out)
                return 1
            if not waiting_announced:
                # One-time notice so a watch on a not-yet-monitored (or
                # wrong) directory is visibly waiting, not silently hung.
                print(f"waiting for status.json under {run_dir} ...", file=out)
                out.flush()
                waiting_announced = True
        else:
            if live:
                out.write("\x1b[2J\x1b[H")  # clear + home between frames
            print(frame, file=out)
            out.flush()
        if once:
            return 0
        status = load_status(run_dir)
        if status is not None and status.get("state") != "running":
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0 if frame is not None else 1
        try:
            time.sleep(max(0.05, interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0
