"""Atomic, throttled publication of ``status.json``.

``status.json`` (schema ``repro.monitor/1``) is the single file a
*separate process* polls to see inside a live run — ``repro top``
today, a ``repro serve`` status endpoint tomorrow.  Two disciplines
make that safe and cheap:

* **atomicity** — every refresh goes through
  :func:`repro.ioutil.atomic_write_bytes` (temp + rename,
  ``durable=False``): a reader sees the previous complete document or
  the new one, never a torn file.  No fsync — a status file lost to a
  crash is worthless a millisecond later anyway.
* **throttling** — the flow calls :meth:`StatusWriter.refresh` on
  every progress tick and every sampler sample; the writer coalesces
  those into at most one write per ``min_interval`` (default 4 Hz),
  so a tight placement loop cannot turn the monitor into a write
  storm.  Lifecycle edges (start/done/failed) force a write.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.ioutil import atomic_write_bytes

#: Schema tag stamped on every status document.
STATUS_SCHEMA = "repro.monitor/1"

#: File name inside the telemetry out-dir.
STATUS_FILENAME = "status.json"


def status_path(out_dir: str) -> str:
    """The ``status.json`` path for a run directory."""
    return os.path.join(out_dir, STATUS_FILENAME)


def load_status(out_dir: str) -> Optional[Dict[str, Any]]:
    """Read a run directory's status document (None when absent or
    unreadable — a poller's miss, never its error)."""
    try:
        with open(status_path(out_dir)) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != STATUS_SCHEMA:
        return None
    return data


class StatusWriter:
    """Throttled atomic writer of one run's ``status.json``."""

    def __init__(
        self,
        out_dir: str,
        snapshot: Callable[[], Dict[str, Any]],
        min_interval: float = 0.25,
    ) -> None:
        self.out_dir = out_dir
        self.path = status_path(out_dir)
        self.snapshot = snapshot
        self.min_interval = max(0.0, float(min_interval))
        self._lock = threading.Lock()
        self._last_write = 0.0
        self._writes = 0

    @property
    def writes(self) -> int:
        """Number of documents actually written (post-throttle)."""
        return self._writes

    def refresh(self, force: bool = False) -> bool:
        """Publish a fresh document unless inside the throttle window.

        Returns True when a write happened.  Concurrent callers (the
        sampler thread + the flow thread) coalesce: whoever holds the
        lock writes, the other returns immediately.
        """
        now = time.perf_counter()
        if not force and now - self._last_write < self.min_interval:
            return False
        if not self._lock.acquire(blocking=force):
            return False
        try:
            if not force and now - self._last_write < self.min_interval:
                return False
            payload = self.snapshot()
            payload["schema"] = STATUS_SCHEMA
            payload["updated_unix"] = time.time()
            data = json.dumps(payload, sort_keys=True).encode()
            atomic_write_bytes(self.path, data, durable=False)
            self._last_write = time.perf_counter()
            self._writes += 1
            return True
        except OSError:  # pragma: no cover - status is best-effort
            return False
        finally:
            self._lock.release()
