"""The process-wide monitor session: sampler + progress + status.

:class:`MonitorSession` is the flight recorder proper.  It owns

* a :class:`~repro.monitor.sampler.ResourceSampler` feeding the
  ``monitor.rss`` / ``monitor.cpu`` telemetry streams,
* a :class:`~repro.monitor.progress.ProgressTracker` for the flow's
  bounded loops,
* a :class:`~repro.monitor.status.StatusWriter` publishing
  ``status.json`` on every progress tick and sampler sample
  (throttled, atomic),
* the worker-heartbeat directory merged into the status document.

Like :mod:`repro.telemetry` and :mod:`repro.perf`, the monitor is
**off by default** behind a module-level session: every hook the flow
calls (:func:`start_task`, :func:`advance`, :func:`stage`, ...) is one
``None`` check while disabled, so the hot paths stay instrumented
unconditionally.  Enabling requires a telemetry out-dir — the monitor
is a view *onto* a recorded run, not a separate recording.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Any, Dict, Iterator, Optional

from repro import perf, telemetry
from repro.monitor.heartbeat import (
    clear_worker_beats,
    heartbeat_dir,
    read_worker_beats,
)
from repro.monitor.progress import ProgressTracker
from repro.monitor.sampler import ResourceSampler
from repro.monitor.status import StatusWriter


class MonitorSession:
    """One run's live monitor state (see module docstring)."""

    def __init__(
        self,
        out_dir: str,
        interval: float = 0.25,
        status_interval: float = 0.25,
        timeline_points: int = 120,
    ) -> None:
        self.out_dir = out_dir
        self.pid = os.getpid()
        self.started_unix = time.time()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._meta: Dict[str, Any] = {}
        self._state = "running"
        self._error: Optional[str] = None
        self._stage_stack: list = []
        self._stage_history: list = []
        self.heartbeats = heartbeat_dir(out_dir)
        self.status = StatusWriter(
            out_dir, self._status_snapshot, min_interval=status_interval
        )
        self.progress = ProgressTracker(on_tick=self.status.refresh)
        self.sampler = ResourceSampler(
            observe=telemetry.observe,
            stage_of=self.current_stage,
            interval=interval,
            timeline_points=timeline_points,
            on_sample=self.status.refresh,
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        clear_worker_beats(self.heartbeats)
        self.sampler.start()
        self.status.refresh(force=True)

    def stop(self, state: str = "done", error: Optional[str] = None) -> None:
        """Stop sampling and publish the final status document."""
        self.sampler.stop()
        with self._lock:
            self._state = state
            self._error = error
        for name, _stage_peak in sorted(self.sampler.stage_peaks().items()):
            perf.count(f"monitor.peak_rss.{name}", _stage_peak)
        self.status.refresh(force=True)

    # -- stages --------------------------------------------------------
    @contextlib.contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Mark ``name`` as the active flow stage while the body runs.

        The sampler attributes its per-sample peak-RSS accounting to
        the innermost active stage; the status document shows the
        stage path and per-stage wall-clock history.
        """
        started = time.perf_counter()
        with self._lock:
            self._stage_stack.append(name)
            entry = {
                "name": name,
                "state": "running",
                "elapsed_s": 0.0,
                "_started": started,
            }
            self._stage_history.append(entry)
        self.status.refresh(force=True)
        try:
            yield
        finally:
            # Read the sampler's peaks BEFORE taking the session lock:
            # stage_peaks() takes the sampler lock, and the sampler's
            # sample() calls current_stage() (which takes this lock) —
            # nesting them here in the opposite order is a lock-order
            # inversion that can deadlock against a concurrent sample.
            peak = self.sampler.stage_peaks().get(name)
            with self._lock:
                # Pop the *last* occurrence: re-entrant stages with the
                # same name must unwind innermost-first, and list.remove
                # would drop the outer entry instead.
                for i in range(len(self._stage_stack) - 1, -1, -1):
                    if self._stage_stack[i] == name:
                        del self._stage_stack[i]
                        break
                entry["state"] = "done"
                entry["elapsed_s"] = time.perf_counter() - started
                if peak is not None:
                    entry["peak_rss_bytes"] = peak
            self.status.refresh(force=True)

    def current_stage(self) -> Optional[str]:
        """The innermost active stage (the sampler's attribution key)."""
        with self._lock:
            return self._stage_stack[-1] if self._stage_stack else None

    # -- metadata ------------------------------------------------------
    def set_meta(self, **fields: Any) -> None:
        """Attach run context (design, jobs, seed) to the status doc."""
        with self._lock:
            self._meta.update(fields)
        self.status.refresh(force=True)

    # -- views ---------------------------------------------------------
    def _status_snapshot(self) -> Dict[str, Any]:
        now = time.time()
        with self._lock:
            meta = dict(self._meta)
            state = self._state
            error = self._error
            stage = self._stage_stack[-1] if self._stage_stack else None
            stages = []
            for stored in self._stage_history:
                entry = dict(stored)
                started = entry.pop("_started")
                if entry["state"] == "running":
                    # elapsed_s of a running stage is filled at snapshot
                    # time (the stored entry only finalises on exit).
                    entry["elapsed_s"] = time.perf_counter() - started
                stages.append(entry)
        doc: Dict[str, Any] = {
            "pid": self.pid,
            "state": state,
            "started_unix": self.started_unix,
            "elapsed_s": time.perf_counter() - self._epoch,
            "meta": meta,
            "stage": stage,
            "stages": stages,
            "progress": self.progress.snapshots(),
            "resources": self.sampler.resources(),
            "workers": read_worker_beats(self.heartbeats, now=now),
        }
        if error:
            doc["error"] = error
        return doc

    def summary(self) -> Dict[str, Any]:
        """The post-run block embedded in ``run.json`` / the report."""
        out = self.sampler.summary()
        out["progress"] = self.progress.records()
        out["status_writes"] = self.status.writes
        return out


_MONITOR: Optional[MonitorSession] = None


def get_monitor() -> Optional[MonitorSession]:
    """The process-wide monitor session (None while disabled)."""
    return _MONITOR


def enable(
    out_dir: str,
    interval: float = 0.25,
    status_interval: float = 0.25,
    timeline_points: int = 120,
) -> MonitorSession:
    """Turn the monitor on for a run directory and start sampling."""
    global _MONITOR
    if _MONITOR is not None:
        _MONITOR.stop()
    _MONITOR = MonitorSession(
        out_dir,
        interval=interval,
        status_interval=status_interval,
        timeline_points=timeline_points,
    )
    _MONITOR.start()
    return _MONITOR


def disable(state: str = "done", error: Optional[str] = None) -> None:
    """Stop the monitor, publishing a final ``state`` document."""
    global _MONITOR
    if _MONITOR is None:
        return
    _MONITOR.stop(state=state, error=error)
    _MONITOR = None


def is_enabled() -> bool:
    return _MONITOR is not None


# -- module-level hooks (the instrumented code calls these) -------------
def start_task(name: str, total: int, unit: str = "items") -> None:
    """Begin tracking a bounded loop (no-op while disabled)."""
    if _MONITOR is not None:
        _MONITOR.progress.start(name, total, unit=unit)


def advance(name: str, n: int = 1) -> None:
    """Add completed items to a loop (no-op while disabled)."""
    if _MONITOR is not None:
        _MONITOR.progress.advance(name, n)


def set_done(name: str, done: int) -> None:
    """Raise a loop's absolute completion count (no-op while disabled)."""
    if _MONITOR is not None:
        _MONITOR.progress.set_done(name, done)


def complete(name: str) -> None:
    """Finish a loop (no-op while disabled)."""
    if _MONITOR is not None:
        _MONITOR.progress.complete(name)


def stage(name: str):
    """Stage context for the flow (null context while disabled)."""
    if _MONITOR is None:
        return contextlib.nullcontext()
    return _MONITOR.stage(name)


def set_meta(**fields: Any) -> None:
    if _MONITOR is not None:
        _MONITOR.set_meta(**fields)


def worker_dir() -> Optional[str]:
    """The heartbeat directory workers should beat into (None while
    disabled) — travels to pool workers inside the fan-out payload."""
    if _MONITOR is None:
        return None
    return _MONITOR.heartbeats


def summary() -> Optional[Dict[str, Any]]:
    """The run.json monitor block (None while disabled)."""
    if _MONITOR is None:
        return None
    return _MONITOR.summary()
