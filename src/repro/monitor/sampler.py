"""Background resource sampler: RSS + CPU timelines, per-stage peaks.

A daemon thread wakes every ``interval`` seconds and reads two numbers
from procfs via :mod:`repro.perf.rss` — the current resident set
(``/proc/self/statm``) and the cumulative process CPU time
(``/proc/self/stat``).  Each sample becomes one point in the
``monitor.rss`` / ``monitor.cpu`` telemetry metric streams (stepped by
seconds since the session epoch, so they plot on the same axis as the
QoR streams) and updates:

* the process-wide peak RSS seen by the sampler,
* the peak RSS *per flow stage* (the monitor session tells the sampler
  which stage is active), later exported as
  ``monitor.peak_rss.<stage>`` perf counters,
* a bounded in-memory tail of recent samples for ``status.json``'s
  sparkline.

The sampler is purely observational: it allocates nothing per sample
beyond the stream append, touches no RNG, and samples its own process
only — flow results with the monitor on are byte-identical to a run
with it off (gated by ``benchmarks/bench_monitor_overhead.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.perf.rss import cpu_seconds, peak_rss_bytes, rss_bytes


class ResourceSampler:
    """Samples RSS/CPU on a daemon thread while started.

    Args:
        observe: Callback ``(stream_name, value, step)`` — the monitor
            session routes this to ``telemetry.observe``.
        stage_of: Returns the currently active flow stage (or None);
            consulted per sample for the per-stage peak accounting.
        interval: Seconds between samples.
        timeline_points: Samples kept for the ``status.json`` tail.
        on_sample: Optional callback fired after each sample (the
            session hooks the throttled status refresh here, so a run
            that is between progress ticks still updates its heartbeat).
    """

    def __init__(
        self,
        observe: Callable[[str, float, float], None],
        stage_of: Callable[[], Optional[str]],
        interval: float = 0.25,
        timeline_points: int = 120,
        on_sample: Optional[Callable[[], None]] = None,
    ) -> None:
        self.observe = observe
        self.stage_of = stage_of
        self.interval = max(0.01, float(interval))
        self.on_sample = on_sample
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._timeline: Deque[Tuple[float, int, float]] = deque(
            maxlen=max(2, int(timeline_points))
        )
        self._stage_peaks: Dict[str, int] = {}
        self._peak_rss = 0
        self._samples = 0
        self._last_cpu: Optional[Tuple[float, float]] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._epoch = time.perf_counter()
        self._stop.clear()
        self.sample()  # one synchronous sample so status is never empty
        self._thread = threading.Thread(
            target=self._run, name="repro-monitor-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.sample()  # closing sample so the timelines cover the stop

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample()
            except Exception:  # pragma: no cover - never kill the run
                pass

    # -- sampling ------------------------------------------------------
    def sample(self) -> None:
        """Take one sample (also callable synchronously from tests)."""
        now = time.perf_counter()
        t = now - self._epoch
        rss = rss_bytes()
        cpu = cpu_seconds()
        # Resolve the active stage BEFORE taking the sampler lock:
        # stage_of() acquires the monitor session's lock, and the
        # session calls back into stage_peaks() (which takes this
        # lock) — nesting them here in the opposite order would be a
        # lock-order inversion that can deadlock a stage exit racing
        # a sample.
        stage = self.stage_of()
        with self._lock:
            cpu_pct = 0.0
            if self._last_cpu is not None:
                last_t, last_cpu = self._last_cpu
                dt = now - last_t
                if dt > 0:
                    cpu_pct = max(0.0, (cpu - last_cpu) / dt * 100.0)
            self._last_cpu = (now, cpu)
            self._samples += 1
            if rss > self._peak_rss:
                self._peak_rss = rss
            if stage is not None and rss > self._stage_peaks.get(stage, 0):
                self._stage_peaks[stage] = rss
            self._timeline.append((t, rss, cpu_pct))
        self.observe("monitor.rss", float(rss), t)
        self.observe("monitor.cpu", cpu_pct, t)
        callback = self.on_sample
        if callback is not None:
            callback()

    # -- views ---------------------------------------------------------
    def resources(self) -> Dict[str, Any]:
        """The live resource block for ``status.json``."""
        with self._lock:
            timeline = list(self._timeline)
            peak = max(self._peak_rss, peak_rss_bytes())
            current = timeline[-1] if timeline else (0.0, 0, 0.0)
            return {
                "rss_bytes": current[1],
                "cpu_percent": current[2],
                "peak_rss_bytes": peak,
                "samples": self._samples,
                "rss_timeline": [[round(t, 3), rss] for t, rss, _ in timeline],
                "cpu_timeline": [
                    [round(t, 3), round(pct, 1)] for t, _, pct in timeline
                ],
            }

    def stage_peaks(self) -> Dict[str, int]:
        """Peak RSS (bytes) observed while each flow stage was active."""
        with self._lock:
            return dict(self._stage_peaks)

    def summary(self) -> Dict[str, Any]:
        """The post-run summary embedded in ``run.json``."""
        with self._lock:
            return {
                "samples": self._samples,
                "interval_s": self.interval,
                "peak_rss_bytes": max(self._peak_rss, peak_rss_bytes()),
                "stage_peak_rss_bytes": dict(self._stage_peaks),
            }
