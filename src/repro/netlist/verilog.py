"""Structural Verilog lite reader / writer.

Handles gate-level structural netlists of the form::

    module top (clk, in0, out0);
      input clk;
      input in0;
      output out0;
      wire n1;
      NAND2_X1 U1 (.A(in0), .B(n1), .Y(out0));
    endmodule

Hierarchical instance names use escaped identifiers with ``/``
separators (the flattened-hierarchy convention the rest of the package
relies on).  The writer and reader round-trip, which the tests verify.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.design import Design, MasterCell, PinDirection

_MODULE_RE = re.compile(r"module\s+(\S+?)\s*\((.*?)\);(.*?)endmodule", re.DOTALL)
_DECL_RE = re.compile(r"^\s*(input|output|inout|wire)\s+(.+?)\s*;\s*$", re.MULTILINE)
_INSTANCE_RE = re.compile(
    r"^\s*([A-Za-z_]\w*)\s+(\\\S+|\w+)\s*\((.*?)\)\s*;\s*$",
    re.MULTILINE | re.DOTALL,
)
_CONNECTION_RE = re.compile(r"\.(\w+)\s*\(\s*(\\\S+|[\w\[\]]+)\s*\)")
_ASSIGN_RE = re.compile(
    r"^\s*assign\s+(\\\S+\s|\w+)\s*=\s*(\\\S+\s|\w+)\s*;", re.MULTILINE
)


def _unescape(name: str) -> str:
    """Strip Verilog escaped-identifier backslash."""
    if name.startswith("\\"):
        return name[1:]
    return name


def _escape(name: str) -> str:
    """Escape identifiers containing hierarchy separators."""
    if re.fullmatch(r"\w+", name):
        return name
    return "\\" + name + " "


def parse_verilog(
    text: str,
    masters: Dict[str, MasterCell],
    design_name: Optional[str] = None,
) -> Design:
    """Parse a structural netlist against a master-cell library.

    Args:
        text: Verilog source with a single module definition.
        masters: Library resolving instance master names.
        design_name: Override for the design name (defaults to the
            module name).
    """
    match = _MODULE_RE.search(text)
    if match is None:
        raise ValueError("no module definition found")
    module_name, _portlist, body = match.groups()
    design = Design(design_name or module_name)
    for master in masters.values():
        design.masters.setdefault(master.name, master)

    directions = {
        "input": PinDirection.INPUT,
        "output": PinDirection.OUTPUT,
        "inout": PinDirection.INOUT,
    }
    wires: List[str] = []
    for decl_match in _DECL_RE.finditer(body):
        kind, names = decl_match.groups()
        for raw in names.split(","):
            name = _unescape(raw.strip())
            if not name:
                continue
            if kind == "wire":
                wires.append(name)
            else:
                design.add_port(name, directions[kind])

    # Nets are created lazily; ports imply same-named nets.
    net_names = set(wires) | set(design.ports)
    connections: List[Tuple[str, str, str, str]] = []  # master, inst, pin, net
    for inst_match in _INSTANCE_RE.finditer(body):
        master_name, inst_name, conn_text = inst_match.groups()
        if master_name in ("module", "input", "output", "inout", "wire"):
            continue
        if master_name not in masters:
            raise ValueError(f"unknown master cell {master_name!r}")
        inst_name = _unescape(inst_name)
        design.add_instance(inst_name, masters[master_name])
        for conn in _CONNECTION_RE.finditer(conn_text):
            pin, net = conn.groups()
            net = _unescape(net)
            net_names.add(net)
            connections.append((master_name, inst_name, pin, net))

    # Port aliases: "assign extra = primary;" joins a second port onto
    # the primary net (the writer emits these for nets touching several
    # ports).
    aliases = []
    for match in _ASSIGN_RE.finditer(body):
        left = _unescape(match.group(1).strip())
        right = _unescape(match.group(2).strip())
        aliases.append((left, right))

    referenced = {net_name for _m, _i, _p, net_name in connections}
    referenced |= {right for _left, right in aliases}
    for net_name in sorted(net_names):
        # Ports with no instance connection get no net (matching how
        # unused IOs look in the in-memory model).
        if net_name in design.ports and net_name not in referenced:
            continue
        design.add_net(net_name)
    # Ports connect to the same-named net.
    alias_of = dict(aliases)
    for port_name, port in design.ports.items():
        if port_name in referenced:
            design.connect_port(design.net(port_name), port_name)
        elif port_name in alias_of and alias_of[port_name] in referenced:
            design.connect_port(design.net(alias_of[port_name]), port_name)
    for _master, inst_name, pin, net_name in connections:
        design.connect_instance_pin(
            design.net(net_name), design.instance(inst_name), pin
        )
    # Drop fully unconnected nets is unnecessary; keep indices dense.
    return design


def write_verilog(design: Design) -> str:
    """Serialise a design to structural Verilog-lite text.

    In structural Verilog a port *is* a net, so any net connected to a
    port is emitted under the port's name (additional ports on the same
    net get ``assign`` aliases).
    """
    port_names = list(design.ports)
    # Net name -> emitted identifier (ports win), plus alias pairs.
    emit_name: Dict[str, str] = {}
    aliases: List[Tuple[str, str]] = []
    for net in design.nets:
        ports_on_net = [ref.pin_name for ref in net.pins() if ref.is_port]
        if ports_on_net:
            emit_name[net.name] = ports_on_net[0]
            for extra in ports_on_net[1:]:
                aliases.append((extra, ports_on_net[0]))
        else:
            emit_name[net.name] = net.name

    lines: List[str] = [
        f"module {design.name} (",
        "  " + ",\n  ".join(_escape(p) for p in port_names),
        ");",
    ]
    for name, port in design.ports.items():
        kind = {
            PinDirection.INPUT: "input",
            PinDirection.OUTPUT: "output",
            PinDirection.INOUT: "inout",
        }[port.direction]
        lines.append(f"  {kind} {_escape(name)};")
    for net in design.nets:
        ident = emit_name[net.name]
        if ident not in design.ports:
            lines.append(f"  wire {_escape(ident)};")
    for extra, primary in aliases:
        lines.append(f"  assign {_escape(extra)}= {_escape(primary)};")
    for inst in design.instances:
        conns = []
        for pin_name, net in sorted(inst.pin_nets.items()):
            conns.append(f".{pin_name}({_escape(emit_name[net.name])})")
        conn_text = ", ".join(conns)
        lines.append(f"  {inst.master.name} {_escape(inst.name)}({conn_text});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
