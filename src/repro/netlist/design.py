"""Core netlist data model.

This module is the in-memory design database that every other subsystem
builds on (the role OpenDB plays in the paper's flow).  It models:

* :class:`MasterCell` — a library cell (or cluster soft-macro) with pins,
  geometry, timing and power characteristics.
* :class:`Instance` — a placed occurrence of a master cell, carrying its
  hierarchical name (``top/u_core/u_alu/U123``).
* :class:`Net` — a signal hyperedge with one driver and many sinks.
* :class:`Port` — a top-level IO with a fixed boundary location.
* :class:`Design` — the container tying everything together, plus the
  floorplan bounding box.

Geometry units are microns throughout.  Capacitance is in fF, resistance
in kOhm, time in ns, power in mW unless stated otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class PinDirection(enum.Enum):
    """Direction of a cell pin or top-level port."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


class _FrozenSlots:
    """Immutable ``__slots__`` base: frozen-dataclass semantics without
    requiring ``dataclass(slots=True)`` (3.10+) or its broken pickling
    on 3.10 (bpo-45520 — fixed only in 3.11)."""

    __slots__ = ()

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _astuple(self) -> tuple:
        return tuple(getattr(self, s) for s in self.__slots__)

    def __eq__(self, other) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash((self.__class__, self._astuple()))

    def __getstate__(self) -> tuple:
        return self._astuple()

    def __setstate__(self, state: tuple) -> None:
        for slot, value in zip(self.__slots__, state):
            object.__setattr__(self, slot, value)

    def __reduce__(self):
        return (_rebuild_frozen, (self.__class__, self._astuple()))


def _rebuild_frozen(cls, state):
    """Pickle helper: rebuild a :class:`_FrozenSlots` without __init__."""
    obj = cls.__new__(cls)
    obj.__setstate__(state)
    return obj


class CellPin(_FrozenSlots):
    """A pin on a master cell.

    Attributes:
        name: Pin name, e.g. ``"A"`` or ``"Q"``.
        direction: Whether the pin is an input or output of the cell.
        capacitance: Input pin capacitance in fF (0 for outputs).
        is_clock: True for the clock pin of sequential cells.
    """

    __slots__ = ("name", "direction", "capacitance", "is_clock")

    def __init__(
        self,
        name: str,
        direction: PinDirection,
        capacitance: float = 1.0,
        is_clock: bool = False,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "direction", direction)
        object.__setattr__(self, "capacitance", capacitance)
        object.__setattr__(self, "is_clock", is_clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CellPin(name={self.name!r}, direction={self.direction!r}, "
            f"capacitance={self.capacitance!r}, is_clock={self.is_clock!r})"
        )


@dataclass
class MasterCell:
    """A library master cell (standard cell, macro, or cluster model).

    Timing uses a simple linear model per combinational arc:
    ``delay = intrinsic_delay + drive_resistance * load_capacitance``.
    Sequential cells expose ``clk_to_q``, ``setup_time`` and
    ``hold_time`` instead of combinational arcs.

    Attributes:
        name: Library name of the cell, e.g. ``"NAND2_X1"``.
        width: Physical width in microns.
        height: Physical height in microns.
        pins: Mapping from pin name to :class:`CellPin`.
        is_sequential: True for flip-flops / latches.
        is_macro: True for hard macros (RAMs) and cluster soft macros.
        intrinsic_delay: Fixed part of the combinational delay (ns).
        drive_resistance: Slope of delay vs. load (ns per fF).
        clk_to_q: Clock-to-output delay of sequential cells (ns).
        setup_time: Setup requirement at the D pin (ns).
        hold_time: Hold requirement at the D pin (ns).
        leakage_power: Static leakage power (mW).
        internal_energy: Energy per output toggle (fJ), used by the
            power analysis together with switching activity.
        cell_class: Coarse functional category used as the "cell type"
            ML feature (one of ``Design.CELL_CLASSES``).
    """

    name: str
    width: float
    height: float
    pins: Dict[str, CellPin] = field(default_factory=dict)
    is_sequential: bool = False
    is_macro: bool = False
    intrinsic_delay: float = 0.05
    drive_resistance: float = 0.004
    clk_to_q: float = 0.08
    setup_time: float = 0.04
    hold_time: float = 0.01
    leakage_power: float = 1e-5
    internal_energy: float = 0.5
    cell_class: str = "logic"

    @property
    def area(self) -> float:
        """Cell area in square microns."""
        return self.width * self.height

    def input_pins(self) -> List[CellPin]:
        """All non-clock input pins, in declaration order."""
        return [
            p
            for p in self.pins.values()
            if p.direction is PinDirection.INPUT and not p.is_clock
        ]

    def output_pins(self) -> List[CellPin]:
        """All output pins, in declaration order."""
        return [p for p in self.pins.values() if p.direction is PinDirection.OUTPUT]

    def clock_pin(self) -> Optional[CellPin]:
        """The clock pin if the cell is sequential, else None."""
        for pin in self.pins.values():
            if pin.is_clock:
                return pin
        return None


class PinRef(_FrozenSlots):
    """A reference to one pin of one instance (or a top-level port).

    ``instance`` is None when the reference denotes a top-level port, in
    which case ``pin_name`` holds the port name.
    """

    __slots__ = ("instance", "pin_name")

    def __init__(self, instance: Optional["Instance"], pin_name: str) -> None:
        object.__setattr__(self, "instance", instance)
        object.__setattr__(self, "pin_name", pin_name)

    @property
    def is_port(self) -> bool:
        """True when this reference points at a top-level port."""
        return self.instance is None

    def direction(self, design: "Design") -> PinDirection:
        """Resolve the direction of the referenced pin."""
        if self.instance is None:
            return design.ports[self.pin_name].direction
        return self.instance.master.pins[self.pin_name].direction

    def capacitance(self, design: "Design") -> float:
        """Input capacitance presented by this pin (fF)."""
        if self.instance is None:
            return design.ports[self.pin_name].capacitance
        return self.instance.master.pins[self.pin_name].capacitance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self.instance.name if self.instance else "<port>"
        return f"PinRef({owner}.{self.pin_name})"


class Instance:
    """A placed occurrence of a master cell.

    The hierarchical name encodes the logical hierarchy with ``/``
    separators; the final component is the local instance name.

    Attributes:
        name: Full hierarchical name, e.g. ``"u_core/u_alu/U12"``.
        master: The :class:`MasterCell` this instance instantiates.
        index: Dense integer id assigned by the owning :class:`Design`;
            used to index placement arrays and hypergraph vertices.
        x, y: Placement location of the instance centre (microns).
        fixed: True when the placer must not move the instance.
    """

    __slots__ = ("name", "master", "index", "x", "y", "fixed", "pin_nets")

    def __init__(self, name: str, master: MasterCell, index: int = -1) -> None:
        self.name = name
        self.master = master
        self.index = index
        self.x = 0.0
        self.y = 0.0
        self.fixed = False
        #: Mapping pin name -> Net, populated as nets are connected.
        self.pin_nets: Dict[str, "Net"] = {}

    @property
    def hierarchy_path(self) -> List[str]:
        """The logical-hierarchy modules enclosing this instance.

        For ``"u_core/u_alu/U12"`` this returns ``["u_core", "u_alu"]``.
        """
        parts = self.name.split("/")
        return parts[:-1]

    @property
    def local_name(self) -> str:
        """The leaf instance name without hierarchy prefix."""
        return self.name.rsplit("/", 1)[-1]

    @property
    def area(self) -> float:
        """Area of the master cell (square microns)."""
        return self.master.area

    def net_on(self, pin_name: str) -> Optional["Net"]:
        """The net connected to ``pin_name``, or None when unconnected."""
        return self.pin_nets.get(pin_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self.name}:{self.master.name})"


class Net:
    """A signal net: a hyperedge with one driver and zero or more sinks.

    Attributes:
        name: Net name (hierarchical names are flattened with ``/``).
        driver: :class:`PinRef` of the driving pin (instance output or
            top-level input port); None for floating nets.
        sinks: List of :class:`PinRef` loads.
        index: Dense integer id assigned by the owning :class:`Design`.
        weight: Placement net weight (1.0 by default; the OpenROAD-mode
            seeded placement scales IO-net weights by 4).
        is_clock: True for clock-distribution nets (excluded from
            signal-placement objectives and routed by CTS instead).
        switching_activity: Toggles per clock cycle, filled in by the
            vectorless activity propagation in :mod:`repro.sta.activity`.
    """

    __slots__ = (
        "name",
        "driver",
        "sinks",
        "index",
        "weight",
        "is_clock",
        "switching_activity",
    )

    def __init__(self, name: str, index: int = -1) -> None:
        self.name = name
        self.driver: Optional[PinRef] = None
        self.sinks: List[PinRef] = []
        self.index = index
        self.weight = 1.0
        self.is_clock = False
        self.switching_activity = 0.0

    def pins(self) -> Iterator[PinRef]:
        """Iterate all pin references (driver first when present)."""
        if self.driver is not None:
            yield self.driver
        yield from self.sinks

    def instances(self) -> Iterator[Instance]:
        """Iterate distinct instances touched by this net."""
        seen = set()
        for ref in self.pins():
            inst = ref.instance
            if inst is not None and id(inst) not in seen:
                seen.add(id(inst))
                yield inst

    @property
    def fanout(self) -> int:
        """Number of sink pins."""
        return len(self.sinks)

    @property
    def degree(self) -> int:
        """Total number of pin connections (driver + sinks)."""
        return len(self.sinks) + (1 if self.driver is not None else 0)

    def touches_port(self) -> bool:
        """True when any connection is a top-level port (an IO net)."""
        return any(ref.is_port for ref in self.pins())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name}, degree={self.degree})"


@dataclass
class Port:
    """A top-level IO port with a fixed location on the die boundary.

    Attributes:
        name: Port name.
        direction: INPUT ports drive nets; OUTPUT ports load them.
        x, y: Fixed location on the floorplan boundary (microns).
        capacitance: External load seen by output ports (fF).
    """

    name: str
    direction: PinDirection
    x: float = 0.0
    y: float = 0.0
    capacitance: float = 2.0


@dataclass
class Floorplan:
    """The die / core bounding box and row geometry.

    Attributes:
        die_width, die_height: Die bounding box (microns).
        core_margin: Margin between die edge and the placeable core.
        row_height: Standard-cell row height (microns).
        target_utilization: Fraction of core area available to cells.
    """

    die_width: float = 100.0
    die_height: float = 100.0
    core_margin: float = 2.0
    row_height: float = 1.4
    target_utilization: float = 0.7

    @property
    def core_llx(self) -> float:
        """Core lower-left x."""
        return self.core_margin

    @property
    def core_lly(self) -> float:
        """Core lower-left y."""
        return self.core_margin

    @property
    def core_urx(self) -> float:
        """Core upper-right x."""
        return self.die_width - self.core_margin

    @property
    def core_ury(self) -> float:
        """Core upper-right y."""
        return self.die_height - self.core_margin

    @property
    def core_width(self) -> float:
        """Width of the placeable core (microns)."""
        return self.core_urx - self.core_llx

    @property
    def core_height(self) -> float:
        """Height of the placeable core (microns)."""
        return self.core_ury - self.core_lly

    @property
    def core_area(self) -> float:
        """Area of the placeable core (square microns)."""
        return self.core_width * self.core_height


class Design:
    """The top-level design database.

    Holds masters, instances, nets and ports, assigns dense indices, and
    answers the structural queries (hypergraph view, hierarchy tree)
    that clustering and placement consume.

    Attributes:
        name: Design name.
        floorplan: The :class:`Floorplan` bounding box.
        clock_period: Target clock period from SDC (ns); None when the
            design is unconstrained.
        clock_port: Name of the clock source port, when present.
    """

    #: Coarse functional categories used as the categorical "cell type"
    #: ML feature (one-hot encoded to 8 dimensions by repro.ml.features).
    CELL_CLASSES: Tuple[str, ...] = (
        "logic",
        "inv",
        "buf",
        "seq",
        "arith",
        "mux",
        "macro",
        "io",
    )

    def __init__(self, name: str, floorplan: Optional[Floorplan] = None) -> None:
        self.name = name
        self.floorplan = floorplan or Floorplan()
        self.clock_period: Optional[float] = None
        self.clock_port: Optional[str] = None
        self.masters: Dict[str, MasterCell] = {}
        self.instances: List[Instance] = []
        self.nets: List[Net] = []
        self.ports: Dict[str, Port] = {}
        self._instance_by_name: Dict[str, Instance] = {}
        self._net_by_name: Dict[str, Net] = {}
        #: Monotonic counter bumped by every structural mutation made
        #: through the construction API (add_instance / add_net /
        #: add_port / connect).  Derived caches — signal_nets(),
        #: net_degrees(), the :class:`repro.netlist.arrays.NetlistArrays`
        #: form — key on :meth:`structure_key`.  Code that mutates
        #: connectivity *outside* the construction API (e.g. editing
        #: ``net.sinks`` in place) must call
        #: :meth:`bump_structure_version`.
        self._structure_version = 0
        self._signal_nets_cache: Optional[Tuple[tuple, List[Net]]] = None
        self._degree_cache: Optional[tuple] = None
        #: Cached flat-array form (filled by Design.arrays()).
        self._netlist_arrays = None

    def __getstate__(self) -> Dict[str, object]:
        """Drop derived caches when pickling / deep-copying.

        The array form, signal-net list, degree arrays and the HPWL
        pin-array cache are all rebuildable and would otherwise bloat
        checkpoints (and drag stale numpy buffers across processes).
        """
        state = self.__dict__.copy()
        for key in (
            "_netlist_arrays",
            "_signal_nets_cache",
            "_degree_cache",
            "_hpwl_net_arrays",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        # Designs pickled by older code predate the cache fields.
        self.__dict__.setdefault("_structure_version", 0)
        self._signal_nets_cache = None
        self._degree_cache = None
        self._netlist_arrays = None

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    def bump_structure_version(self) -> None:
        """Invalidate every structure-derived cache.

        Called automatically by the construction API; call it manually
        after mutating connectivity in place (editing ``net.sinks``,
        re-pointing a driver, flipping ``net.is_clock`` after
        construction has finished).
        """
        self._structure_version += 1
        self._signal_nets_cache = None
        self._degree_cache = None
        self._netlist_arrays = None

    def structure_key(self) -> tuple:
        """Cheap fingerprint of the netlist structure.

        Combines the mutation counter with entity counts and the
        clock-net count, so caches also survive code paths that flip
        ``is_clock`` without touching the construction API (the same
        convention :mod:`repro.place.hpwl` uses).
        """
        clock_nets = sum(1 for n in self.nets if n.is_clock)
        return (
            self._structure_version,
            len(self.instances),
            len(self.nets),
            len(self.ports),
            clock_nets,
        )

    # ------------------------------------------------------------------
    # Construction API
    # ------------------------------------------------------------------
    def add_master(self, master: MasterCell) -> MasterCell:
        """Register a master cell; returns the master for chaining."""
        if master.name in self.masters:
            raise ValueError(f"duplicate master cell {master.name!r}")
        self.masters[master.name] = master
        return master

    def add_instance(self, name: str, master: MasterCell) -> Instance:
        """Create an instance of ``master`` with hierarchical ``name``."""
        if name in self._instance_by_name:
            raise ValueError(f"duplicate instance name {name!r}")
        if master.name not in self.masters:
            self.add_master(master)
        inst = Instance(name, master, index=len(self.instances))
        self.instances.append(inst)
        self._instance_by_name[name] = inst
        self.bump_structure_version()
        return inst

    def add_net(self, name: str) -> Net:
        """Create an empty net with the given name."""
        if name in self._net_by_name:
            raise ValueError(f"duplicate net name {name!r}")
        net = Net(name, index=len(self.nets))
        self.nets.append(net)
        self._net_by_name[name] = net
        self.bump_structure_version()
        return net

    def add_port(
        self,
        name: str,
        direction: PinDirection,
        x: float = 0.0,
        y: float = 0.0,
    ) -> Port:
        """Create a top-level IO port at a boundary location."""
        if name in self.ports:
            raise ValueError(f"duplicate port name {name!r}")
        port = Port(name, direction, x, y)
        self.ports[name] = port
        self.bump_structure_version()
        return port

    def connect(self, net: Net, ref: PinRef) -> None:
        """Attach a pin reference to a net as driver or sink.

        Output pins of instances and top-level INPUT ports drive the
        net; everything else is a sink.  A net may have only one driver.
        """
        direction = ref.direction(self)
        drives = (ref.is_port and direction is PinDirection.INPUT) or (
            not ref.is_port and direction is PinDirection.OUTPUT
        )
        if drives:
            if net.driver is not None:
                raise ValueError(f"net {net.name!r} already has a driver")
            net.driver = ref
        else:
            net.sinks.append(ref)
        if ref.instance is not None:
            existing = ref.instance.pin_nets.get(ref.pin_name)
            if existing is not None and existing is not net:
                raise ValueError(
                    f"pin {ref.instance.name}.{ref.pin_name} is already "
                    f"connected to net {existing.name!r}"
                )
            ref.instance.pin_nets[ref.pin_name] = net
        self.bump_structure_version()

    def connect_instance_pin(self, net: Net, instance: Instance, pin: str) -> None:
        """Convenience wrapper: connect ``instance.pin`` to ``net``."""
        if pin not in instance.master.pins:
            raise KeyError(f"{instance.master.name} has no pin {pin!r}")
        self.connect(net, PinRef(instance, pin))

    def connect_port(self, net: Net, port_name: str) -> None:
        """Convenience wrapper: connect a top-level port to ``net``."""
        if port_name not in self.ports:
            raise KeyError(f"no port {port_name!r}")
        self.connect(net, PinRef(None, port_name))

    # ------------------------------------------------------------------
    # Mutation API (ECO)
    # ------------------------------------------------------------------
    def disconnect_pin(self, instance: Instance, pin: str) -> Optional[Net]:
        """Detach ``instance.pin`` from its net; returns the old net.

        Removes the :class:`PinRef` from the net's driver/sink lists and
        from ``instance.pin_nets``, and invalidates every
        structure-derived cache (``signal_nets()`` / ``net_degrees()`` /
        ``arrays()`` and anything keyed on :meth:`structure_key`, such
        as the memoised ``Hypergraph.incidence`` held by
        :class:`repro.db.database.DesignDatabase`).  Returns None when
        the pin was unconnected.
        """
        net = instance.pin_nets.pop(pin, None)
        if net is None:
            return None
        ref = PinRef(instance, pin)
        if net.driver == ref:
            net.driver = None
        else:
            try:
                net.sinks.remove(ref)
            except ValueError:  # pragma: no cover - defensive
                pass
        self.bump_structure_version()
        return net

    def reconnect_pin(self, instance: Instance, pin: str, net: Net) -> None:
        """Move ``instance.pin`` onto ``net`` (ECO reconnect).

        Disconnects any existing connection first, then attaches through
        :meth:`connect` so driver/sink bookkeeping and cache
        invalidation follow the construction-API rules.
        """
        if pin not in instance.master.pins:
            raise KeyError(f"{instance.master.name} has no pin {pin!r}")
        if instance.pin_nets.get(pin) is net:
            return
        self.disconnect_pin(instance, pin)
        self.connect(net, PinRef(instance, pin))

    def remove_net(self, net: Net) -> None:
        """Delete a net, detaching every connected pin first.

        Net indices above the removed one are renumbered to stay dense
        (callers holding index-keyed arrays must remap — see
        :class:`repro.eco.apply.EcoImpact`).
        """
        if net.index < 0 or net.index >= len(self.nets) or self.nets[net.index] is not net:
            raise ValueError(f"net {net.name!r} is not owned by this design")
        for ref in list(net.pins()):
            inst = ref.instance
            if inst is not None and inst.pin_nets.get(ref.pin_name) is net:
                del inst.pin_nets[ref.pin_name]
        net.driver = None
        net.sinks = []
        self.nets.pop(net.index)
        del self._net_by_name[net.name]
        for i in range(net.index, len(self.nets)):
            self.nets[i].index = i
        net.index = -1
        self.bump_structure_version()

    def remove_instance(self, instance: Instance) -> None:
        """Delete an instance, detaching all its pins first.

        Instance indices above the removed one are renumbered to stay
        dense; nets the instance drove are left driverless (the ECO
        apply layer reconnects or removes them).
        """
        if (
            instance.index < 0
            or instance.index >= len(self.instances)
            or self.instances[instance.index] is not instance
        ):
            raise ValueError(f"instance {instance.name!r} is not owned by this design")
        for pin in list(instance.pin_nets):
            self.disconnect_pin(instance, pin)
        self.instances.pop(instance.index)
        del self._instance_by_name[instance.name]
        for i in range(instance.index, len(self.instances)):
            self.instances[i].index = i
        instance.index = -1
        self.bump_structure_version()

    def replace_master(self, instance: Instance, master: MasterCell) -> None:
        """Swap an instance's master in place (gate resize / cell swap).

        Every *connected* pin must exist on the new master with the same
        direction.  Connectivity is untouched, so the memoised
        ``signal_nets()`` / ``net_degrees()`` views are surgically
        re-keyed instead of rebuilt, and the cached
        :class:`~repro.netlist.arrays.NetlistArrays` form is patched in
        place when the pin declarations match (falling back to a full
        rebuild otherwise).
        """
        old = instance.master
        if master is old:
            return
        for pin_name in instance.pin_nets:
            new_pin = master.pins.get(pin_name)
            if new_pin is None:
                raise ValueError(
                    f"cannot swap {instance.name} to {master.name}: "
                    f"connected pin {pin_name!r} missing on new master"
                )
            if new_pin.direction is not old.pins[pin_name].direction:
                raise ValueError(
                    f"cannot swap {instance.name} to {master.name}: "
                    f"pin {pin_name!r} changes direction"
                )
        registered = self.masters.get(master.name)
        if registered is None:
            self.add_master(master)
        elif registered is not master:
            raise ValueError(
                f"a different master named {master.name!r} is already registered"
            )
        instance.master = master
        self._note_geometry_change(instance.index)

    def _note_geometry_change(self, inst_index: int) -> None:
        """Surgical invalidation after a connectivity-preserving edit.

        Bumps the structure version (so external caches keyed on
        :meth:`structure_key` — the database hypergraph, HPWL pin
        arrays — rebuild), but re-keys the memoised ``signal_nets()`` /
        ``net_degrees()`` views, which only depend on connectivity, and
        patches the array form in place via
        :meth:`repro.netlist.arrays.NetlistArrays.patch_instance_master`.
        """
        signal_cache = self._signal_nets_cache
        degree_cache = self._degree_cache
        arrays = self._netlist_arrays
        old_key = self.structure_key()
        self.bump_structure_version()
        new_key = self.structure_key()
        if signal_cache is not None and signal_cache[0] == old_key:
            self._signal_nets_cache = (new_key, signal_cache[1])
        if degree_cache is not None and degree_cache[0] == old_key:
            self._degree_cache = (new_key,) + tuple(degree_cache[1:])
        if arrays is not None and arrays.structure_key == old_key:
            if arrays.patch_instance_master(inst_index):
                arrays.structure_key = new_key
                self._netlist_arrays = arrays

    # ------------------------------------------------------------------
    # Lookup API
    # ------------------------------------------------------------------
    def instance(self, name: str) -> Instance:
        """Look up an instance by hierarchical name."""
        return self._instance_by_name[name]

    def net(self, name: str) -> Net:
        """Look up a net by name."""
        return self._net_by_name[name]

    def has_instance(self, name: str) -> bool:
        """True when an instance with this name exists."""
        return name in self._instance_by_name

    def signal_nets(self) -> List[Net]:
        """All non-clock nets with at least two connections.

        Cached per :meth:`structure_key` — hot loops (routing, STA
        tables, feature extraction) call this repeatedly and used to
        rebuild the filtered list on every call.
        """
        key = self.structure_key()
        cached = self._signal_nets_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        nets = [n for n in self.nets if not n.is_clock and n.degree >= 2]
        self._signal_nets_cache = (key, nets)
        return nets

    def net_degrees(self) -> "Tuple[object, object]":
        """Cached ``(degrees, fanouts)`` int arrays indexed by net index.

        ``degrees[i] == nets[i].degree`` and ``fanouts[i] ==
        nets[i].fanout``; rebuilt only when :meth:`structure_key`
        changes, so hot loops can read counts without re-deriving them
        net by net.
        """
        import numpy as np

        key = self.structure_key()
        cached = self._degree_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        count = len(self.nets)
        fanouts = np.fromiter(
            (len(n.sinks) for n in self.nets), dtype=np.int64, count=count
        )
        drivers = np.fromiter(
            (n.driver is not None for n in self.nets), dtype=bool, count=count
        )
        degrees = fanouts + drivers
        self._degree_cache = (key, degrees, fanouts)
        return degrees, fanouts

    def arrays(self):
        """The flat array-native form (:class:`repro.netlist.arrays.NetlistArrays`).

        Built on first use and cached against :meth:`structure_key`;
        invalidated automatically by the construction API (see
        :meth:`bump_structure_version` for out-of-API mutations).
        """
        from repro.netlist.arrays import NetlistArrays

        key = self.structure_key()
        cached = self._netlist_arrays
        if cached is not None and cached.structure_key == key:
            return cached
        arrays = NetlistArrays.from_design(self)
        arrays.structure_key = key
        self._netlist_arrays = arrays
        return arrays

    def sequential_instances(self) -> List[Instance]:
        """All flip-flop / latch instances."""
        return [i for i in self.instances if i.master.is_sequential]

    def macro_instances(self) -> List[Instance]:
        """All hard-macro instances."""
        return [i for i in self.instances if i.master.is_macro]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Number of instances."""
        return len(self.instances)

    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self.nets)

    def total_cell_area(self) -> float:
        """Sum of instance areas (square microns)."""
        return sum(inst.area for inst in self.instances)

    def utilization(self) -> float:
        """Cell area divided by core area."""
        core = self.floorplan.core_area
        if core <= 0:
            return 0.0
        return self.total_cell_area() / core

    def stats(self) -> Dict[str, float]:
        """Summary statistics, as reported in Table 1 of the paper."""
        return {
            "instances": self.num_instances,
            "nets": self.num_nets,
            "ports": len(self.ports),
            "sequential": len(self.sequential_instances()),
            "macros": len(self.macro_instances()),
            "cell_area": self.total_cell_area(),
            "utilization": self.utilization(),
            "clock_period": self.clock_period or float("nan"),
        }

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problem strings.

        An empty list means the design is structurally sound: every net
        has a driver, pins exist on their masters, indices are dense.
        """
        problems: List[str] = []
        for i, inst in enumerate(self.instances):
            if inst.index != i:
                problems.append(f"instance {inst.name} has stale index {inst.index}")
        for i, net in enumerate(self.nets):
            if net.index != i:
                problems.append(f"net {net.name} has stale index {net.index}")
            if net.driver is None and net.degree > 0:
                problems.append(f"net {net.name} has no driver")
            for ref in net.pins():
                if ref.instance is not None and ref.pin_name not in ref.instance.master.pins:
                    problems.append(
                        f"net {net.name}: {ref.instance.name} has no pin {ref.pin_name}"
                    )
        return problems

    def positions(self) -> "Tuple[List[float], List[float]]":
        """Current (x, y) coordinate lists, indexed by instance index."""
        return [i.x for i in self.instances], [i.y for i in self.instances]

    def set_positions(self, xs: Iterable[float], ys: Iterable[float]) -> None:
        """Write placement coordinates back onto instances."""
        for inst, x, y in zip(self.instances, xs, ys):
            if not inst.fixed:
                inst.x = float(x)
                inst.y = float(y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Design({self.name}, insts={self.num_instances}, "
            f"nets={self.num_nets}, ports={len(self.ports)})"
        )
