"""Liberty (.lib) lite reader / writer.

Supports the subset of Liberty the flow needs: cells with area, pins
(direction, capacitance, clock flag), a linear timing model
(``intrinsic_delay`` / ``drive_resistance`` expressed via our own
attributes), sequential attributes and leakage power.  The writer emits
files the reader round-trips, which the tests verify.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.design import CellPin, MasterCell, PinDirection

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>/\*.*?\*/)              # block comments
  | (?P<string>"[^"]*")
  | (?P<word>[A-Za-z_][\w\.\-]*)
  | (?P<number>-?\d+\.?\d*(?:[eE][-+]?\d+)?)
  | (?P<punct>[{}();:,])
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> List[str]:
    """Split Liberty source into tokens, dropping comments."""
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer(text):
        if match.lastgroup == "comment":
            continue
        tokens.append(match.group(0))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ValueError("unexpected end of liberty file")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ValueError(f"expected {tok!r}, got {got!r}")

    def parse_group(self) -> Tuple[str, str, dict]:
        """Parse ``name ( arg ) { ... }`` and return (name, arg, body).

        The body dict maps attribute names to scalar values and group
        names to lists of parsed sub-groups.
        """
        name = self.next()
        self.expect("(")
        arg_parts = []
        while self.peek() != ")":
            arg_parts.append(self.next())
        self.expect(")")
        arg = "".join(arg_parts).strip('"')
        self.expect("{")
        body: dict = {"_groups": []}
        while self.peek() != "}":
            tok = self.peek()
            if tok is None:
                raise ValueError("unterminated group")
            # Lookahead: attribute (name : value ;) or nested group.
            if self.pos + 1 < len(self.tokens) and self.tokens[self.pos + 1] == ":":
                attr = self.next()
                self.expect(":")
                value_parts = []
                while self.peek() not in (";", None):
                    value_parts.append(self.next())
                self.expect(";")
                body[attr] = " ".join(value_parts).strip('"')
            else:
                body["_groups"].append(self.parse_group())
        self.expect("}")
        return name, arg, body


def _parse_float(body: dict, key: str, default: float) -> float:
    """Fetch a float attribute with a default."""
    raw = body.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def parse_liberty(text: str) -> Dict[str, MasterCell]:
    """Parse a Liberty-lite library into master cells keyed by name."""
    tokens = _tokenize(text)
    parser = _Parser(tokens)
    name, _arg, body = parser.parse_group()
    if name != "library":
        raise ValueError(f"expected library group, got {name!r}")
    masters: Dict[str, MasterCell] = {}
    for group_name, cell_name, cell_body in body["_groups"]:
        if group_name != "cell":
            continue
        masters[cell_name] = _parse_cell(cell_name, cell_body)
    return masters


def _parse_cell(name: str, body: dict) -> MasterCell:
    """Build a MasterCell from a parsed ``cell`` group."""
    area = _parse_float(body, "area", 1.0)
    height = _parse_float(body, "cell_height", 1.4)
    width = area / height if height > 0 else area
    master = MasterCell(
        name=name,
        width=width,
        height=height,
        is_sequential=any(g[0] == "ff" for g in body["_groups"]),
        is_macro=body.get("is_macro", "false") == "true",
        intrinsic_delay=_parse_float(body, "intrinsic_delay", 0.05),
        drive_resistance=_parse_float(body, "drive_resistance", 0.004),
        clk_to_q=_parse_float(body, "clk_to_q", 0.08),
        setup_time=_parse_float(body, "setup_time", 0.04),
        hold_time=_parse_float(body, "hold_time", 0.01),
        leakage_power=_parse_float(body, "cell_leakage_power", 1e-5),
        internal_energy=_parse_float(body, "internal_energy", 0.5),
        cell_class=body.get("cell_class", "logic"),
    )
    for group_name, pin_name, pin_body in body["_groups"]:
        if group_name != "pin":
            continue
        direction = {
            "input": PinDirection.INPUT,
            "output": PinDirection.OUTPUT,
            "inout": PinDirection.INOUT,
        }[pin_body.get("direction", "input")]
        master.pins[pin_name] = CellPin(
            name=pin_name,
            direction=direction,
            capacitance=_parse_float(pin_body, "capacitance", 1.0),
            is_clock=pin_body.get("clock", "false") == "true",
        )
    return master


def write_liberty(masters: Dict[str, MasterCell], library_name: str = "repro") -> str:
    """Serialise master cells to Liberty-lite text."""
    lines: List[str] = [f"library ({library_name}) {{"]
    for master in masters.values():
        lines.append(f"  cell ({master.name}) {{")
        lines.append(f"    area : {master.area:.6f} ;")
        lines.append(f"    cell_height : {master.height:.6f} ;")
        lines.append(f"    cell_class : {master.cell_class} ;")
        if master.is_macro:
            lines.append("    is_macro : true ;")
        lines.append(f"    intrinsic_delay : {master.intrinsic_delay:.6f} ;")
        lines.append(f"    drive_resistance : {master.drive_resistance:.6f} ;")
        lines.append(f"    cell_leakage_power : {master.leakage_power:.6e} ;")
        lines.append(f"    internal_energy : {master.internal_energy:.6f} ;")
        if master.is_sequential:
            lines.append("    ff (IQ) {")
            lines.append("      clocked_on : CK ;")
            lines.append("    }")
            lines.append(f"    clk_to_q : {master.clk_to_q:.6f} ;")
            lines.append(f"    setup_time : {master.setup_time:.6f} ;")
            lines.append(f"    hold_time : {master.hold_time:.6f} ;")
        for pin in master.pins.values():
            lines.append(f"    pin ({pin.name}) {{")
            lines.append(f"      direction : {pin.direction.value} ;")
            lines.append(f"      capacitance : {pin.capacitance:.6f} ;")
            if pin.is_clock:
                lines.append("      clock : true ;")
            lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
