"""Array-native netlist core: the flat CSR form of a :class:`Design`.

This module promotes the flat representation proved out by
:mod:`repro.netlist.snapshot` from a serialization detail to the
*primary* in-memory form of the netlist.  A :class:`NetlistArrays`
holds the whole design as typed NumPy arrays:

* net -> pin incidence as one CSR (``net_ptr`` / pin rows, driver
  first within each net), with per-pin owner, capacitance, direction
  and interned pin-name ids;
* instance -> connection reverse CSR (``ipin_ptr`` / ``ipin_rows``,
  rows in master-pin declaration order);
* per-master tables (geometry, timing, power, cell-class codes and the
  pin declaration list);
* per-instance master indices and areas;
* port geometry, directions and capacitances.

The flow's hot consumers — hypergraph construction
(:meth:`hyperedge_csr`), the STA graph build
(:class:`repro.sta.graph.TimingGraph`), placer netlist extraction
(:meth:`placement_csr`), HPWL/routing pin gathers (:meth:`pin_vertex_csr`)
and ML feature extraction — read these arrays directly instead of
walking the linked object graph, which is what lets the repo scale to
paper-sized (million-instance) netlists.

Caching and invalidation
------------------------

``design.arrays()`` builds the form once and caches it against
:meth:`Design.structure_key`; every construction-API mutation
(``add_instance`` / ``add_net`` / ``add_port`` / ``connect``)
invalidates it automatically, and out-of-API connectivity edits must
call :meth:`Design.bump_structure_version`.  Mutable *attributes* are
deliberately not trusted from the snapshot: net weights, switching
activity, instance coordinates/areas (gate sizing swaps masters in
place) and port coordinates are re-gathered from the object view by the
``current_*`` accessors, so consumers always see live values while the
expensive connectivity flattening is reused.

A :class:`NetlistArrays` can also be built directly (no object graph at
all) — the array-native fast path of :mod:`repro.designs.generator`
does exactly that for million-instance synthetic designs — and
materialized into an object-view :class:`Design` with :meth:`to_design`
(digest-identical to a design built through the construction API).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.design import (
    CellPin,
    Design,
    Floorplan,
    Instance,
    MasterCell,
    Net,
    PinDirection,
    PinRef,
    Port,
)

#: Direction codes used by ``mp_dir`` / ``pin_dir`` / ``port_dir``.
DIR_INPUT, DIR_OUTPUT, DIR_INOUT = 0, 1, 2

_DIRECTIONS: Tuple[PinDirection, ...] = (
    PinDirection.INPUT,
    PinDirection.OUTPUT,
    PinDirection.INOUT,
)
_DIR_CODE: Dict[PinDirection, int] = {d: i for i, d in enumerate(_DIRECTIONS)}


def multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each (start, count).

    The classic vectorized gather used throughout the flat kernels
    (same construction as :func:`repro.sta.flat._gather_ranges`).
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    nonzero = counts > 0
    if not nonzero.all():
        starts = starts[nonzero]
        counts = counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    out[0] = starts[0]
    if len(starts) > 1:
        out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


class _MasterTables:
    """Flattened master-cell library tables (see :func:`flatten_masters`)."""

    __slots__ = (
        "names",
        "classes",
        "scalars",
        "flags",
        "mp_ptr",
        "mp_name_idx",
        "mp_dir",
        "mp_is_clock",
        "mp_cap",
        "index_of",
        "slot_of",
    )


def flatten_masters(
    masters: Dict[str, "MasterCell"],
    pool_index: Dict[str, int],
    name_pool: List[str],
) -> _MasterTables:
    """Flatten a master-cell dict into typed tables.

    Pin names are interned into ``name_pool`` (extended in place via
    ``pool_index``).  Shared by :meth:`NetlistArrays.from_design` and
    the array-native generator fast path.
    """

    def intern(name: str) -> int:
        idx = pool_index.get(name)
        if idx is None:
            idx = len(name_pool)
            pool_index[name] = idx
            name_pool.append(name)
        return idx

    t = _MasterTables()
    t.names = []
    t.classes = []
    t.index_of = {}
    t.slot_of = {}
    scalars: List[Tuple[float, ...]] = []
    flags: List[Tuple[bool, bool]] = []
    mp_counts: List[int] = []
    t.mp_name_idx = []
    t.mp_dir = []
    t.mp_is_clock = []
    t.mp_cap = []
    for name, m in masters.items():
        mi = len(t.names)
        t.index_of[id(m)] = mi
        t.names.append(name)
        t.classes.append(m.cell_class)
        scalars.append(
            (
                m.width,
                m.height,
                m.intrinsic_delay,
                m.drive_resistance,
                m.clk_to_q,
                m.setup_time,
                m.hold_time,
                m.leakage_power,
                m.internal_energy,
            )
        )
        flags.append((m.is_sequential, m.is_macro))
        mp_counts.append(len(m.pins))
        for pin in m.pins.values():
            t.slot_of[(mi, pin.name)] = len(t.mp_name_idx)
            t.mp_name_idx.append(intern(pin.name))
            t.mp_dir.append(_DIR_CODE[pin.direction])
            t.mp_is_clock.append(pin.is_clock)
            t.mp_cap.append(pin.capacitance)
    t.scalars = np.asarray(scalars, dtype=np.float64).reshape(-1, 9)
    t.flags = np.asarray(flags, dtype=bool).reshape(-1, 2)
    t.mp_ptr = np.concatenate(([0], np.cumsum(mp_counts))).astype(np.int64)
    t.mp_name_idx = np.asarray(t.mp_name_idx, dtype=np.int32)
    t.mp_dir = np.asarray(t.mp_dir, dtype=np.int8)
    t.mp_is_clock = np.asarray(t.mp_is_clock, dtype=bool)
    t.mp_cap = np.asarray(t.mp_cap, dtype=np.float64)
    return t


class NetlistArrays:
    """The flat CSR / typed-array form of one netlist (module docstring).

    All arrays are plain NumPy; lists hold interned strings only.  The
    per-field layout:

    Name interning
        ``name_pool``: every distinct master-pin and port name.

    Masters (index order = ``master_names`` order)
        ``m_width/m_height/m_area``, ``m_is_seq/m_is_macro``,
        ``m_intrinsic/m_drive/m_clk_to_q/m_setup/m_hold/m_leakage/m_energy``,
        ``m_class_code`` (index into ``Design.CELL_CLASSES``, -1 when
        unknown) + ``master_classes`` (raw strings);
        master-pin slots in declaration order:
        ``mp_ptr[m]:mp_ptr[m+1]`` rows with ``mp_name_idx`` /
        ``mp_dir`` / ``mp_is_clock`` / ``mp_cap``.

    Instances
        ``inst_master`` (master index), ``inst_area`` (build-time
        snapshot; sizing swaps masters — use
        :meth:`current_inst_areas`), optional ``inst_names``.

    Ports (insertion order)
        ``port_name_idx/port_dir/port_x/port_y/port_cap`` and
        ``port_sorted_rank`` (rank in sorted-name order — the vertex
        convention of :class:`repro.place.problem.PlacementProblem`).

    Nets / pins
        ``net_ptr`` CSR over pin rows in ``net.pins()`` order (driver
        first when ``net_has_driver``); per-net ``net_is_clock`` /
        ``net_weight`` / ``net_activity`` (weight/activity are
        snapshots; see ``current_*``); per-pin ``pin_inst`` (-1 for
        ports), ``pin_port`` (port insertion index, -1 for instance
        pins), ``pin_name_idx``, ``pin_slot`` (global master-pin slot,
        -1 for ports), ``pin_cap``, ``pin_dir``, ``pin_is_clockpin``.
    """

    def __init__(
        self,
        *,
        name: str,
        floorplan: Tuple[float, float, float, float, float],
        clock_period: Optional[float],
        clock_port: Optional[str],
        name_pool: List[str],
        master_names: List[str],
        master_classes: List[str],
        m_width: np.ndarray,
        m_height: np.ndarray,
        m_is_seq: np.ndarray,
        m_is_macro: np.ndarray,
        m_intrinsic: np.ndarray,
        m_drive: np.ndarray,
        m_clk_to_q: np.ndarray,
        m_setup: np.ndarray,
        m_hold: np.ndarray,
        m_leakage: np.ndarray,
        m_energy: np.ndarray,
        mp_ptr: np.ndarray,
        mp_name_idx: np.ndarray,
        mp_dir: np.ndarray,
        mp_is_clock: np.ndarray,
        mp_cap: np.ndarray,
        inst_master: np.ndarray,
        port_name_idx: np.ndarray,
        port_dir: np.ndarray,
        port_x: np.ndarray,
        port_y: np.ndarray,
        port_cap: np.ndarray,
        net_ptr: np.ndarray,
        net_has_driver: np.ndarray,
        net_is_clock: np.ndarray,
        net_weight: np.ndarray,
        net_activity: np.ndarray,
        pin_inst: np.ndarray,
        pin_port: np.ndarray,
        pin_name_idx: np.ndarray,
        pin_slot: np.ndarray,
        inst_names: Optional[List[str]] = None,
        net_names: Optional[List[str]] = None,
        design: Optional[Design] = None,
    ) -> None:
        self.name = name
        self.floorplan = floorplan
        self.clock_period = clock_period
        self.clock_port = clock_port
        self.name_pool = name_pool
        self.master_names = master_names
        self.master_classes = master_classes
        self.m_width = m_width
        self.m_height = m_height
        self.m_area = m_width * m_height
        self.m_is_seq = m_is_seq
        self.m_is_macro = m_is_macro
        self.m_intrinsic = m_intrinsic
        self.m_drive = m_drive
        self.m_clk_to_q = m_clk_to_q
        self.m_setup = m_setup
        self.m_hold = m_hold
        self.m_leakage = m_leakage
        self.m_energy = m_energy
        classes = {c: i for i, c in enumerate(Design.CELL_CLASSES)}
        self.m_class_code = np.fromiter(
            (classes.get(c, -1) for c in master_classes),
            dtype=np.int16,
            count=len(master_classes),
        )
        self.mp_ptr = mp_ptr
        self.mp_name_idx = mp_name_idx
        self.mp_dir = mp_dir
        self.mp_is_clock = mp_is_clock
        self.mp_cap = mp_cap
        # Index columns are int32: supports 2^31 entities while halving
        # the per-pin footprint (kernels that form composite keys with
        # room to overflow upcast to int64 explicitly).
        inst_master = np.asarray(inst_master, dtype=np.int32)
        self.inst_master = inst_master
        self.inst_area = self.m_area[inst_master] if len(inst_master) else np.zeros(0)
        self.inst_names = inst_names
        self.port_name_idx = port_name_idx
        self.port_dir = port_dir
        self.port_x = port_x
        self.port_y = port_y
        self.port_cap = port_cap
        port_names = self.port_names
        order = sorted(range(len(port_names)), key=port_names.__getitem__)
        rank = np.empty(len(order), dtype=np.int64)
        for sorted_pos, insertion_idx in enumerate(order):
            rank[insertion_idx] = sorted_pos
        self.port_sorted_rank = rank
        net_ptr = np.asarray(net_ptr, dtype=np.int64)
        pin_inst = np.asarray(pin_inst, dtype=np.int32)
        pin_port = np.asarray(pin_port, dtype=np.int32)
        pin_slot = np.asarray(pin_slot, dtype=np.int32)
        self.net_ptr = net_ptr
        self.net_has_driver = net_has_driver
        self.net_is_clock = net_is_clock
        self.net_weight = net_weight
        self.net_activity = net_activity
        self.net_names = net_names
        self.pin_inst = pin_inst
        self.pin_port = pin_port
        self.pin_name_idx = pin_name_idx
        self.pin_slot = pin_slot
        # Derived per-pin electrical data (one gather, reused by STA /
        # delay tables).
        is_port_pin = pin_inst < 0
        if len(pin_inst):
            # A design may have no ports or no master pins at all;
            # guard the gathers with 1-element padding.
            pcap = port_cap if len(port_cap) else np.zeros(1)
            pdir = port_dir if len(port_dir) else np.zeros(1, dtype=np.int8)
            scap = mp_cap if len(mp_cap) else np.zeros(1)
            sdir = mp_dir if len(mp_dir) else np.zeros(1, dtype=np.int8)
            sclk = mp_is_clock if len(mp_is_clock) else np.zeros(1, dtype=bool)
            slot_safe = np.where(pin_slot >= 0, pin_slot, 0)
            port_safe = np.where(pin_port >= 0, pin_port, 0)
            self.pin_cap = np.where(
                is_port_pin, pcap[port_safe], scap[slot_safe]
            )
            self.pin_dir = np.where(
                is_port_pin, pdir[port_safe], sdir[slot_safe]
            ).astype(np.int8)
            self.pin_is_clockpin = np.where(
                is_port_pin, False, sclk[slot_safe]
            )
        else:
            self.pin_cap = np.zeros(0)
            self.pin_dir = np.zeros(0, dtype=np.int8)
            self.pin_is_clockpin = np.zeros(0, dtype=bool)
        self.net_degree = np.diff(net_ptr).astype(np.int32)
        self.net_fanout = self.net_degree - net_has_driver.astype(np.int32)
        #: Source object view (None for array-native construction).
        self.design = design
        #: Filled by Design.arrays() for cache validation.
        self.structure_key: Optional[tuple] = None
        self._pin_net: Optional[np.ndarray] = None
        self._ipin: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Number of instances."""
        return len(self.inst_master)

    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self.net_ptr) - 1

    @property
    def num_ports(self) -> int:
        """Number of top-level ports."""
        return len(self.port_name_idx)

    @property
    def num_pins(self) -> int:
        """Total pin connections across all nets."""
        return len(self.pin_inst)

    @property
    def port_names(self) -> List[str]:
        """Port names in insertion order."""
        pool = self.name_pool
        return [pool[i] for i in self.port_name_idx.tolist()]

    @property
    def nbytes(self) -> int:
        """Bytes held by the typed arrays (the netlist-core footprint).

        Interned name lists are excluded: they belong to the object
        view (and are shared with it when one exists).
        """
        total = 0
        for value in self.__dict__.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, tuple):
                total += sum(
                    v.nbytes for v in value if isinstance(v, np.ndarray)
                )
        return total

    # ------------------------------------------------------------------
    # Memoised derived structure
    # ------------------------------------------------------------------
    def pin_net(self) -> np.ndarray:
        """Net index of every pin row (memoised)."""
        if self._pin_net is None:
            self._pin_net = np.repeat(
                np.arange(self.num_nets, dtype=np.int32), self.net_degree
            )
        return self._pin_net

    def instance_pin_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Instance -> connection CSR ``(indptr, rows)``, memoised.

        ``rows[indptr[i]:indptr[i + 1]]`` index the pin-row arrays for
        instance ``i``'s connections, in master-pin declaration order
        (global slot ids are declaration-ordered within one master, so
        sorting by slot sorts by declaration position).
        """
        if self._ipin is None:
            inst_rows = np.flatnonzero(self.pin_inst >= 0)
            owners = self.pin_inst[inst_rows]
            order = np.lexsort((self.pin_slot[inst_rows], owners))
            rows = inst_rows[order].astype(np.int32)
            counts = np.bincount(owners, minlength=self.num_instances)
            indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            self._ipin = (indptr, rows)
        return self._ipin

    # ------------------------------------------------------------------
    # Surgical patching (ECO)
    # ------------------------------------------------------------------
    def patch_instance_master(self, inst_index: int) -> bool:
        """Retarget one instance's rows after a master swap, in place.

        Called by :meth:`Design.replace_master` so a gate resize does
        not force a full O(pins) rebuild.  The patch is only legal when
        the new master is already in the flattened tables and declares
        the same pin list (names, order, directions, clock flags) as
        the old one — the common resize case of swapping within one
        cell family.  Returns False otherwise; the caller falls back to
        invalidating the cached form entirely.
        """
        design = self.design
        if design is None:
            return False
        master = design.instances[inst_index].master
        try:
            new_mi = self.master_names.index(master.name)
        except ValueError:
            return False
        old_mi = int(self.inst_master[inst_index])
        if new_mi == old_mi:
            return True
        o0, o1 = int(self.mp_ptr[old_mi]), int(self.mp_ptr[old_mi + 1])
        n0, n1 = int(self.mp_ptr[new_mi]), int(self.mp_ptr[new_mi + 1])
        if (o1 - o0) != (n1 - n0):
            return False
        if not (
            np.array_equal(self.mp_name_idx[o0:o1], self.mp_name_idx[n0:n1])
            and np.array_equal(self.mp_dir[o0:o1], self.mp_dir[n0:n1])
            and np.array_equal(self.mp_is_clock[o0:o1], self.mp_is_clock[n0:n1])
        ):
            return False
        self.inst_master[inst_index] = new_mi
        self.inst_area[inst_index] = self.m_area[new_mi]
        # Retarget this instance's pin rows to the new master's slot
        # range; the shift is monotonic, so the declaration-ordered
        # instance_pin_csr memo stays valid.
        indptr, rows = self.instance_pin_csr()
        mine = rows[indptr[inst_index] : indptr[inst_index + 1]]
        if len(mine):
            self.pin_slot[mine] = self.pin_slot[mine] - o0 + n0
            self.pin_cap[mine] = self.mp_cap[self.pin_slot[mine]]
        return True

    # ------------------------------------------------------------------
    # Live-attribute gathers (object view wins when present)
    # ------------------------------------------------------------------
    def current_net_weights(self) -> np.ndarray:
        """Per-net placement weights, live when an object view exists."""
        if self.design is None:
            return self.net_weight
        nets = self.design.nets
        return np.fromiter((n.weight for n in nets), dtype=np.float64, count=len(nets))

    def current_net_activity(self) -> np.ndarray:
        """Per-net switching activity, live when an object view exists."""
        if self.design is None:
            return self.net_activity
        nets = self.design.nets
        return np.fromiter(
            (n.switching_activity for n in nets), dtype=np.float64, count=len(nets)
        )

    def current_inst_areas(self) -> np.ndarray:
        """Per-instance areas, live (gate sizing swaps masters in place)."""
        if self.design is None:
            return self.inst_area
        instances = self.design.instances
        return np.fromiter(
            (i.master.width * i.master.height for i in instances),
            dtype=np.float64,
            count=len(instances),
        )

    def current_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-instance centre coordinates, live when possible."""
        if self.design is None:
            n = self.num_instances
            return np.zeros(n), np.zeros(n)
        instances = self.design.instances
        n = len(instances)
        xs = np.fromiter((i.x for i in instances), dtype=np.float64, count=n)
        ys = np.fromiter((i.y for i in instances), dtype=np.float64, count=n)
        return xs, ys

    def current_port_xy(self) -> Tuple[np.ndarray, np.ndarray]:
        """Port coordinates in insertion order, live when possible
        (V-P&R virtual dies move the port ring between candidates)."""
        if self.design is None:
            return self.port_x, self.port_y
        ports = self.design.ports
        n = len(ports)
        xs = np.fromiter((p.x for p in ports.values()), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for p in ports.values()), dtype=np.float64, count=n)
        return xs, ys

    # ------------------------------------------------------------------
    # Consumer kernels
    # ------------------------------------------------------------------
    def hyperedge_csr(
        self,
        include_clock: bool = False,
        max_edge_degree: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Instance hyperedges as ``(indptr, vertices, net_indices)``.

        One edge per kept net, in net-index order, members sorted
        ascending and deduplicated — exactly the edge list
        :meth:`repro.netlist.hypergraph.Hypergraph.from_design`
        produces, computed as array kernels instead of per-net Python.
        Nets reduced to fewer than two distinct instances are dropped;
        clock nets are dropped unless ``include_clock``; nets wider
        than ``max_edge_degree`` distinct members are dropped.
        """
        num_nets = self.num_nets
        nid = self.pin_net()
        keep_net = (
            np.ones(num_nets, dtype=bool)
            if include_clock
            else ~self.net_is_clock
        )
        mask = (self.pin_inst >= 0) & keep_net[nid]
        ni = nid[mask]
        vi = self.pin_inst[mask]
        order = np.lexsort((vi, ni))
        ni_s = ni[order]
        vi_s = vi[order]
        if len(ni_s):
            dedup = np.concatenate(
                ([True], (ni_s[1:] != ni_s[:-1]) | (vi_s[1:] != vi_s[:-1]))
            )
        else:
            dedup = np.zeros(0, dtype=bool)
        ni_d = ni_s[dedup]
        vi_d = vi_s[dedup]
        deg = np.bincount(ni_d, minlength=num_nets)
        sel = deg >= 2
        if max_edge_degree is not None:
            sel &= deg <= max_edge_degree
        sel_nets = np.flatnonzero(sel)
        counts = deg[sel_nets]
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        net_start = np.concatenate(([0], np.cumsum(deg))).astype(np.int64)
        verts = vi_d[multi_arange(net_start[sel_nets], counts)]
        return indptr, verts, sel_nets

    def placement_csr(
        self, include_clock: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Placement-problem nets as ``(pin_vertex, net_offsets, net_indices)``.

        Vertex convention of :class:`repro.place.problem.PlacementProblem`:
        instances first, then ports in sorted-name order.  Members are
        distinct vertex ids sorted ascending; nets with fewer than two
        distinct vertices are dropped.
        """
        num_nets = self.num_nets
        n_inst = self.num_instances
        nid = self.pin_net()
        keep_net = (
            np.ones(num_nets, dtype=bool)
            if include_clock
            else ~self.net_is_clock
        )
        mask = keep_net[nid]
        ni = nid[mask]
        is_port = self.pin_inst[mask] < 0
        rank = (
            self.port_sorted_rank
            if len(self.port_sorted_rank)
            else np.zeros(1, dtype=np.int64)
        )
        vi = np.where(
            is_port,
            n_inst + rank[np.where(is_port, self.pin_port[mask], 0)],
            self.pin_inst[mask],
        )
        order = np.lexsort((vi, ni))
        ni_s = ni[order]
        vi_s = vi[order]
        if len(ni_s):
            dedup = np.concatenate(
                ([True], (ni_s[1:] != ni_s[:-1]) | (vi_s[1:] != vi_s[:-1]))
            )
        else:
            dedup = np.zeros(0, dtype=bool)
        ni_d = ni_s[dedup]
        vi_d = vi_s[dedup]
        deg = np.bincount(ni_d, minlength=num_nets)
        sel_nets = np.flatnonzero(deg >= 2)
        counts = deg[sel_nets]
        offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        net_start = np.concatenate(([0], np.cumsum(deg))).astype(np.int64)
        pin_vertex = vi_d[multi_arange(net_start[sel_nets], counts)]
        return pin_vertex, offsets, sel_nets

    def pin_vertex_csr(
        self, include_clock: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All-pin vertex rows as ``(pin_vertex, net_offsets, net_indices)``.

        Unlike :meth:`placement_csr` this keeps every pin connection
        (duplicates included) in ``net.pins()`` order, which is what
        the HPWL/routing gathers need; nets with ``degree < 2`` (or
        clock nets, unless included) are dropped.  Same vertex
        convention: instances, then sorted ports.
        """
        keep = self.net_degree >= 2
        if not include_clock:
            keep &= ~self.net_is_clock
        sel_nets = np.flatnonzero(keep)
        counts = self.net_degree[sel_nets]
        offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        rows = multi_arange(self.net_ptr[sel_nets], counts)
        is_port = self.pin_inst[rows] < 0
        rank = (
            self.port_sorted_rank
            if len(self.port_sorted_rank)
            else np.zeros(1, dtype=np.int64)
        )
        pin_vertex = np.where(
            is_port,
            self.num_instances + rank[np.where(is_port, self.pin_port[rows], 0)],
            self.pin_inst[rows],
        )
        return pin_vertex, offsets, sel_nets

    # ------------------------------------------------------------------
    # Construction from / materialization to the object view
    # ------------------------------------------------------------------
    @classmethod
    def from_design(cls, design: Design) -> "NetlistArrays":
        """Flatten a design into its array form (one pass over pins).

        This is the refactored :func:`repro.netlist.snapshot.design_snapshot`
        walk producing typed arrays instead of primitive lists; it is
        the only place the array path touches the object graph.
        """
        pool_index: Dict[str, int] = {}
        name_pool: List[str] = []

        def intern(name: str) -> int:
            idx = pool_index.get(name)
            if idx is None:
                idx = len(name_pool)
                pool_index[name] = idx
                name_pool.append(name)
            return idx

        # -- masters ---------------------------------------------------
        t = flatten_masters(design.masters, pool_index, name_pool)
        master_index = t.index_of
        slot_of = t.slot_of
        mp_name_list = t.mp_name_idx.tolist()
        scalars = t.scalars
        flags = t.flags

        # -- instances -------------------------------------------------
        instances = design.instances
        inst_master = np.fromiter(
            (master_index[id(i.master)] for i in instances),
            dtype=np.int64,
            count=len(instances),
        )
        inst_names = [i.name for i in instances]

        # -- ports -----------------------------------------------------
        port_rank: Dict[str, int] = {}
        port_name_idx: List[int] = []
        port_dir: List[int] = []
        port_x: List[float] = []
        port_y: List[float] = []
        port_cap: List[float] = []
        for name, port in design.ports.items():
            port_rank[name] = len(port_name_idx)
            port_name_idx.append(intern(name))
            port_dir.append(_DIR_CODE[port.direction])
            port_x.append(port.x)
            port_y.append(port.y)
            port_cap.append(port.capacitance)

        # -- nets / pins -----------------------------------------------
        nets = design.nets
        net_counts: List[int] = []
        net_has_driver = np.zeros(len(nets), dtype=bool)
        net_is_clock: List[bool] = []
        net_weight: List[float] = []
        net_activity: List[float] = []
        net_names: List[str] = []
        pin_inst: List[int] = []
        pin_port: List[int] = []
        pin_name_idx: List[int] = []
        pin_slot: List[int] = []
        im_list = inst_master.tolist()
        for ni, net in enumerate(nets):
            net_is_clock.append(net.is_clock)
            net_weight.append(net.weight)
            net_activity.append(net.switching_activity)
            net_names.append(net.name)
            count = 0
            if net.driver is not None:
                net_has_driver[ni] = True
            for ref in net.pins():
                inst = ref.instance
                if inst is None:
                    pin_inst.append(-1)
                    pin_port.append(port_rank[ref.pin_name])
                    pin_name_idx.append(port_name_idx[pin_port[-1]])
                    pin_slot.append(-1)
                else:
                    ii = inst.index
                    pin_inst.append(ii)
                    pin_port.append(-1)
                    slot = slot_of[(im_list[ii], ref.pin_name)]
                    pin_name_idx.append(mp_name_list[slot])
                    pin_slot.append(slot)
                count += 1
            net_counts.append(count)

        fp = design.floorplan
        return cls(
            name=design.name,
            floorplan=(
                fp.die_width,
                fp.die_height,
                fp.core_margin,
                fp.row_height,
                fp.target_utilization,
            ),
            clock_period=design.clock_period,
            clock_port=design.clock_port,
            name_pool=name_pool,
            master_names=t.names,
            master_classes=t.classes,
            m_width=scalars[:, 0],
            m_height=scalars[:, 1],
            m_is_seq=flags[:, 0],
            m_is_macro=flags[:, 1],
            m_intrinsic=scalars[:, 2],
            m_drive=scalars[:, 3],
            m_clk_to_q=scalars[:, 4],
            m_setup=scalars[:, 5],
            m_hold=scalars[:, 6],
            m_leakage=scalars[:, 7],
            m_energy=scalars[:, 8],
            mp_ptr=t.mp_ptr,
            mp_name_idx=t.mp_name_idx,
            mp_dir=t.mp_dir,
            mp_is_clock=t.mp_is_clock,
            mp_cap=t.mp_cap,
            inst_master=inst_master,
            port_name_idx=np.asarray(port_name_idx, dtype=np.int32),
            port_dir=np.asarray(port_dir, dtype=np.int8),
            port_x=np.asarray(port_x, dtype=np.float64),
            port_y=np.asarray(port_y, dtype=np.float64),
            port_cap=np.asarray(port_cap, dtype=np.float64),
            net_ptr=np.concatenate(([0], np.cumsum(net_counts))).astype(np.int64),
            net_has_driver=net_has_driver,
            net_is_clock=np.asarray(net_is_clock, dtype=bool),
            net_weight=np.asarray(net_weight, dtype=np.float64),
            net_activity=np.asarray(net_activity, dtype=np.float64),
            pin_inst=np.asarray(pin_inst, dtype=np.int64),
            pin_port=np.asarray(pin_port, dtype=np.int64),
            pin_name_idx=np.asarray(pin_name_idx, dtype=np.int32),
            pin_slot=np.asarray(pin_slot, dtype=np.int64),
            inst_names=inst_names,
            net_names=net_names,
            design=design,
        )

    def to_design(
        self,
        positions: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        fixed: Optional[np.ndarray] = None,
    ) -> Design:
        """Materialize the object view (batch construction).

        Builds instances, nets and pin references directly — no
        per-pin ``connect`` classification, no per-name duplicate
        checks — while producing exactly the structure the
        construction API would: the first pin of a driven net becomes
        the driver, the rest sinks in order, and ``pin_nets`` is filled
        for every instance pin.  Round-tripping a design through
        ``from_design`` / ``to_design`` is digest-identical.

        Args:
            positions: Optional per-instance (x, y) arrays (defaults to
                the source design's coordinates when one exists, else 0).
            fixed: Optional per-instance fixed mask (same defaulting).
        """
        design = Design(self.name, floorplan=Floorplan(*self.floorplan))
        design.clock_period = self.clock_period
        design.clock_port = self.clock_port
        pool = self.name_pool

        # Masters.
        masters: List[MasterCell] = []
        mp_ptr = self.mp_ptr.tolist()
        mp_names = self.mp_name_idx.tolist()
        mp_dirs = self.mp_dir.tolist()
        mp_clk = self.mp_is_clock.tolist()
        mp_cap = self.mp_cap.tolist()
        for mi, name in enumerate(self.master_names):
            pins: Dict[str, CellPin] = {}
            for s in range(mp_ptr[mi], mp_ptr[mi + 1]):
                pin_name = pool[mp_names[s]]
                pins[pin_name] = CellPin(
                    pin_name, _DIRECTIONS[mp_dirs[s]], mp_cap[s], mp_clk[s]
                )
            master = MasterCell(
                name=name,
                width=float(self.m_width[mi]),
                height=float(self.m_height[mi]),
                pins=pins,
                is_sequential=bool(self.m_is_seq[mi]),
                is_macro=bool(self.m_is_macro[mi]),
                intrinsic_delay=float(self.m_intrinsic[mi]),
                drive_resistance=float(self.m_drive[mi]),
                clk_to_q=float(self.m_clk_to_q[mi]),
                setup_time=float(self.m_setup[mi]),
                hold_time=float(self.m_hold[mi]),
                leakage_power=float(self.m_leakage[mi]),
                internal_energy=float(self.m_energy[mi]),
                cell_class=self.master_classes[mi],
            )
            masters.append(master)
            design.masters[name] = master

        # Instances (batch; names synthesized when the arrays carry none).
        n = self.num_instances
        names = self.inst_names
        if names is None:
            names = [f"U{i}" for i in range(n)]
        im = self.inst_master.tolist()
        if positions is None and self.design is not None:
            positions = self.current_positions()
        if fixed is None and self.design is not None:
            src = self.design.instances
            fixed = np.fromiter((i.fixed for i in src), dtype=bool, count=len(src))
        xs = positions[0].tolist() if positions is not None else None
        ys = positions[1].tolist() if positions is not None else None
        fx = fixed.tolist() if fixed is not None else None
        instances: List[Instance] = []
        for i in range(n):
            inst = Instance(names[i], masters[im[i]], index=i)
            if xs is not None:
                inst.x = xs[i]
                inst.y = ys[i]
            if fx is not None:
                inst.fixed = fx[i]
            instances.append(inst)
        design.instances = instances
        design._instance_by_name = dict(zip(names, instances))

        # Ports.
        port_names = self.port_names
        for pi, name in enumerate(port_names):
            port = Port(
                name,
                _DIRECTIONS[int(self.port_dir[pi])],
                float(self.port_x[pi]),
                float(self.port_y[pi]),
            )
            port.capacitance = float(self.port_cap[pi])
            design.ports[name] = port

        # Nets + pin references.
        net_names = self.net_names
        if net_names is None:
            net_names = [f"n{i}" for i in range(self.num_nets)]
        ptr = self.net_ptr.tolist()
        has_driver = self.net_has_driver.tolist()
        is_clock = self.net_is_clock.tolist()
        weight = self.net_weight.tolist()
        activity = self.net_activity.tolist()
        p_inst = self.pin_inst.tolist()
        p_port = self.pin_port.tolist()
        p_name = self.pin_name_idx.tolist()
        nets: List[Net] = []
        for ni in range(self.num_nets):
            net = Net(net_names[ni], index=ni)
            net.weight = weight[ni]
            net.is_clock = is_clock[ni]
            net.switching_activity = activity[ni]
            start, end = ptr[ni], ptr[ni + 1]
            first_sink = start
            if has_driver[ni] and end > start:
                r = start
                inst = instances[p_inst[r]] if p_inst[r] >= 0 else None
                pin_name = pool[p_name[r]] if inst is not None else port_names[p_port[r]]
                net.driver = PinRef(inst, pin_name)
                if inst is not None:
                    inst.pin_nets[pin_name] = net
                first_sink = start + 1
            sinks = net.sinks
            for r in range(first_sink, end):
                ii = p_inst[r]
                if ii >= 0:
                    inst = instances[ii]
                    pin_name = pool[p_name[r]]
                    sinks.append(PinRef(inst, pin_name))
                    inst.pin_nets[pin_name] = net
                else:
                    sinks.append(PinRef(None, port_names[p_port[r]]))
            nets.append(net)
        design.nets = nets
        design._net_by_name = {net.name: net for net in nets}
        design.bump_structure_version()
        return design

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetlistArrays({self.name!r}, insts={self.num_instances}, "
            f"nets={self.num_nets}, pins={self.num_pins}, "
            f"bytes={self.nbytes})"
        )
