"""DEF lite reader / writer.

The paper's input .def provides the floorplan bounding box, pin
placements and macro preplacements (footnote 1).  This module
round-trips exactly that subset: DIEAREA, PINS with fixed locations, and
COMPONENTS with optional FIXED/PLACED locations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.netlist.design import Design, Floorplan, PinDirection

#: DEF distance units per micron used by the writer.
DEF_UNITS = 1000


@dataclass
class DefComponent:
    """One COMPONENTS entry: instance name, master, optional location."""

    name: str
    master: str
    location: Optional[Tuple[float, float]] = None
    fixed: bool = False


@dataclass
class DefPin:
    """One PINS entry: port name, direction and fixed location."""

    name: str
    direction: PinDirection
    location: Tuple[float, float] = (0.0, 0.0)


@dataclass
class DefDesign:
    """Parsed DEF contents."""

    name: str
    die: Tuple[float, float, float, float] = (0.0, 0.0, 100.0, 100.0)
    components: List[DefComponent] = field(default_factory=list)
    pins: List[DefPin] = field(default_factory=list)


_DIEAREA_RE = re.compile(
    r"DIEAREA\s*\(\s*([\d.-]+)\s+([\d.-]+)\s*\)\s*\(\s*([\d.-]+)\s+([\d.-]+)\s*\)"
)
_COMPONENT_RE = re.compile(
    r"-\s+(\S+)\s+(\S+)"
    r"(?:\s+\+\s+(FIXED|PLACED)\s+\(\s*([\d.-]+)\s+([\d.-]+)\s*\)\s*\w*)?"
)
_PIN_RE = re.compile(
    r"-\s+(\S+)\s+\+\s+DIRECTION\s+(INPUT|OUTPUT|INOUT)"
    r"(?:\s+\+\s+(?:FIXED|PLACED)\s+\(\s*([\d.-]+)\s+([\d.-]+)\s*\)\s*\w*)?"
)
_UNITS_RE = re.compile(r"UNITS\s+DISTANCE\s+MICRONS\s+(\d+)")


def parse_def(text: str) -> DefDesign:
    """Parse DEF-lite text."""
    name_match = re.search(r"DESIGN\s+(\S+)\s*;", text)
    if name_match is None:
        raise ValueError("DEF missing DESIGN statement")
    result = DefDesign(name=name_match.group(1))
    units_match = _UNITS_RE.search(text)
    units = float(units_match.group(1)) if units_match else float(DEF_UNITS)

    die_match = _DIEAREA_RE.search(text)
    if die_match:
        vals = [float(v) / units for v in die_match.groups()]
        result.die = (vals[0], vals[1], vals[2], vals[3])

    comp_section = _section(text, "COMPONENTS")
    if comp_section:
        for match in _COMPONENT_RE.finditer(comp_section):
            name, master, state, x, y = match.groups()
            loc = (float(x) / units, float(y) / units) if x is not None else None
            result.components.append(
                DefComponent(name, master, location=loc, fixed=state == "FIXED")
            )

    pin_section = _section(text, "PINS")
    if pin_section:
        for match in _PIN_RE.finditer(pin_section):
            name, direction, x, y = match.groups()
            loc = (0.0, 0.0)
            if x is not None:
                loc = (float(x) / units, float(y) / units)
            result.pins.append(
                DefPin(name, PinDirection[direction], location=loc)
            )
    return result


def _section(text: str, keyword: str) -> Optional[str]:
    """Extract the body between ``KEYWORD n ;`` and ``END KEYWORD``."""
    match = re.search(
        rf"{keyword}\s+\d+\s*;(.*?)END\s+{keyword}", text, re.DOTALL
    )
    if match is None:
        return None
    return match.group(1)


def write_def(design: Design) -> str:
    """Serialise a design's floorplan/placement to DEF-lite text."""
    fp = design.floorplan
    u = DEF_UNITS
    lines: List[str] = [
        "VERSION 5.8 ;",
        'DIVIDERCHAR "/" ;',
        'BUSBITCHARS "[]" ;',
        f"DESIGN {design.name} ;",
        f"UNITS DISTANCE MICRONS {u} ;",
        f"DIEAREA ( 0 0 ) ( {int(fp.die_width * u)} {int(fp.die_height * u)} ) ;",
        "",
        f"COMPONENTS {design.num_instances} ;",
    ]
    for inst in design.instances:
        state = "FIXED" if inst.fixed else "PLACED"
        lines.append(
            f"- {inst.name} {inst.master.name} + {state} "
            f"( {int(inst.x * u)} {int(inst.y * u)} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append("")
    lines.append(f"PINS {len(design.ports)} ;")
    for port in design.ports.values():
        lines.append(
            f"- {port.name} + DIRECTION {port.direction.name} "
            f"+ FIXED ( {int(port.x * u)} {int(port.y * u)} ) N ;"
        )
    lines.append("END PINS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def apply_def(design: Design, parsed: DefDesign) -> None:
    """Apply a parsed DEF (floorplan, pin and macro locations) to a design."""
    llx, lly, urx, ury = parsed.die
    design.floorplan = Floorplan(
        die_width=urx - llx,
        die_height=ury - lly,
        core_margin=design.floorplan.core_margin,
        row_height=design.floorplan.row_height,
        target_utilization=design.floorplan.target_utilization,
    )
    for pin in parsed.pins:
        if pin.name in design.ports:
            port = design.ports[pin.name]
            port.x, port.y = pin.location
    for comp in parsed.components:
        if design.has_instance(comp.name) and comp.location is not None:
            inst = design.instance(comp.name)
            inst.x, inst.y = comp.location
            inst.fixed = comp.fixed
