"""Logical hierarchy tree extraction.

The paper's Algorithm 1 (lines 2-3) reads the logical hierarchy from
OpenDB and builds a hierarchy tree ``T(V', E')``.  Here we rebuild the
same structure from the hierarchical instance names stored in the
:class:`~repro.netlist.design.Design` (``a/b/U1`` means instance ``U1``
inside module instance ``b`` inside module instance ``a``).

Internal nodes are module instances; leaves are the design's cell
instances.  The tree is the input to the dendrogram-based hierarchy
clustering of Algorithm 2 (:mod:`repro.core.hier_clustering`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.netlist.design import Design, Instance


class HierarchyNode:
    """One node of the logical hierarchy tree.

    Attributes:
        name: Local name of the module instance ("" for the root).
        parent: Parent node, or None for the root.
        children: Child nodes in insertion order.
        instances: Leaf cell instances directly inside this module
            (not including those in sub-modules).
    """

    __slots__ = ("name", "parent", "children", "instances")

    def __init__(self, name: str, parent: Optional["HierarchyNode"] = None) -> None:
        self.name = name
        self.parent = parent
        self.children: List["HierarchyNode"] = []
        self.instances: List[Instance] = []

    @property
    def full_path(self) -> str:
        """Slash-joined path from the root (root itself is "")."""
        parts: List[str] = []
        node: Optional[HierarchyNode] = self
        while node is not None and node.name:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    @property
    def is_leaf_module(self) -> bool:
        """True when the module has no sub-modules."""
        return not self.children

    def depth(self) -> int:
        """Distance from the root (root depth is 0)."""
        d = 0
        node = self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def subtree_instances(self) -> List[Instance]:
        """All cell instances in this module and its sub-modules."""
        out = list(self.instances)
        for child in self.children:
            out.extend(child.subtree_instances())
        return out

    def iter_subtree(self) -> Iterator["HierarchyNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchyNode({self.full_path or '<root>'}, "
            f"children={len(self.children)}, insts={len(self.instances)})"
        )


class HierarchyTree:
    """The logical hierarchy of a design.

    Attributes:
        root: The top-level :class:`HierarchyNode`.
        design: The design the tree was extracted from.
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        self.root = HierarchyNode("")
        self._node_by_path: Dict[str, HierarchyNode] = {"": self.root}
        for inst in design.instances:
            node = self._get_or_create(inst.hierarchy_path)
            node.instances.append(inst)

    def _get_or_create(self, path: List[str]) -> HierarchyNode:
        """Walk/extend the tree along ``path`` and return the module node."""
        key = "/".join(path)
        node = self._node_by_path.get(key)
        if node is not None:
            return node
        parent = self._get_or_create(path[:-1]) if path else self.root
        node = HierarchyNode(path[-1], parent=parent)
        parent.children.append(node)
        self._node_by_path[key] = node
        return node

    # ------------------------------------------------------------------
    def node(self, path: str) -> HierarchyNode:
        """Look up a module node by its slash-joined path."""
        return self._node_by_path[path]

    def has_node(self, path: str) -> bool:
        """True when a module exists at ``path``."""
        return path in self._node_by_path

    def module_paths(self) -> List[str]:
        """All module paths in pre-order (root first, as "")."""
        return [node.full_path for node in self.root.iter_subtree()]

    @property
    def num_modules(self) -> int:
        """Number of module nodes including the root."""
        return len(self._node_by_path)

    def max_depth(self) -> int:
        """Depth of the deepest module node."""
        return max(node.depth() for node in self.root.iter_subtree())

    def has_hierarchy(self) -> bool:
        """True when the netlist carries any logical hierarchy.

        Algorithm 1 only runs hierarchy-based clustering when the
        logical hierarchy is present; a fully flattened netlist (all
        instances directly under the root) returns False.
        """
        return bool(self.root.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HierarchyTree(modules={self.num_modules}, depth={self.max_depth()})"
