"""Immutable hypergraph view of a netlist.

Every clustering algorithm in this package (the paper's PPA-aware
multilevel FC as well as the Louvain/Leiden/Best-Choice baselines)
operates on this flat, index-based view rather than on the object model,
mirroring how TritonPart consumes an OpenDB design.

Vertices are instance indices ``0..n-1``.  Hyperedges are tuples of
distinct vertex indices; nets reduced to fewer than two distinct
vertices (for example a net between one instance and a port) are kept
only when they still connect two or more vertices, but the mapping back
to net indices is preserved so timing and switching annotations can be
attached.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.design import Design


class Hypergraph:
    """A weighted hypergraph with per-vertex areas.

    Attributes:
        num_vertices: Number of vertices.
        edges: List of hyperedges; each is a tuple of distinct vertex ids.
        edge_weights: ndarray of float weights, one per hyperedge.
        vertex_areas: ndarray of float areas, one per vertex.
        edge_net_indices: For hypergraphs built from a design, the index
            of the originating net for each hyperedge (else -1).
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Sequence[Sequence[int]],
        edge_weights: Optional[Sequence[float]] = None,
        vertex_areas: Optional[Sequence[float]] = None,
        edge_net_indices: Optional[Sequence[int]] = None,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self._edges: Optional[List[Tuple[int, ...]]] = [tuple(e) for e in edges]
        n_edges = len(self._edges)
        if edge_weights is None:
            self.edge_weights = np.ones(n_edges)
        else:
            self.edge_weights = np.asarray(edge_weights, dtype=float)
        if vertex_areas is None:
            self.vertex_areas = np.ones(self.num_vertices)
        else:
            self.vertex_areas = np.asarray(vertex_areas, dtype=float)
        if edge_net_indices is None:
            self.edge_net_indices = np.full(n_edges, -1, dtype=np.int64)
        else:
            self.edge_net_indices = np.asarray(edge_net_indices, dtype=np.int64)
        if len(self.edge_weights) != n_edges:
            raise ValueError("edge_weights length mismatch")
        if len(self.vertex_areas) != self.num_vertices:
            raise ValueError("vertex_areas length mismatch")
        self._incidence: Optional[List[List[int]]] = None
        self._pin_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._incidence_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def from_csr(
        cls,
        num_vertices: int,
        indptr: np.ndarray,
        vertices: np.ndarray,
        edge_weights: Optional[Sequence[float]] = None,
        vertex_areas: Optional[Sequence[float]] = None,
        edge_net_indices: Optional[Sequence[int]] = None,
    ) -> "Hypergraph":
        """Construct directly from an edge->member CSR.

        The CSR is the primary storage; the ``edges`` list of tuples is
        materialized lazily only if some consumer asks for it.  This is
        the array-native path: :meth:`from_design` feeds it straight
        from :meth:`repro.netlist.arrays.NetlistArrays.hyperedge_csr`.
        """
        self = cls.__new__(cls)
        self.num_vertices = int(num_vertices)
        indptr = np.asarray(indptr, dtype=np.int64)
        vertices = np.asarray(vertices, dtype=np.int64)
        n_edges = len(indptr) - 1
        self._edges = None
        self._pin_csr = (indptr, vertices)
        if edge_weights is None:
            self.edge_weights = np.ones(n_edges)
        else:
            self.edge_weights = np.asarray(edge_weights, dtype=float)
        if vertex_areas is None:
            self.vertex_areas = np.ones(self.num_vertices)
        else:
            self.vertex_areas = np.asarray(vertex_areas, dtype=float)
        if edge_net_indices is None:
            self.edge_net_indices = np.full(n_edges, -1, dtype=np.int64)
        else:
            self.edge_net_indices = np.asarray(edge_net_indices, dtype=np.int64)
        if len(self.edge_weights) != n_edges:
            raise ValueError("edge_weights length mismatch")
        if len(self.vertex_areas) != self.num_vertices:
            raise ValueError("vertex_areas length mismatch")
        self._incidence = None
        self._incidence_csr = None
        return self

    @property
    def edges(self) -> List[Tuple[int, ...]]:
        """Hyperedges as tuples of distinct vertex ids (lazy).

        CSR-built hypergraphs materialize this list on first access;
        prefer :meth:`pin_csr` in hot code.
        """
        if self._edges is None:
            indptr, verts = self._pin_csr
            vl = verts.tolist()
            il = indptr.tolist()
            self._edges = [
                tuple(vl[il[i] : il[i + 1]]) for i in range(len(il) - 1)
            ]
        return self._edges

    def invalidate_caches(self) -> None:
        """Drop memoised incidence structures (call after mutating
        ``edges`` in place — none of the library code does)."""
        if self._edges is None:
            _ = self.edges  # CSR was primary; keep the edge list alive
        self._incidence = None
        self._pin_csr = None
        self._incidence_csr = None

    # ------------------------------------------------------------------
    @classmethod
    def from_design(
        cls,
        design: Design,
        include_clock_nets: bool = False,
        max_edge_degree: Optional[int] = None,
        use_arrays: bool = True,
    ) -> "Hypergraph":
        """Build the hypergraph over a design's instances.

        Args:
            design: Source design.
            include_clock_nets: When False (the default, matching the
                paper's flow) clock nets are dropped; they would
                otherwise connect every flip-flop into one giant edge.
            max_edge_degree: Nets with more distinct vertices than this
                are skipped (a standard guard against degenerate
                high-fanout nets); None keeps everything.
            use_arrays: When True (default) build from the cached
                :class:`~repro.netlist.arrays.NetlistArrays` CSR
                kernels; the object-graph walk is kept as the
                equivalence oracle for tests.
        """
        if use_arrays:
            arrays = design.arrays()
            indptr, verts, sel_nets = arrays.hyperedge_csr(
                include_clock=include_clock_nets,
                max_edge_degree=max_edge_degree,
            )
            return cls.from_csr(
                design.num_instances,
                indptr,
                verts,
                edge_weights=arrays.current_net_weights()[sel_nets],
                vertex_areas=arrays.current_inst_areas(),
                edge_net_indices=sel_nets,
            )
        edges: List[Tuple[int, ...]] = []
        weights: List[float] = []
        net_indices: List[int] = []
        for net in design.nets:
            if net.is_clock and not include_clock_nets:
                continue
            vertex_ids = sorted({inst.index for inst in net.instances()})
            if len(vertex_ids) < 2:
                continue
            if max_edge_degree is not None and len(vertex_ids) > max_edge_degree:
                continue
            edges.append(tuple(vertex_ids))
            weights.append(net.weight)
            net_indices.append(net.index)
        areas = [inst.area for inst in design.instances]
        return cls(
            design.num_instances,
            edges,
            edge_weights=weights,
            vertex_areas=areas,
            edge_net_indices=net_indices,
        )

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of hyperedges."""
        return len(self.edge_weights)

    @property
    def num_pins(self) -> int:
        """Total pin count (sum of hyperedge degrees)."""
        if self._pin_csr is not None:
            return int(self._pin_csr[0][-1])
        return sum(len(e) for e in self.edges)

    def incidence(self) -> List[List[int]]:
        """Per-vertex lists of incident hyperedge indices (cached)."""
        if self._incidence is None:
            inc: List[List[int]] = [[] for _ in range(self.num_vertices)]
            for ei, edge in enumerate(self.edges):
                for v in edge:
                    inc[v].append(ei)
            self._incidence = inc
        return self._incidence

    def pin_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Edge -> member CSR ``(indptr, vertices)``, memoised.

        ``vertices[indptr[e]:indptr[e + 1]]`` are hyperedge ``e``'s
        members in edge order.
        """
        if self._pin_csr is None:
            counts = np.fromiter(
                (len(e) for e in self.edges),
                dtype=np.int64,
                count=len(self.edges),
            )
            indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            if len(self.edges):
                verts = np.fromiter(
                    (v for e in self.edges for v in e),
                    dtype=np.int64,
                    count=int(indptr[-1]),
                )
            else:
                verts = np.empty(0, dtype=np.int64)
            self._pin_csr = (indptr, verts)
        return self._pin_csr

    def incidence_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Vertex -> incident-edge CSR ``(indptr, edge_ids)``, memoised.

        Edge ids per vertex come out in increasing order, matching the
        list form of :meth:`incidence`.
        """
        if self._incidence_csr is None:
            e_indptr, e_verts = self.pin_csr()
            counts = np.diff(e_indptr)
            edge_ids = np.repeat(
                np.arange(len(self.edges), dtype=np.int64), counts
            )
            order = np.argsort(e_verts, kind="stable")
            indptr = np.concatenate(
                ([0], np.cumsum(np.bincount(e_verts, minlength=self.num_vertices)))
            ).astype(np.int64)
            self._incidence_csr = (indptr, edge_ids[order])
        return self._incidence_csr

    def vertex_degrees(self) -> np.ndarray:
        """Number of incident hyperedges per vertex."""
        e_indptr, e_verts = self.pin_csr()
        return np.bincount(e_verts, minlength=self.num_vertices).astype(
            np.int64
        )

    def neighbors(self, v: int) -> List[int]:
        """Distinct vertices sharing at least one hyperedge with ``v``."""
        seen = set()
        for ei in self.incidence()[v]:
            for u in self.edges[ei]:
                if u != v:
                    seen.add(u)
        return sorted(seen)

    # ------------------------------------------------------------------
    def clique_expansion(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Standard clique expansion with weight ``w_e / (|e| - 1)``.

        Returns COO-style arrays ``(rows, cols, weights)`` of the
        resulting undirected graph with each pair emitted once
        (row < col), merging parallel edges by weight summation.  This
        is the graph representation fed to the GNN (Section 3.2) and to
        the Louvain/Leiden baselines.
        """
        pair_weights: Dict[Tuple[int, int], float] = {}
        for ei, edge in enumerate(self.edges):
            k = len(edge)
            if k < 2:
                continue
            w = self.edge_weights[ei] / (k - 1)
            for a in range(k):
                for b in range(a + 1, k):
                    u, v = edge[a], edge[b]
                    key = (u, v) if u < v else (v, u)
                    pair_weights[key] = pair_weights.get(key, 0.0) + w
        if not pair_weights:
            empty = np.zeros(0)
            return empty.astype(np.int64), empty.astype(np.int64), empty
        keys = sorted(pair_weights)
        rows = np.array([k[0] for k in keys], dtype=np.int64)
        cols = np.array([k[1] for k in keys], dtype=np.int64)
        weights = np.array([pair_weights[k] for k in keys])
        return rows, cols, weights

    # ------------------------------------------------------------------
    def contract(
        self, cluster_of: Sequence[int]
    ) -> Tuple["Hypergraph", List[List[int]]]:
        """Contract vertices into clusters, producing the coarse graph.

        Args:
            cluster_of: For each vertex, its cluster id in ``0..k-1``.

        Returns:
            A pair ``(coarse, members)`` where ``coarse`` is the
            contracted hypergraph over ``k`` vertices (parallel edges
            merged by weight summation; edges internal to one cluster
            dropped) and ``members[c]`` lists the fine vertices of
            cluster ``c``.
        """
        cluster_of = np.asarray(cluster_of, dtype=np.int64)
        if len(cluster_of) != self.num_vertices:
            raise ValueError("cluster_of length mismatch")
        k = int(cluster_of.max()) + 1 if self.num_vertices else 0
        vorder = np.argsort(cluster_of, kind="stable")
        vcounts = np.bincount(cluster_of, minlength=k)
        bounds = np.concatenate(([0], np.cumsum(vcounts))).astype(np.int64)
        members: List[List[int]] = [
            vorder[bounds[c] : bounds[c + 1]].tolist() for c in range(k)
        ]
        areas = np.zeros(k)
        np.add.at(areas, cluster_of, self.vertex_areas)

        # Map every fine edge to its (sorted, deduplicated) coarse
        # member set; merge duplicate coarse edges in fine-edge order.
        num_fine = self.num_edges
        e_indptr, e_verts = self.pin_csr()
        ce = cluster_of[e_verts]
        eid = np.repeat(np.arange(num_fine, dtype=np.int64), np.diff(e_indptr))
        order = np.lexsort((ce, eid))
        ce_s = ce[order]
        eid_s = eid[order]
        if len(ce_s):
            keep = np.concatenate(
                ([True], (eid_s[1:] != eid_s[:-1]) | (ce_s[1:] != ce_s[:-1]))
            )
            ce_d = ce_s[keep]
            eid_d = eid_s[keep]
            deg = np.bincount(eid_d, minlength=num_fine)
        else:
            ce_d = ce_s
            deg = np.zeros(num_fine, dtype=np.int64)
        dptr = np.concatenate(([0], np.cumsum(deg))).astype(np.int64)
        merged_index: Dict[bytes, int] = {}
        edges: List[Tuple[int, ...]] = []
        fine_map = np.full(num_fine, -1, dtype=np.int64)
        for ei in range(num_fine):
            d = deg[ei]
            if d < 2:
                continue
            span = ce_d[dptr[ei] : dptr[ei + 1]]
            key = span.tobytes()
            ci = merged_index.get(key)
            if ci is None:
                ci = len(edges)
                merged_index[key] = ci
                edges.append(tuple(span.tolist()))
            fine_map[ei] = ci
        weights = np.zeros(len(edges))
        valid = fine_map >= 0
        # add.at accumulates sequentially in array (= fine-edge) order,
        # matching the reference dict accumulation bit for bit.
        np.add.at(weights, fine_map[valid], self.edge_weights[valid])
        coarse = Hypergraph(k, edges, edge_weights=weights, vertex_areas=areas)
        #: Fine-edge -> coarse-edge index (-1 when the edge collapsed
        #: inside one cluster); reused by score re-aggregation.
        coarse._fine_edge_map = fine_map
        return coarse, members

    # ------------------------------------------------------------------
    def external_edges(self, cluster_of: Sequence[int]) -> np.ndarray:
        """Boolean mask of hyperedges that cross cluster boundaries."""
        cluster_of = np.asarray(cluster_of, dtype=np.int64)
        mask = np.zeros(self.num_edges, dtype=bool)
        e_indptr, e_verts = self.pin_csr()
        if not len(e_verts):
            return mask
        ce = cluster_of[e_verts]
        counts = np.diff(e_indptr)
        safe_first = np.minimum(e_indptr[:-1], len(e_verts) - 1)
        differs = ce != np.repeat(ce[safe_first], counts)
        eid = np.repeat(np.arange(self.num_edges, dtype=np.int64), counts)
        mask[np.unique(eid[differs])] = True
        return mask

    def cut_size(self, cluster_of: Sequence[int]) -> float:
        """Total weight of hyperedges crossing cluster boundaries."""
        mask = self.external_edges(cluster_of)
        return float(self.edge_weights[mask].sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hypergraph(V={self.num_vertices}, E={self.num_edges}, "
            f"pins={self.num_pins})"
        )
