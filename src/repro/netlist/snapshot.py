"""Flat, pickle-friendly snapshots of a :class:`Design`.

The in-memory netlist is a deeply linked object graph (net -> pin ref
-> instance -> pin_nets -> net ...), so pickling a :class:`Design`
directly recurses to the connectivity diameter of the netlist and blows
the interpreter's recursion limit on real designs.  A snapshot is the
same information as flat lists of primitives — masters, instances in
index order, ports, and nets as ``(instance index, pin name)`` tuples —
which pickles in constant stack depth and rebuilds through the normal
construction API.

Used by the V-P&R spawn fan-out (:mod:`repro.core.fanout`): the parent
snapshots each induced sub-netlist once into the shared-memory payload
and every spawn worker rebuilds it once.  Reconstruction is exact for
everything evaluation reads: structure, names, directions, weights,
master timing/power data, coordinates and the floorplan — so content
digests (:func:`repro.cache.netlist_digest`) of a rebuilt design equal
the original's.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.netlist.design import (
    CellPin,
    Design,
    Floorplan,
    MasterCell,
    PinDirection,
    PinRef,
)


def design_snapshot(design: Design) -> Dict[str, Any]:
    """The flat form of a design (see module docstring)."""
    masters = {}
    for name, m in design.masters.items():
        masters[name] = {
            "width": m.width,
            "height": m.height,
            "pins": [
                (p.name, p.direction.value, p.capacitance, p.is_clock)
                for p in m.pins.values()
            ],
            "is_sequential": m.is_sequential,
            "is_macro": m.is_macro,
            "intrinsic_delay": m.intrinsic_delay,
            "drive_resistance": m.drive_resistance,
            "clk_to_q": m.clk_to_q,
            "setup_time": m.setup_time,
            "hold_time": m.hold_time,
            "leakage_power": m.leakage_power,
            "internal_energy": m.internal_energy,
            "cell_class": m.cell_class,
        }

    def _ref(ref: PinRef):
        if ref.instance is not None:
            return (ref.instance.index, ref.pin_name)
        return (-1, ref.pin_name)

    fp = design.floorplan
    return {
        "name": design.name,
        "clock_period": design.clock_period,
        "clock_port": design.clock_port,
        "floorplan": (
            fp.die_width,
            fp.die_height,
            fp.core_margin,
            fp.row_height,
            fp.target_utilization,
        ),
        "masters": masters,
        "instances": [
            (i.name, i.master.name, i.x, i.y, i.fixed)
            for i in design.instances
        ],
        "ports": [
            (p.name, p.direction.value, p.x, p.y, p.capacitance)
            for p in design.ports.values()
        ],
        "nets": [
            (
                net.name,
                net.weight,
                net.is_clock,
                net.switching_activity,
                _ref(net.driver) if net.driver is not None else None,
                [_ref(ref) for ref in net.sinks],
            )
            for net in design.nets
        ],
    }


def design_from_snapshot(payload: Dict[str, Any]) -> Design:
    """Rebuild a design from its flat form."""
    design = Design(payload["name"], floorplan=Floorplan(*payload["floorplan"]))
    design.clock_period = payload["clock_period"]
    design.clock_port = payload["clock_port"]
    for name, m in payload["masters"].items():
        design.add_master(
            MasterCell(
                name=name,
                width=m["width"],
                height=m["height"],
                pins={
                    pin_name: CellPin(
                        pin_name, PinDirection(direction), capacitance, is_clock
                    )
                    for pin_name, direction, capacitance, is_clock in m["pins"]
                },
                is_sequential=m["is_sequential"],
                is_macro=m["is_macro"],
                intrinsic_delay=m["intrinsic_delay"],
                drive_resistance=m["drive_resistance"],
                clk_to_q=m["clk_to_q"],
                setup_time=m["setup_time"],
                hold_time=m["hold_time"],
                leakage_power=m["leakage_power"],
                internal_energy=m["internal_energy"],
                cell_class=m["cell_class"],
            )
        )
    for name, master_name, x, y, fixed in payload["instances"]:
        inst = design.add_instance(name, design.masters[master_name])
        inst.x, inst.y, inst.fixed = x, y, fixed
    for name, direction, x, y, capacitance in payload["ports"]:
        port = design.add_port(name, PinDirection(direction), x, y)
        port.capacitance = capacitance

    def _ref(entry) -> PinRef:
        index, pin_name = entry
        if index < 0:
            return PinRef(None, pin_name)
        return PinRef(design.instances[index], pin_name)

    for name, weight, is_clock, activity, driver, sinks in payload["nets"]:
        net = design.add_net(name)
        net.weight = weight
        net.is_clock = is_clock
        net.switching_activity = activity
        # Connect through the direction classifier so driver/sink roles
        # are re-derived exactly as construction derived them; sink
        # order is preserved by connecting in stored order.
        if driver is not None:
            design.connect(net, _ref(driver))
        for entry in sinks:
            design.connect(net, _ref(entry))
    return design
