"""LEF lite reader / writer.

LEF carries physical abstracts.  The paper's flow writes a *cluster*
LEF: after V-P&R picks a shape (aspect ratio, utilization) for each
cluster, the cluster is modelled as a soft macro of the corresponding
size (Algorithm 1, line 13).  :class:`ClusterLef` is that artefact; the
plain ``parse_lef`` / ``write_lef`` pair round-trips macro geometry.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class LefMacro:
    """One MACRO record: name and size in microns."""

    name: str
    width: float
    height: float
    macro_class: str = "BLOCK"
    pins: List[str] = field(default_factory=list)


@dataclass
class ClusterLef:
    """The cluster soft-macro LEF produced by the V-P&R stage.

    Maps each cluster id to a :class:`LefMacro` whose size realises the
    chosen (aspect ratio, utilization) at the cluster's cell area:

    ``width * height = area / utilization`` and
    ``height / width = aspect_ratio``.
    """

    macros: Dict[int, LefMacro] = field(default_factory=dict)

    def add_cluster(
        self,
        cluster_id: int,
        cell_area: float,
        aspect_ratio: float,
        utilization: float,
    ) -> LefMacro:
        """Create the macro for a cluster from its shape parameters."""
        if utilization <= 0 or aspect_ratio <= 0:
            raise ValueError("aspect_ratio and utilization must be positive")
        footprint = cell_area / utilization
        width = math.sqrt(footprint / aspect_ratio)
        height = footprint / width
        macro = LefMacro(name=f"cluster_{cluster_id}", width=width, height=height)
        self.macros[cluster_id] = macro
        return macro

    def macro_for(self, cluster_id: int) -> LefMacro:
        """Look up the macro of a cluster."""
        return self.macros[cluster_id]


_MACRO_RE = re.compile(
    r"MACRO\s+(\S+)\s*(.*?)END\s+\1", re.DOTALL
)
_SIZE_RE = re.compile(r"SIZE\s+([\d.eE+-]+)\s+BY\s+([\d.eE+-]+)")
_CLASS_RE = re.compile(r"CLASS\s+(\S+)")
_PIN_RE = re.compile(r"PIN\s+(\S+)")


def parse_lef(text: str) -> Dict[str, LefMacro]:
    """Parse LEF-lite text into macros keyed by name."""
    macros: Dict[str, LefMacro] = {}
    for match in _MACRO_RE.finditer(text):
        name, body = match.group(1), match.group(2)
        size = _SIZE_RE.search(body)
        if size is None:
            raise ValueError(f"MACRO {name} missing SIZE")
        cls = _CLASS_RE.search(body)
        pins = _PIN_RE.findall(body)
        macros[name] = LefMacro(
            name=name,
            width=float(size.group(1)),
            height=float(size.group(2)),
            macro_class=cls.group(1) if cls else "BLOCK",
            pins=pins,
        )
    return macros


def write_lef(macros: Dict[str, LefMacro]) -> str:
    """Serialise macros to LEF-lite text."""
    lines: List[str] = ["VERSION 5.8 ;", 'BUSBITCHARS "[]" ;', 'DIVIDERCHAR "/" ;']
    for macro in macros.values():
        lines.append(f"MACRO {macro.name}")
        lines.append(f"  CLASS {macro.macro_class} ;")
        lines.append(f"  SIZE {macro.width:.4f} BY {macro.height:.4f} ;")
        for pin in macro.pins:
            lines.append(f"  PIN {pin}")
            lines.append(f"  END {pin}")
        lines.append(f"END {macro.name}")
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"


def cluster_shape_dimensions(
    cell_area: float, aspect_ratio: float, utilization: float
) -> Tuple[float, float]:
    """Width and height of a cluster die for a shape candidate.

    The "virtual die" of the V-P&R framework (Figure 3) is sized the
    same way as the cluster macro: footprint = area / utilization with
    height / width = aspect_ratio.
    """
    if utilization <= 0 or aspect_ratio <= 0:
        raise ValueError("aspect_ratio and utilization must be positive")
    footprint = cell_area / utilization
    width = math.sqrt(footprint / aspect_ratio)
    return width, footprint / width
