"""Netlist database substrate (OpenDB substitute).

Provides the in-memory design model (:class:`Design`, :class:`Instance`,
:class:`Net`, :class:`Port`, :class:`MasterCell`), the immutable
:class:`Hypergraph` view used by all clustering algorithms, the logical
:class:`HierarchyTree`, and lite readers/writers for the file formats the
paper's flow consumes (.v, .lib, .lef, .def, .sdc).
"""

from repro.netlist.arrays import NetlistArrays
from repro.netlist.design import (
    Design,
    Instance,
    MasterCell,
    Net,
    PinDirection,
    PinRef,
    Port,
)
from repro.netlist.hierarchy import HierarchyNode, HierarchyTree
from repro.netlist.hypergraph import Hypergraph
from repro.netlist.liberty import parse_liberty, write_liberty
from repro.netlist.lef import ClusterLef, parse_lef, write_lef
from repro.netlist.def_format import parse_def, write_def
from repro.netlist.sdc import SdcConstraints, parse_sdc, write_sdc
from repro.netlist.snapshot import design_from_snapshot, design_snapshot
from repro.netlist.verilog import parse_verilog, write_verilog

__all__ = [
    "Design",
    "Instance",
    "MasterCell",
    "Net",
    "PinDirection",
    "PinRef",
    "Port",
    "HierarchyNode",
    "HierarchyTree",
    "Hypergraph",
    "NetlistArrays",
    "parse_liberty",
    "write_liberty",
    "ClusterLef",
    "parse_lef",
    "write_lef",
    "parse_def",
    "write_def",
    "SdcConstraints",
    "parse_sdc",
    "write_sdc",
    "parse_verilog",
    "write_verilog",
    "design_snapshot",
    "design_from_snapshot",
]
