"""Design database facade (OpenDB substitute).

:class:`DesignDatabase` bundles the artefacts Algorithm 1 reads at the
start of the flow: the design, its hypergraph view and the logical
hierarchy tree.
"""

from repro.db.database import DesignDatabase, load_design_files

__all__ = ["DesignDatabase", "load_design_files"]
