"""The OpenDB-substitute facade.

The paper's Algorithm 1 begins by reading the netlist files through
OpenDB, extracting the logical hierarchy and building the hypergraph
that clustering consumes.  :class:`DesignDatabase` provides exactly
those queries over our in-memory :class:`~repro.netlist.design.Design`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.netlist.design import Design
from repro.netlist.def_format import apply_def, parse_def
from repro.netlist.hierarchy import HierarchyTree
from repro.netlist.hypergraph import Hypergraph
from repro.netlist.liberty import parse_liberty
from repro.netlist.sdc import apply_sdc, parse_sdc
from repro.netlist.verilog import parse_verilog


class DesignDatabase:
    """Bundles a design with its derived structural views.

    Both views are built lazily and cached against
    :meth:`Design.structure_key`, so any mutation made through the
    construction or ECO APIs (``add_instance`` / ``connect`` /
    ``reconnect_pin`` / ``remove_instance`` / …) transparently rebuilds
    them on next access — the memoised ``Hypergraph.incidence`` can
    never serve pre-edit connectivity.  :meth:`invalidate` remains for
    out-of-API mutations that also bypass
    :meth:`Design.bump_structure_version`.
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        self._hypergraph: Optional[Hypergraph] = None
        self._hypergraph_key: Optional[tuple] = None
        self._hierarchy: Optional[HierarchyTree] = None
        self._hierarchy_key: Optional[tuple] = None

    @property
    def hypergraph(self) -> Hypergraph:
        """The clustering hypergraph (clock nets excluded)."""
        key = self.design.structure_key()
        if self._hypergraph is None or self._hypergraph_key != key:
            self._hypergraph = Hypergraph.from_design(self.design)
            self._hypergraph_key = key
        return self._hypergraph

    @property
    def hierarchy(self) -> HierarchyTree:
        """The logical hierarchy tree ``T(V', E')``."""
        key = self.design.structure_key()
        if self._hierarchy is None or self._hierarchy_key != key:
            self._hierarchy = HierarchyTree(self.design)
            self._hierarchy_key = key
        return self._hierarchy

    def invalidate(self) -> None:
        """Drop cached views after the design is modified."""
        self._hypergraph = None
        self._hypergraph_key = None
        self._hierarchy = None
        self._hierarchy_key = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DesignDatabase({self.design!r})"


def load_design_files(
    verilog_path: Path,
    liberty_path: Path,
    def_path: Optional[Path] = None,
    sdc_path: Optional[Path] = None,
) -> DesignDatabase:
    """Load a design from the paper's input file set (.v, .lib, .def, .sdc).

    The .lef geometry is folded into the Liberty-lite cells (area and
    height attributes), so a separate .lef is not needed for standard
    cells; cluster .lef files are produced later by the V-P&R stage.
    """
    masters = parse_liberty(Path(liberty_path).read_text())
    design = parse_verilog(Path(verilog_path).read_text(), masters)
    if def_path is not None:
        apply_def(design, parse_def(Path(def_path).read_text()))
    if sdc_path is not None:
        sdc = parse_sdc(Path(sdc_path).read_text())
        apply_sdc(design, sdc)
        if sdc.clock_port and sdc.clock_port in design.ports:
            clock_net = design.net(sdc.clock_port)
            clock_net.is_clock = True
    return DesignDatabase(design)
