"""repro — reproduction of "PPA-Relevant Clustering-Driven Placement for
Large-Scale VLSI Designs" (Kahng et al., DAC 2024).

The package is organised as a set of substrates (netlist database, static
timing analysis, global placement, global routing / CTS, baseline
clustering algorithms, a NumPy GNN stack and a synthetic benchmark
generator) plus the paper's contribution in :mod:`repro.core`:
PPA-aware clustering, the virtualized-P&R (V-P&R) shape-selection
framework, its ML acceleration and the seeded-placement flow.

Quickstart::

    from repro.designs import load_benchmark
    from repro.core import ClusteredPlacementFlow, FlowConfig

    design = load_benchmark("aes")
    flow = ClusteredPlacementFlow(FlowConfig(tool="openroad"))
    result = flow.run(design)
    print(result.metrics)
"""

from repro._version import __version__

__all__ = ["__version__"]
