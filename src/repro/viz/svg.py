"""SVG renderers for placements, cluster maps and congestion."""

from __future__ import annotations

import colorsys
from typing import List, Optional, Sequence

from repro.netlist.design import Design
from repro.route.gcell import GCellGrid

#: Rendered image width in pixels; height follows the die aspect.
IMAGE_WIDTH = 800


def _svg_header(width: float, height: float) -> List[str]:
    return [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="#fafafa"/>',
    ]


def _cluster_color(cluster_id: int, num_clusters: int) -> str:
    """Distinct, stable colour per cluster (golden-angle hues)."""
    hue = (cluster_id * 0.61803398875) % 1.0
    r, g, b = colorsys.hsv_to_rgb(hue, 0.65, 0.85)
    return f"#{int(r * 255):02x}{int(g * 255):02x}{int(b * 255):02x}"


def _heat_color(ratio: float) -> str:
    """Green -> yellow -> red ramp for congestion ratios."""
    clamped = max(0.0, min(ratio, 1.5)) / 1.5
    hue = (1.0 - clamped) * 0.33  # 0.33 = green, 0 = red
    r, g, b = colorsys.hsv_to_rgb(hue, 0.9, 0.9)
    return f"#{int(r * 255):02x}{int(g * 255):02x}{int(b * 255):02x}"


def render_placement_svg(
    design: Design,
    path: Optional[str] = None,
    cell_color: str = "#4477aa",
    macro_color: str = "#aa4444",
) -> str:
    """Render the current placement; returns (and optionally writes)
    the SVG text."""
    fp = design.floorplan
    scale = IMAGE_WIDTH / fp.die_width
    height = fp.die_height * scale
    lines = _svg_header(IMAGE_WIDTH, height)
    lines.append(
        f'<rect x="{fp.core_llx * scale:.1f}" '
        f'y="{(fp.die_height - fp.core_ury) * scale:.1f}" '
        f'width="{fp.core_width * scale:.1f}" '
        f'height="{fp.core_height * scale:.1f}" '
        'fill="none" stroke="#888" stroke-width="1"/>'
    )
    for inst in design.instances:
        w = max(1.0, inst.master.width * scale)
        h = max(1.0, inst.master.height * scale)
        x = inst.x * scale - w / 2
        y = (fp.die_height - inst.y) * scale - h / 2
        color = macro_color if inst.master.is_macro else cell_color
        opacity = 0.9 if inst.master.is_macro else 0.5
        lines.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{color}" fill-opacity="{opacity}"/>'
        )
    for port in design.ports.values():
        x = port.x * scale
        y = (fp.die_height - port.y) * scale
        lines.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" fill="#222"/>'
        )
    lines.append("</svg>")
    text = "\n".join(lines)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def render_clusters_svg(
    design: Design,
    cluster_of: Sequence[int],
    path: Optional[str] = None,
) -> str:
    """Render the placement coloured by cluster membership."""
    fp = design.floorplan
    scale = IMAGE_WIDTH / fp.die_width
    height = fp.die_height * scale
    num_clusters = int(max(cluster_of)) + 1 if len(cluster_of) else 1
    lines = _svg_header(IMAGE_WIDTH, height)
    for inst in design.instances:
        w = max(1.2, inst.master.width * scale)
        h = max(1.2, inst.master.height * scale)
        x = inst.x * scale - w / 2
        y = (fp.die_height - inst.y) * scale - h / 2
        color = _cluster_color(int(cluster_of[inst.index]), num_clusters)
        lines.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{color}" fill-opacity="0.75"/>'
        )
    lines.append("</svg>")
    text = "\n".join(lines)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def render_series_svg(
    steps: Sequence[float],
    values: Sequence[float],
    title: str = "",
    width: int = 480,
    height: int = 160,
    color: str = "#4477aa",
    path: Optional[str] = None,
) -> str:
    """Render one metric stream as a compact line chart.

    Used by the telemetry HTML run report for convergence curves
    (``gp.hpwl`` per iteration, per-candidate V-P&R costs, ...).
    Degenerate series (single point, constant value) still render.
    """
    margin_l, margin_r, margin_t, margin_b = 56.0, 8.0, 20.0, 18.0
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    xs = [float(s) for s in steps] or [0.0]
    ys = [float(v) for v in values] or [0.0]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or max(abs(y_hi), 1.0)

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / x_span * plot_w

    def sy(y: float) -> float:
        return margin_t + (1.0 - (y - y_lo) / y_span) * plot_h

    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#fafafa"/>',
        f'<rect x="{margin_l:.1f}" y="{margin_t:.1f}" width="{plot_w:.1f}" '
        f'height="{plot_h:.1f}" fill="none" stroke="#bbb"/>',
    ]
    if title:
        lines.append(
            f'<text x="{margin_l:.1f}" y="{margin_t - 6:.1f}" '
            f'font-size="11" font-family="sans-serif">{title}</text>'
        )
    for label, y in ((f"{y_hi:.4g}", y_hi), (f"{y_lo:.4g}", y_lo)):
        lines.append(
            f'<text x="{margin_l - 4:.1f}" y="{sy(y) + 3:.1f}" font-size="9" '
            f'font-family="sans-serif" text-anchor="end">{label}</text>'
        )
    points = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
    if len(xs) > 1:
        lines.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="1.5"/>'
        )
    for x, y in zip(xs, ys):
        lines.append(
            f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="1.8" fill="{color}"/>'
        )
    lines.append("</svg>")
    text = "\n".join(lines)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text


def render_congestion_svg(
    design: Design,
    grid: GCellGrid,
    path: Optional[str] = None,
) -> str:
    """Render the GCell congestion heat map of a routed design."""
    fp = design.floorplan
    scale = IMAGE_WIDTH / fp.die_width
    height = fp.die_height * scale
    lines = _svg_header(IMAGE_WIDTH, height)
    cell_w = grid.cell_width * scale
    cell_h = grid.cell_height * scale
    ratios = grid.congestion_ratios().reshape(grid.ny, grid.nx)
    for row in range(grid.ny):
        for col in range(grid.nx):
            ratio = float(ratios[row, col])
            if ratio <= 0.05:
                continue
            x = col * cell_w
            y = (grid.ny - 1 - row) * cell_h
            lines.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell_w:.1f}" '
                f'height="{cell_h:.1f}" fill="{_heat_color(ratio)}" '
                f'fill-opacity="0.8"/>'
            )
    lines.append("</svg>")
    text = "\n".join(lines)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
