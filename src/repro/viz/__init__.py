"""Layout visualisation (SVG, no external dependencies).

Renders placements (optionally coloured by cluster), GCell congestion
heat maps and clock trees to standalone SVG files — the artefacts a
placement paper's figures are made of.
"""

from repro.viz.svg import (
    render_clusters_svg,
    render_congestion_svg,
    render_placement_svg,
    render_series_svg,
)

__all__ = [
    "render_placement_svg",
    "render_clusters_svg",
    "render_congestion_svg",
    "render_series_svg",
]
