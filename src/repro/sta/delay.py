"""Wire delay / capacitance models.

Three fidelity levels, used at different points of the flow:

* :class:`FanoutWireModel` — pre-placement, wire length estimated from
  fanout alone (the model synthesis-time STA would use).
* :class:`PlacementWireModel` — post-placement, per-sink Manhattan
  distance and HPWL-based net capacitance.
* :class:`RoutedWireModel` — post-routing, uses the global router's
  per-net routed lengths (Steiner length inflated by congestion
  detours).

Unit system: distance in microns, resistance in kOhm, capacitance in
fF, time in ns.  1 kOhm * 1 fF = 1 ps = 1e-3 ns, hence the ``RC_NS``
conversion factor.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netlist.design import Design, Net, PinRef

#: ns per (kOhm * fF).
RC_NS = 1e-3

#: Default per-micron wire resistance (kOhm/um), NanGate45-ish metal.
DEFAULT_R_PER_UM = 0.002

#: Default per-micron wire capacitance (fF/um).
DEFAULT_C_PER_UM = 0.2

#: Virtual buffering: loads above this are assumed to be buffered by
#: the implementation tool (OpenROAD resizer / Innovus optDesign both
#: do this before routing), so a driver never sees more than this
#: capacitance directly...
BUFFERED_LOAD_FF = 40.0

#: ...and each doubling of the remaining load costs one buffer stage.
BUFFER_STAGE_DELAY_NS = 0.045


def effective_cell_delay(
    intrinsic_delay: float, drive_resistance: float, load: float
) -> float:
    """Linear cell delay with virtual buffering of large loads.

    ``delay = intrinsic + R * min(load, BUFFERED) + stage_delay *
    log2(load / BUFFERED)`` — the logarithmic term models the buffer
    tree the implementation tools would insert for high-fanout nets.
    """
    import math

    direct = min(load, BUFFERED_LOAD_FF)
    delay = intrinsic_delay + drive_resistance * direct
    if load > BUFFERED_LOAD_FF:
        delay += BUFFER_STAGE_DELAY_NS * math.log2(load / BUFFERED_LOAD_FF)
    return delay


class WireDelayModel:
    """Base class: computes wire delay and net capacitance.

    Subclasses override :meth:`net_wirelength` (total net wire length,
    used for capacitive load) and :meth:`sink_distance` (driver-to-sink
    distance, used for the distributed RC delay to one sink).
    """

    def __init__(
        self,
        design: Design,
        r_per_um: float = DEFAULT_R_PER_UM,
        c_per_um: float = DEFAULT_C_PER_UM,
    ) -> None:
        self.design = design
        self.r_per_um = r_per_um
        self.c_per_um = c_per_um

    # -- geometry hooks -------------------------------------------------
    def net_wirelength(self, net: Net) -> float:
        """Estimated total wire length of the net (microns)."""
        raise NotImplementedError

    def sink_distance(self, net: Net, sink: PinRef) -> float:
        """Estimated driver-to-sink distance (microns)."""
        raise NotImplementedError

    # -- electrical quantities ------------------------------------------
    def wire_capacitance(self, net: Net) -> float:
        """Wire capacitance of the net (fF)."""
        return self.c_per_um * self.net_wirelength(net)

    def net_load(self, net: Net) -> float:
        """Total load seen by the driver: wire cap + sink pin caps (fF)."""
        pin_cap = sum(sink.capacitance(self.design) for sink in net.sinks)
        return pin_cap + self.wire_capacitance(net)

    def wire_delay(self, net: Net, sink: PinRef) -> float:
        """Elmore-style wire delay from driver to ``sink`` (ns).

        Uses the distributed-RC approximation over the driver-to-sink
        distance: ``R_wire * (C_wire / 2 + C_sink)``.
        """
        dist = self.sink_distance(net, sink)
        r_wire = self.r_per_um * dist
        c_wire = self.c_per_um * dist
        c_sink = sink.capacitance(self.design)
        return RC_NS * r_wire * (0.5 * c_wire + c_sink)


class FanoutWireModel(WireDelayModel):
    """Placement-oblivious model: wire length grows with fanout.

    ``WL = wl_per_fanout * degree`` is the classic synthesis wireload
    approximation; used for the pre-placement STA that seeds the
    PPA-aware clustering when no placement exists yet.
    """

    def __init__(self, design: Design, wl_per_fanout: float = 4.0, **kwargs) -> None:
        super().__init__(design, **kwargs)
        self.wl_per_fanout = wl_per_fanout

    def net_wirelength(self, net: Net) -> float:
        return self.wl_per_fanout * max(1, net.fanout)

    def sink_distance(self, net: Net, sink: PinRef) -> float:
        return self.wl_per_fanout


def _pin_location(design: Design, ref: PinRef) -> tuple:
    """Location of a pin reference (instance centre or port location)."""
    if ref.instance is not None:
        return ref.instance.x, ref.instance.y
    port = design.ports[ref.pin_name]
    return port.x, port.y


class PlacementWireModel(WireDelayModel):
    """Post-placement model: HPWL net length, Manhattan sink distance."""

    def net_wirelength(self, net: Net) -> float:
        xs = []
        ys = []
        for ref in net.pins():
            x, y = _pin_location(self.design, ref)
            xs.append(x)
            ys.append(y)
        if not xs:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def sink_distance(self, net: Net, sink: PinRef) -> float:
        if net.driver is None:
            return 0.0
        xd, yd = _pin_location(self.design, net.driver)
        xs, ys = _pin_location(self.design, sink)
        return abs(xd - xs) + abs(yd - ys)


class RoutedWireModel(PlacementWireModel):
    """Post-route model: per-net routed lengths from the global router.

    ``routed_lengths`` maps net index to routed wire length (microns);
    nets absent from the map fall back to the placement HPWL.  Sink
    distances are scaled by the net's detour ratio so congestion-driven
    detours lengthen the timing arcs they affect.
    """

    def __init__(
        self,
        design: Design,
        routed_lengths: Optional[Dict[int, float]] = None,
        **kwargs,
    ) -> None:
        super().__init__(design, **kwargs)
        self.routed_lengths = routed_lengths or {}

    def net_wirelength(self, net: Net) -> float:
        routed = self.routed_lengths.get(net.index)
        if routed is not None:
            return routed
        return super().net_wirelength(net)

    def sink_distance(self, net: Net, sink: PinRef) -> float:
        base = super().sink_distance(net, sink)
        hpwl = super().net_wirelength(net)
        routed = self.routed_lengths.get(net.index)
        if routed is None or hpwl <= 0:
            return base
        detour = max(1.0, routed / hpwl)
        return base * detour
