"""Static timing / power analysis substrate (OpenSTA substitute).

Provides the artefacts Algorithm 1 extracts before clustering:

* top-|P| critical timing paths (``find_path_ends``, Section 3.1),
* vectorless switching activity per net (``propagate_activity``),
* post-place / post-route WNS, TNS and total power.
"""

from repro.sta.delay import (
    FanoutWireModel,
    PlacementWireModel,
    RoutedWireModel,
    WireDelayModel,
)
from repro.sta.graph import TimingGraph, timing_graph_for
from repro.sta.analysis import TimingAnalyzer, TimingReport
from repro.sta.paths import TimingPath, find_path_ends
from repro.sta.activity import propagate_activity
from repro.sta.power import PowerReport, analyze_power
from repro.sta.hold import HoldReport, analyze_hold

__all__ = [
    "WireDelayModel",
    "FanoutWireModel",
    "PlacementWireModel",
    "RoutedWireModel",
    "TimingGraph",
    "timing_graph_for",
    "TimingAnalyzer",
    "TimingReport",
    "TimingPath",
    "find_path_ends",
    "propagate_activity",
    "PowerReport",
    "analyze_power",
    "HoldReport",
    "analyze_hold",
]
