"""Flattened (array-form) timing graph for vectorized STA.

:class:`FlatTiming` compiles a :class:`~repro.sta.graph.TimingGraph`
into NumPy arrays once per graph, so that every subsequent timing
update — arrival/required propagation, hold analysis, activity
propagation — runs as a handful of wave-sliced array kernels instead
of per-arc Python loops.

Bit-identity contract
---------------------

The vectorized kernels in :mod:`repro.sta.analysis` must reproduce the
scalar reference propagation *bit for bit*.  The compilation therefore
preserves the exact evaluation-order semantics of the scalar code:

* max/min reductions are order-insensitive (no FP rounding), so wave
  reductions may use ``np.maximum.reduceat`` freely;
* order-sensitive *sums* (e.g. activity input accumulation) must use
  ``np.add.at``/``np.bincount`` over arrays sorted in the scalar
  visitation order — these accumulate sequentially in array order,
  unlike ``np.add.reduceat``/``np.sum`` which use pairwise summation;
* the forward worst-predecessor tie-break replicates the scalar
  "strict improvement" rule: the predecessor recorded for a node is
  the *first* arc, in scalar visitation order ``(rank(src), arc
  creation order)``, that attains the segment maximum — and only when
  that maximum strictly exceeds the node's startpoint launch value.

Static per-design quantities (master-cell delays, pin capacitances,
port coordinates, per-net static pin-cap sums) are captured at compile
time.  Mutating masters afterwards (gate sizing) must call
:func:`invalidate_flat` on the graph.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.design import Design
from repro.sta.delay import (
    BUFFER_STAGE_DELAY_NS,
    BUFFERED_LOAD_FF,
    RC_NS,
    FanoutWireModel,
    PlacementWireModel,
    RoutedWireModel,
    WireDelayModel,
)
from repro.sta.graph import TimingGraph


def _gather_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenation ``[s:s+c] for s, c in zip(...)``."""
    nonzero = counts > 0
    if not nonzero.all():
        starts = starts[nonzero]
        counts = counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Classic vectorized multi-arange.
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    out[0] = starts[0]
    if len(starts) > 1:
        out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


class FlatTiming:
    """Array form of one timing graph (see module docstring)."""

    def __init__(self, graph: TimingGraph) -> None:
        self.graph = graph
        design = graph.design
        self.design = design
        n = graph.num_nodes
        self.num_nodes = n
        info = graph.info
        ports = design.ports

        # -- per-arc arrays, in creation-enumeration order ----------------
        # Assembled from the flat pieces the graph builder recorded:
        # wire arcs (net-major) first, then cell arcs (out-major).
        a_src, a_dst, nw = graph.flat_arc_arrays()
        m = len(a_src)
        self.num_arcs = m
        mc = m - nw
        self.a_src = a_src
        self.a_dst = a_dst
        self.a_iswire = np.arange(m) < nw
        self.a_wire_net = np.concatenate(
            (np.repeat(graph._w_net, graph._w_cnt), np.full(mc, -1, dtype=np.int64))
        )
        self.a_load_net = np.concatenate(
            (np.full(nw, -1, dtype=np.int64), np.repeat(graph._c_out_net, graph._c_nin))
        )
        instances = design.instances
        out_inst = graph._c_out_inst.tolist()
        n_out = len(out_inst)
        intr_out = np.fromiter(
            (instances[i].master.intrinsic_delay for i in out_inst),
            dtype=np.float64,
            count=n_out,
        )
        drive_out = np.fromiter(
            (instances[i].master.drive_resistance for i in out_inst),
            dtype=np.float64,
            count=n_out,
        )
        zero_w = np.zeros(nw)
        self.a_intrinsic = np.concatenate((zero_w, np.repeat(intr_out, graph._c_nin)))
        self.a_drive = np.concatenate((zero_w, np.repeat(drive_out, graph._c_nin)))
        #: True when some node mixes wire and cell input arcs — never
        #: produced by the current graph builder, but the vectorized
        #: activity kernel depends on per-node arc-kind homogeneity.
        self.mixed_input_kinds = bool(
            len(np.intersect1d(self.a_dst[:nw], graph._c_out_node)) > 0
        )

        # -- topological rank and wave levels -----------------------------
        rank = np.empty(n, dtype=np.int64)
        rank[np.asarray(graph.topo_order, dtype=np.int64)] = np.arange(n)
        self.rank = rank
        self.level = (
            graph.levels if graph.levels is not None else self._compute_levels(n)
        )

        # -- forward (pred) CSR: sorted by (level(dst), dst, rank(src)) ---
        # lexsort is stable, so equal keys keep creation order — the
        # scalar per-dst visitation order is (rank(src), creation idx).
        order_f = np.lexsort((rank[self.a_src], self.a_dst, self.level[self.a_dst]))
        self.order_f = order_f
        self.inv_f = np.empty(m, dtype=np.int64)
        self.inv_f[order_f] = np.arange(m)
        self.f_src = self.a_src[order_f]
        self.f_dst = self.a_dst[order_f]
        self.f_iswire = self.a_iswire[order_f]
        lvl_f = self.level[self.f_dst]
        max_lvl = int(self.level.max()) if n else 0
        self.max_level = max_lvl
        #: arc range [wave_f[L], wave_f[L + 1]) holds arcs into level-L dsts.
        self.wave_f = np.searchsorted(lvl_f, np.arange(max_lvl + 2))
        # dst segment starts (global indices into the fwd order).
        if m:
            seg = np.flatnonzero(np.concatenate(([True], self.f_dst[1:] != self.f_dst[:-1])))
        else:
            seg = np.empty(0, dtype=np.int64)
        self.seg_f = seg
        #: segment range per wave: seg_f[wave_seg_f[L]:wave_seg_f[L+1]].
        self.wave_seg_f = np.searchsorted(seg, self.wave_f)
        # per-node pred range over the fwd order (nodes without preds: 0,0)
        self.pred_start = np.zeros(n, dtype=np.int64)
        self.pred_end = np.zeros(n, dtype=np.int64)
        if m:
            seg_nodes = self.f_dst[seg]
            seg_end = np.append(seg[1:], m)
            self.pred_start[seg_nodes] = seg
            self.pred_end[seg_nodes] = seg_end

        # -- backward (succ) CSR: sorted by (level(src), src) -------------
        order_b = np.lexsort((self.a_src, self.level[self.a_src]))
        self.order_b = order_b
        self.inv_b = np.empty(m, dtype=np.int64)
        self.inv_b[order_b] = np.arange(m)
        self.b_src = self.a_src[order_b]
        self.b_dst = self.a_dst[order_b]
        lvl_b = self.level[self.b_src]
        self.wave_b = np.searchsorted(lvl_b, np.arange(max_lvl + 2))
        if m:
            segb = np.flatnonzero(np.concatenate(([True], self.b_src[1:] != self.b_src[:-1])))
        else:
            segb = np.empty(0, dtype=np.int64)
        self.seg_b = segb
        self.wave_seg_b = np.searchsorted(segb, self.wave_b)
        self.succ_start = np.zeros(n, dtype=np.int64)
        self.succ_end = np.zeros(n, dtype=np.int64)
        if m:
            segb_nodes = self.b_src[segb]
            segb_end = np.append(segb[1:], m)
            self.succ_start[segb_nodes] = segb
            self.succ_end[segb_nodes] = segb_end

        # -- endpoint / startpoint tables (list order preserved) ----------
        self.s_nodes = np.asarray(graph.startpoints, dtype=np.int64)
        s_launch = []
        s_isport = []
        for s in graph.startpoints:
            inst, _pin = info(s)
            if inst is None:
                s_launch.append(0.0)
                s_isport.append(True)
            else:
                s_launch.append(inst.master.clk_to_q)
                s_isport.append(False)
        self.s_launch = np.asarray(s_launch, dtype=np.float64)
        self.s_isport = np.asarray(s_isport, dtype=bool)

        self.e_nodes = np.asarray(graph.endpoints, dtype=np.int64)
        e_setup = []
        e_isseq = []
        e_hold = []
        for e in graph.endpoints:
            inst, _pin = info(e)
            if inst is None:
                e_setup.append(0.0)
                e_isseq.append(False)
                e_hold.append(0.0)
            else:
                e_setup.append(inst.master.setup_time)
                e_isseq.append(inst.master.is_sequential)
                e_hold.append(inst.master.hold_time)
        self.e_setup = np.asarray(e_setup, dtype=np.float64)
        self.e_isseq = np.asarray(e_isseq, dtype=bool)
        self.e_hold = np.asarray(e_hold, dtype=np.float64)

        # Startpoint launch template (full update applies it with
        # maximum.at, exactly matching the scalar max-init loop).
        init = np.full(n, -np.inf)
        if len(self.s_nodes):
            np.maximum.at(init, self.s_nodes, self.s_launch)
        self.init_arrival = init

        # -- per-net tables ------------------------------------------------
        num_nets = len(design.nets)
        self.num_nets = num_nets
        pincap = np.zeros(num_nets, dtype=np.float64)
        fanout = np.zeros(num_nets, dtype=np.int64)
        pin_counts = np.zeros(num_nets, dtype=np.int64)
        pin_inst: List[int] = []
        pin_px: List[float] = []
        pin_py: List[float] = []
        drv_inst = np.full(num_nets, -1, dtype=np.int64)
        drv_px = np.zeros(num_nets, dtype=np.float64)
        drv_py = np.zeros(num_nets, dtype=np.float64)
        drv_node = np.full(num_nets, -1, dtype=np.int64)
        net_is_clock = np.zeros(num_nets, dtype=bool)
        csink_wire: List[float] = []
        node_of = graph._node_of
        # Pin capacitances are per-(master, pin) constants; memoizing
        # them skips the attribute chain PinRef.capacitance walks for
        # every sink of every net.
        cap_memo: Dict[Tuple[int, str], float] = {}
        for net in design.nets:
            ni = net.index
            is_clock = net.is_clock
            net_is_clock[ni] = is_clock
            fanout[ni] = net.fanout
            caps = []
            for s in net.sinks:
                inst = s.instance
                if inst is None:
                    caps.append(ports[s.pin_name].capacitance)
                    continue
                ck = (id(inst.master), s.pin_name)
                c = cap_memo.get(ck)
                if c is None:
                    c = inst.master.pins[s.pin_name].capacitance
                    cap_memo[ck] = c
                caps.append(c)
            # Same sequential Python sum as WireDelayModel.net_load.
            pincap[ni] = sum(caps)
            if net.driver is not None and not is_clock:
                # net order == wire-arc creation order (graph builder).
                csink_wire.extend(caps)
            count = 0
            for ref in net.pins():
                count += 1
                if ref.instance is None:
                    port = ports[ref.pin_name]
                    pin_inst.append(-1)
                    pin_px.append(port.x)
                    pin_py.append(port.y)
                else:
                    pin_inst.append(ref.instance.index)
                    pin_px.append(0.0)
                    pin_py.append(0.0)
            pin_counts[ni] = count
            if net.driver is not None:
                ref = net.driver
                key = (
                    ref.instance.index if ref.instance is not None else None,
                    ref.pin_name,
                )
                node = node_of.get(key)
                # Driver pins without a graph node (e.g. tie cells with
                # no input arcs) map to a virtual zero-activity slot at
                # index n, matching the scalar node_for_ref fallback.
                drv_node[ni] = node if node is not None else n
                if ref.instance is None:
                    port = ports[ref.pin_name]
                    drv_px[ni] = port.x
                    drv_py[ni] = port.y
                else:
                    drv_inst[ni] = ref.instance.index
        self.net_pincap = pincap
        self.net_fanout = fanout
        self.net_is_clock = net_is_clock
        self.pin_indptr = np.concatenate(
            ([0], np.cumsum(pin_counts))
        ).astype(np.int64)
        self.pin_inst = np.asarray(pin_inst, dtype=np.int64)
        self.pin_px = np.asarray(pin_px, dtype=np.float64)
        self.pin_py = np.asarray(pin_py, dtype=np.float64)
        self.drv_inst = drv_inst
        self.drv_px = drv_px
        self.drv_py = drv_py
        self.drv_node = drv_node

        # -- wire-arc sink tables (from the pin CSR: sinks of a driven
        # net are its pins after the leading driver entry) ----------------
        neg_c = np.full(mc, -1, dtype=np.int64)
        zero_c = np.zeros(mc)
        sink_pins = _gather_ranges(self.pin_indptr[graph._w_net] + 1, graph._w_cnt)
        self.a_csink = np.concatenate(
            (np.asarray(csink_wire, dtype=np.float64), zero_c)
        )
        self.a_sink_inst = np.concatenate((self.pin_inst[sink_pins], neg_c))
        self.a_sink_px = np.concatenate((self.pin_px[sink_pins], zero_c))
        self.a_sink_py = np.concatenate((self.pin_py[sink_pins], zero_c))

        # -- net -> arc CSRs (for incremental invalidation) ----------------
        wire_ids = np.flatnonzero(self.a_iswire)
        worder = wire_ids[np.argsort(self.a_wire_net[wire_ids], kind="stable")]
        self.wnet_arcs = worder
        self.wnet_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(self.a_wire_net[wire_ids], minlength=num_nets)))
        ).astype(np.int64)
        cell_ids = np.flatnonzero(~self.a_iswire & (self.a_load_net >= 0))
        corder = cell_ids[np.argsort(self.a_load_net[cell_ids], kind="stable")]
        self.lnet_arcs = corder
        self.lnet_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(self.a_load_net[cell_ids], minlength=num_nets)))
        ).astype(np.int64)

        # -- activity tables (per dst node) --------------------------------
        from repro.sta.activity import TRANSFER_FACTORS

        factor = np.full(n, 0.6, dtype=np.float64)
        cell_cnt = np.zeros(n, dtype=np.int64)
        if n_out:
            factor[graph._c_out_node] = np.fromiter(
                (
                    TRANSFER_FACTORS.get(instances[i].master.cell_class, 0.6)
                    for i in out_inst
                ),
                dtype=np.float64,
                count=n_out,
            )
            cell_cnt[graph._c_out_node] = graph._c_nin
        self.act_factor = factor
        self.cell_in_cnt = cell_cnt

    # ------------------------------------------------------------------
    def _compute_levels(self, n: int) -> np.ndarray:
        """Longest-path depth per node via vectorized Kahn waves."""
        level = np.zeros(n, dtype=np.int64)
        if self.num_arcs == 0:
            return level
        indeg = np.bincount(self.a_dst, minlength=n)
        # succ CSR over creation order for the wave sweep
        order = np.argsort(self.a_src, kind="stable")
        sdst = self.a_dst[order]
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(self.a_src, minlength=n)))
        )
        frontier = np.flatnonzero(indeg == 0)
        lvl = 0
        while len(frontier):
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            arcs = _gather_ranges(starts, counts)
            if not len(arcs):
                break
            dsts = sdst[arcs]
            np.subtract.at(indeg, dsts, 1)
            ready = np.unique(dsts[indeg[dsts] == 0])
            lvl += 1
            level[ready] = lvl
            frontier = ready
        return level

    # ------------------------------------------------------------------
    def instance_coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current instance centre coordinates (fresh gather)."""
        instances = self.design.instances
        count = len(instances)
        xs = np.fromiter((i.x for i in instances), dtype=np.float64, count=count)
        ys = np.fromiter((i.y for i in instances), dtype=np.float64, count=count)
        return xs, ys

    def model_signature(self, model: WireDelayModel) -> Optional[tuple]:
        """Signature for incremental-validity checks; None = unsupported."""
        t = type(model)
        if t is FanoutWireModel:
            return (id(model), model.r_per_um, model.c_per_um, model.wl_per_fanout)
        if t is PlacementWireModel:
            return (id(model), model.r_per_um, model.c_per_um)
        if t is RoutedWireModel:
            return (id(model), model.r_per_um, model.c_per_um)
        return None

    # -- geometry ------------------------------------------------------
    def net_hpwl(
        self,
        inst_x: np.ndarray,
        inst_y: np.ndarray,
        nets: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """HPWL per net (all nets, or the given subset in order)."""
        if nets is None:
            starts = self.pin_indptr[:-1]
            counts = np.diff(self.pin_indptr)
            pidx = np.arange(len(self.pin_inst), dtype=np.int64)
            out = np.zeros(self.num_nets, dtype=np.float64)
        else:
            starts = self.pin_indptr[nets]
            counts = self.pin_indptr[nets + 1] - starts
            pidx = _gather_ranges(starts, counts)
            out = np.zeros(len(nets), dtype=np.float64)
        inst = self.pin_inst[pidx]
        isport = inst < 0
        safe = np.where(isport, 0, inst)
        px = np.where(isport, self.pin_px[pidx], inst_x[safe])
        py = np.where(isport, self.pin_py[pidx], inst_y[safe])
        nonempty = np.flatnonzero(counts > 0)
        if len(nonempty) == 0:
            return out
        local_starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        rs = local_starts[nonempty]
        xmax = np.maximum.reduceat(px, rs)
        xmin = np.minimum.reduceat(px, rs)
        ymax = np.maximum.reduceat(py, rs)
        ymin = np.minimum.reduceat(py, rs)
        out[nonempty] = (xmax - xmin) + (ymax - ymin)
        return out

    def wire_net_lengths(
        self,
        model: WireDelayModel,
        inst_x: Optional[np.ndarray],
        inst_y: Optional[np.ndarray],
        nets: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """(net_wirelength, placement_hpwl or None) per net (or subset).

        ``placement_hpwl`` is the un-overridden HPWL kept for the routed
        model's detour ratio.
        """
        t = type(model)
        fanout = self.net_fanout if nets is None else self.net_fanout[nets]
        if t is FanoutWireModel:
            wl = model.wl_per_fanout * np.maximum(1, fanout)
            return wl.astype(np.float64), None
        hpwl = self.net_hpwl(inst_x, inst_y, nets)
        if t is PlacementWireModel:
            return hpwl, None
        # RoutedWireModel
        routed = np.full(len(hpwl), np.nan)
        rl = model.routed_lengths
        if rl:
            if nets is None:
                for ni, length in rl.items():
                    if 0 <= ni < len(routed):
                        routed[ni] = length
            else:
                for i, ni in enumerate(nets.tolist()):
                    length = rl.get(ni)
                    if length is not None:
                        routed[i] = length
        has = ~np.isnan(routed)
        wl = np.where(has, routed, hpwl)
        return wl, hpwl

    def arc_delays(
        self,
        model: WireDelayModel,
        net_load: np.ndarray,
        net_hpwl: Optional[np.ndarray],
        inst_x: Optional[np.ndarray],
        inst_y: Optional[np.ndarray],
        arcs: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-arc delays in enumeration order (or for an arc subset).

        Mirrors the exact elementwise expression order of
        :func:`repro.sta.delay.effective_cell_delay` and
        :meth:`WireDelayModel.wire_delay` so results are bit-identical
        to the scalar path.
        """
        if arcs is None:
            iswire = self.a_iswire
            wnet = self.a_wire_net
            lnet = self.a_load_net
            intrinsic = self.a_intrinsic
            drive = self.a_drive
            csink = self.a_csink
            sinst = self.a_sink_inst
            spx = self.a_sink_px
            spy = self.a_sink_py
            m = self.num_arcs
        else:
            iswire = self.a_iswire[arcs]
            wnet = self.a_wire_net[arcs]
            lnet = self.a_load_net[arcs]
            intrinsic = self.a_intrinsic[arcs]
            drive = self.a_drive[arcs]
            csink = self.a_csink[arcs]
            sinst = self.a_sink_inst[arcs]
            spx = self.a_sink_px[arcs]
            spy = self.a_sink_py[arcs]
            m = len(arcs)
        delay = np.zeros(m, dtype=np.float64)

        # -- wire arcs -------------------------------------------------
        widx = np.flatnonzero(iswire)
        if len(widx):
            t = type(model)
            if t is FanoutWireModel:
                dist = np.full(len(widx), float(model.wl_per_fanout))
            else:
                nets = wnet[widx]
                di = self.drv_inst[nets]
                dport = di < 0
                dsafe = np.where(dport, 0, di)
                xd = np.where(dport, self.drv_px[nets], inst_x[dsafe])
                yd = np.where(dport, self.drv_py[nets], inst_y[dsafe])
                si = sinst[widx]
                sport = si < 0
                ssafe = np.where(sport, 0, si)
                xs = np.where(sport, spx[widx], inst_x[ssafe])
                ys = np.where(sport, spy[widx], inst_y[ssafe])
                dist = np.abs(xd - xs) + np.abs(yd - ys)
                if t is RoutedWireModel and model.routed_lengths:
                    assert net_hpwl is not None
                    hp = net_hpwl[nets]
                    routed = np.full(len(widx), np.nan)
                    rl = model.routed_lengths
                    for i, ni in enumerate(nets.tolist()):
                        length = rl.get(ni)
                        if length is not None:
                            routed[i] = length
                    scale = ~np.isnan(routed) & (hp > 0)
                    if scale.any():
                        detour = np.maximum(1.0, routed[scale] / hp[scale])
                        dist[scale] = dist[scale] * detour
            r_wire = model.r_per_um * dist
            c_wire = model.c_per_um * dist
            delay[widx] = (RC_NS * r_wire) * (0.5 * c_wire + csink[widx])

        # -- cell arcs -------------------------------------------------
        cidx = np.flatnonzero(~iswire)
        if len(cidx):
            ln = lnet[cidx]
            load = np.where(ln >= 0, net_load[np.where(ln >= 0, ln, 0)], 0.0)
            direct = np.minimum(load, BUFFERED_LOAD_FF)
            d = intrinsic[cidx] + drive[cidx] * direct
            big = load > BUFFERED_LOAD_FF
            if big.any():
                d[big] = d[big] + BUFFER_STAGE_DELAY_NS * np.log2(
                    load[big] / BUFFERED_LOAD_FF
                )
            delay[cidx] = d
        return delay


_FLAT_CACHE: "weakref.WeakKeyDictionary[TimingGraph, FlatTiming]" = (
    weakref.WeakKeyDictionary()
)


def flat_for(graph: TimingGraph) -> FlatTiming:
    """Cached flat compilation of a timing graph."""
    flat = _FLAT_CACHE.get(graph)
    if flat is None:
        flat = FlatTiming(graph)
        _FLAT_CACHE[graph] = flat
    return flat


def invalidate_flat(graph: TimingGraph) -> None:
    """Drop the cached compilation (call after mutating master cells)."""
    _FLAT_CACHE.pop(graph, None)
