"""Critical path enumeration (OpenSTA ``findPathEnds`` substitute).

The paper extracts the top |P| timing paths with group count |P|,
endpoint count 1, unique pins, sorted by slack (Section 3.1).  That
configuration means: one worst path per endpoint, the |P| worst
endpoints overall.  :func:`find_path_ends` reproduces exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.sta.analysis import TimingAnalyzer


@dataclass
class TimingPath:
    """One enumerated timing path.

    Attributes:
        nodes: Pin node ids from startpoint to endpoint.
        slack: Endpoint slack (ns).
        net_indices: Indices of the nets traversed by the path's wire
            arcs — the hyperedges the PPA-aware clustering will weight.
    """

    nodes: List[int]
    slack: float
    net_indices: List[int]

    @property
    def endpoint(self) -> int:
        """The endpoint node id."""
        return self.nodes[-1]

    @property
    def startpoint(self) -> int:
        """The startpoint node id."""
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)


def find_path_ends(
    analyzer: TimingAnalyzer,
    group_count: int = 100000,
    endpoint_count: int = 1,
    unique_pins: bool = True,
    sort_by_slack: bool = True,
) -> List[TimingPath]:
    """Enumerate the worst paths, mirroring OpenSTA's findPathEnds.

    Args:
        analyzer: A timing analyzer (update() is run if needed).
        group_count: Maximum number of endpoints to report (|P|).
        endpoint_count: Worst paths per endpoint; only 1 is supported,
            matching the paper's configuration.
        unique_pins: Kept for API fidelity; the single worst path per
            endpoint is always pin-unique.
        sort_by_slack: Sort ascending by slack (worst first).

    Returns:
        Up to ``group_count`` paths, one per endpoint.
    """
    if endpoint_count != 1:
        raise NotImplementedError("only endpoint_count=1 is supported")
    if analyzer.report is None:
        analyzer.update()
    report = analyzer.report
    assert report is not None

    endpoints = list(report.endpoint_slacks.items())
    if sort_by_slack:
        endpoints.sort(key=lambda item: item[1])
    endpoints = endpoints[:group_count]

    graph = analyzer.graph
    # A node has at most one wire in-arc (its pin's net), so a hop
    # (pred -> node) traverses a wire exactly when the node's wire
    # in-arc source is pred.  Resolving the hop from these per-node
    # arrays avoids materializing the tuple adjacency.
    wire_src, wire_net = graph.wire_in_arrays()
    wire_src = wire_src.tolist()
    wire_net = wire_net.tolist()
    worst_pred = report.worst_pred
    paths: List[TimingPath] = []
    for endpoint, slack in endpoints:
        nodes: List[int] = []
        nets: List[int] = []
        seen: Set[int] = set()
        node = endpoint
        while node != -1 and node not in seen:
            seen.add(node)
            nodes.append(node)
            pred = worst_pred[node]
            if pred != -1 and wire_src[node] == pred:
                nets.append(wire_net[node])
            node = pred
        nodes.reverse()
        nets.reverse()
        paths.append(TimingPath(nodes=nodes, slack=slack, net_indices=nets))
    return paths
