"""Hold (min-delay) analysis.

Setup analysis propagates worst-case (max) arrivals; hold checks the
*fastest* path into each sequential D pin against the hold requirement
at the same clock edge:

    slack_hold = min_arrival(D) - (hold_time + clock_uncertainty)

Short register-to-register paths — exactly what aggressive clustering
can create by collapsing connected registers next to each other — are
the classic hold hazard, so the post-route evaluation can optionally
report hold WNS/TNS alongside setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.sta.analysis import TimingAnalyzer


@dataclass
class HoldReport:
    """Hold-analysis results.

    Attributes:
        wns: Worst hold slack (ns; negative = violation).
        tns: Total negative hold slack (ns).
        endpoint_slacks: Node id -> hold slack for sequential endpoints.
    """

    wns: float
    tns: float
    endpoint_slacks: Dict[int, float] = field(default_factory=dict)

    @property
    def num_failing(self) -> int:
        """Endpoints violating hold."""
        return sum(1 for s in self.endpoint_slacks.values() if s < 0)


def analyze_hold(
    analyzer: TimingAnalyzer, input_min_delay: float = 0.05
) -> HoldReport:
    """Min-arrival propagation over the analyzer's graph + wire model.

    Reuses the analyzer's arc delays (same geometry) with min instead
    of max accumulation.  Only sequential D-type endpoints are checked
    (output ports have no hold requirement in this single-clock model).

    Args:
        analyzer: Setup analyzer providing graph, wire model and clock
            uncertainty.
        input_min_delay: Earliest change time of primary inputs after
            the clock edge (the ``set_input_delay -min`` value real
            flows constrain; without it every input-to-D endpoint
            trivially fails hold).
    """
    graph = analyzer.graph
    n = graph.num_nodes

    # Fast path: min-propagate over the flat compilation, reusing the
    # per-arc delays the last (clean) vectorized update computed.
    state = getattr(analyzer, "_state", None)
    if state is not None and analyzer._dirty is None:
        from repro.sta.flat import flat_for

        flat = flat_for(graph)
        arr = np.full(n, np.inf)
        if len(flat.s_nodes):
            launch = np.where(
                flat.s_isport, input_min_delay, flat.s_launch
            )
            np.minimum.at(arr, flat.s_nodes, launch)
        fsrc = flat.f_src
        fdst = flat.f_dst
        df = state.delay_f
        for lvl in range(1, flat.max_level + 1):
            a0 = flat.wave_f[lvl]
            a1 = flat.wave_f[lvl + 1]
            if a0 == a1:
                continue
            starts = flat.seg_f[flat.wave_seg_f[lvl] : flat.wave_seg_f[lvl + 1]]
            cand = arr[fsrc[a0:a1]] + df[a0:a1]
            segmin = np.minimum.reduceat(cand, starts - a0)
            vs = fdst[starts]
            arr[vs] = np.minimum(arr[vs], segmin)
        e = flat.e_nodes
        keep = flat.e_isseq & (arr[e] != np.inf) if len(e) else np.empty(0, bool)
        kept_nodes = e[keep]
        slack = arr[kept_nodes] - (
            flat.e_hold[keep] + analyzer.clock_uncertainty
        )
        wns = float(slack.min()) if len(slack) else 0.0
        tns = 0.0
        neg = slack[slack < 0]
        if len(neg):
            tns = float(np.cumsum(neg)[-1])
        return HoldReport(
            wns=wns,
            tns=tns,
            endpoint_slacks=dict(zip(kept_nodes.tolist(), slack.tolist())),
        )

    arrival = [math.inf] * n
    for s in graph.startpoints:
        inst, _pin = graph.info(s)
        if inst is None:
            launch = input_min_delay
        else:
            launch = inst.master.clk_to_q
        arrival[s] = min(arrival[s], launch)

    for u in graph.topo_order:
        if arrival[u] == math.inf:
            continue
        au = arrival[u]
        for v, kind, payload in graph.arcs[u]:
            candidate = au + analyzer._arc_delay(u, v, kind, payload)
            if candidate < arrival[v]:
                arrival[v] = candidate

    wns = math.inf
    tns = 0.0
    endpoint_slacks: Dict[int, float] = {}
    for e in graph.endpoints:
        inst, _pin = graph.info(e)
        if inst is None or not inst.master.is_sequential:
            continue
        if arrival[e] == math.inf:
            continue
        requirement = inst.master.hold_time + analyzer.clock_uncertainty
        slack = arrival[e] - requirement
        endpoint_slacks[e] = slack
        wns = min(wns, slack)
        if slack < 0:
            tns += slack
    if wns == math.inf:
        wns = 0.0
    return HoldReport(wns=wns, tns=tns, endpoint_slacks=endpoint_slacks)
