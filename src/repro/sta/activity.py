"""Vectorless switching-activity propagation (findClkedActivity substitute).

Primary inputs receive a default toggle rate; activity propagates
forward through the levelized timing graph with a per-cell-class
attenuation factor (inverters pass activity through, wide logic
attenuates, sequential outputs re-time to a fixed register activity).
The result is written onto ``Net.switching_activity`` — the theta_e of
the paper's switching cost (Eq. 2).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.sta.graph import TimingGraph

#: Activity transfer factor per cell class: output toggle rate as a
#: fraction of the mean input toggle rate.
TRANSFER_FACTORS: Dict[str, float] = {
    "inv": 1.0,
    "buf": 1.0,
    "logic": 0.62,
    "arith": 0.88,
    "mux": 0.70,
    "seq": 0.0,  # sequential outputs use REGISTER_ACTIVITY instead
    "macro": 0.0,
    "io": 1.0,
}

#: Toggle rate assumed at sequential (FF / macro) outputs.
REGISTER_ACTIVITY = 0.20

#: Floor so deep logic cones never decay to exactly zero.
ACTIVITY_FLOOR = 0.005


def propagate_activity(
    graph: TimingGraph,
    default_input_activity: float = 0.1,
) -> Dict[int, float]:
    """Propagate switching activity; returns net index -> activity.

    Also annotates every net's ``switching_activity`` in place and
    returns the map for convenience.  Clock nets get the full clock
    toggle rate of 1.0.
    """
    design = graph.design
    n = graph.num_nodes
    activity = [0.0] * n

    for s in graph.startpoints:
        inst, _pin = graph.info(s)
        if inst is None:
            activity[s] = default_input_activity
        else:
            activity[s] = REGISTER_ACTIVITY

    # Mean-input accumulation per combinational output node.
    input_sum = [0.0] * n
    input_cnt = [0] * n
    for u in graph.topo_order:
        a_u = activity[u]
        for v, kind, _payload in graph.arcs[u]:
            if kind == TimingGraph.WIRE:
                # Wires carry activity unchanged.
                if a_u > activity[v]:
                    activity[v] = a_u
            else:  # cell arc: accumulate for mean at output
                input_sum[v] += a_u
                input_cnt[v] += 1
                inst, _pin = graph.info(v)
                factor = TRANSFER_FACTORS.get(inst.master.cell_class, 0.6)
                mean_in = input_sum[v] / input_cnt[v]
                activity[v] = max(ACTIVITY_FLOOR, factor * mean_in)

    net_activity: Dict[int, float] = {}
    for net in design.nets:
        if net.is_clock:
            net.switching_activity = 1.0
            net_activity[net.index] = 1.0
            continue
        if net.driver is None:
            continue
        node = graph.node_for_ref(net.driver)
        a = max(ACTIVITY_FLOOR, activity[node])
        if math.isnan(a):  # pragma: no cover - defensive
            a = ACTIVITY_FLOOR
        net.switching_activity = a
        net_activity[net.index] = a
    return net_activity
