"""Vectorless switching-activity propagation (findClkedActivity substitute).

Primary inputs receive a default toggle rate; activity propagates
forward through the levelized timing graph with a per-cell-class
attenuation factor (inverters pass activity through, wide logic
attenuates, sequential outputs re-time to a fixed register activity).
The result is written onto ``Net.switching_activity`` — the theta_e of
the paper's switching cost (Eq. 2).
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.sta.graph import TimingGraph

#: Activity transfer factor per cell class: output toggle rate as a
#: fraction of the mean input toggle rate.
TRANSFER_FACTORS: Dict[str, float] = {
    "inv": 1.0,
    "buf": 1.0,
    "logic": 0.62,
    "arith": 0.88,
    "mux": 0.70,
    "seq": 0.0,  # sequential outputs use REGISTER_ACTIVITY instead
    "macro": 0.0,
    "io": 1.0,
}

#: Toggle rate assumed at sequential (FF / macro) outputs.
REGISTER_ACTIVITY = 0.20

#: Floor so deep logic cones never decay to exactly zero.
ACTIVITY_FLOOR = 0.005


def propagate_activity(
    graph: TimingGraph,
    default_input_activity: float = 0.1,
    vectorize: bool = True,
) -> Dict[int, float]:
    """Propagate switching activity; returns net index -> activity.

    Also annotates every net's ``switching_activity`` in place and
    returns the map for convenience.  Clock nets get the full clock
    toggle rate of 1.0.

    Vectorized over the flat compilation by default (bit-identical to
    the scalar reference: the mean-input sums accumulate with
    ``np.add.at`` in the scalar visitation order).
    """
    from repro.sta.flat import flat_for

    flat = flat_for(graph) if vectorize else None
    if flat is not None and not flat.mixed_input_kinds:
        return _propagate_activity_flat(graph, flat, default_input_activity)
    return _propagate_activity_scalar(graph, default_input_activity)


def _propagate_activity_flat(
    graph: TimingGraph, flat, default_input_activity: float
) -> Dict[int, float]:
    """Wave-sliced activity propagation (see module docstring)."""
    design = graph.design
    n = flat.num_nodes
    # One extra slot: virtual node for driver pins absent from the
    # graph (zero activity, floored to ACTIVITY_FLOOR below).
    act = np.zeros(n + 1, dtype=np.float64)
    if len(flat.s_nodes):
        act[flat.s_nodes] = np.where(
            flat.s_isport, default_input_activity, REGISTER_ACTIVITY
        )
    insum = np.zeros(n, dtype=np.float64)
    fsrc = flat.f_src
    fdst = flat.f_dst
    fwire = flat.f_iswire
    for lvl in range(1, flat.max_level + 1):
        a0 = flat.wave_f[lvl]
        a1 = flat.wave_f[lvl + 1]
        if a0 == a1:
            continue
        wire = fwire[a0:a1]
        wsl = np.flatnonzero(wire) + a0
        if len(wsl):
            np.maximum.at(act, fdst[wsl], act[fsrc[wsl]])
        csl = np.flatnonzero(~wire) + a0
        if len(csl):
            cdst = fdst[csl]
            # add.at accumulates sequentially in array order — the fwd
            # order within a dst is (rank(src), creation), the scalar
            # accumulation order.
            np.add.at(insum, cdst, act[fsrc[csl]])
            vs = np.unique(cdst)
            act[vs] = np.maximum(
                ACTIVITY_FLOOR,
                flat.act_factor[vs] * (insum[vs] / flat.cell_in_cnt[vs]),
            )
    net_act = np.maximum(ACTIVITY_FLOOR, act[flat.drv_node])
    vals = np.where(flat.net_is_clock, 1.0, net_act).tolist()
    net_activity: Dict[int, float] = {}
    for net in design.nets:
        if net.is_clock:
            net.switching_activity = 1.0
            net_activity[net.index] = 1.0
            continue
        if net.driver is None:
            continue
        a = vals[net.index]
        if math.isnan(a):  # pragma: no cover - defensive
            a = ACTIVITY_FLOOR
        net.switching_activity = a
        net_activity[net.index] = a
    return net_activity


def _propagate_activity_scalar(
    graph: TimingGraph,
    default_input_activity: float = 0.1,
) -> Dict[int, float]:
    """Scalar reference propagation (ground truth for the flat path)."""
    design = graph.design
    n = graph.num_nodes
    activity = [0.0] * n

    for s in graph.startpoints:
        inst, _pin = graph.info(s)
        if inst is None:
            activity[s] = default_input_activity
        else:
            activity[s] = REGISTER_ACTIVITY

    # Mean-input accumulation per combinational output node.
    input_sum = [0.0] * n
    input_cnt = [0] * n
    for u in graph.topo_order:
        a_u = activity[u]
        for v, kind, _payload in graph.arcs[u]:
            if kind == TimingGraph.WIRE:
                # Wires carry activity unchanged.
                if a_u > activity[v]:
                    activity[v] = a_u
            else:  # cell arc: accumulate for mean at output
                input_sum[v] += a_u
                input_cnt[v] += 1
                inst, _pin = graph.info(v)
                factor = TRANSFER_FACTORS.get(inst.master.cell_class, 0.6)
                mean_in = input_sum[v] / input_cnt[v]
                activity[v] = max(ACTIVITY_FLOOR, factor * mean_in)

    net_activity: Dict[int, float] = {}
    for net in design.nets:
        if net.is_clock:
            net.switching_activity = 1.0
            net_activity[net.index] = 1.0
            continue
        if net.driver is None:
            continue
        node = graph.node_for_ref(net.driver)
        a = max(ACTIVITY_FLOOR, activity[node])
        if math.isnan(a):  # pragma: no cover - defensive
            a = ACTIVITY_FLOOR
        net.switching_activity = a
        net_activity[net.index] = a
    return net_activity
