"""Arrival / required / slack propagation.

Single-clock setup analysis, matching how the paper's flow consumes
OpenSTA: launch at FF Q (clock edge at t=0 plus clk-to-q), capture at
FF D (next edge minus setup) and at output ports, worst-slack
propagation over the levelized graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import telemetry
from repro.netlist.design import Instance, Net, PinRef
from repro.sta.delay import WireDelayModel, effective_cell_delay
from repro.sta.graph import TimingGraph

#: Clock period used when the design is unconstrained (effectively
#: infinite, so all slacks come out large and positive).
UNCONSTRAINED_PERIOD = 1e6


@dataclass
class TimingReport:
    """Results of one timing update.

    Attributes:
        wns: Worst negative slack over all endpoints (ns; positive when
            all constraints are met).
        tns: Total negative slack (ns; 0 when nothing fails).
        endpoint_slacks: Node id -> slack for every endpoint.
        arrival: Per-node arrival times (-inf where unreachable).
        required: Per-node required times (+inf where unconstrained).
        worst_pred: Per-node predecessor on the worst arrival path,
            used for critical-path backtracking.
    """

    wns: float
    tns: float
    endpoint_slacks: Dict[int, float] = field(default_factory=dict)
    arrival: List[float] = field(default_factory=list)
    required: List[float] = field(default_factory=list)
    worst_pred: List[int] = field(default_factory=list)

    @property
    def num_failing(self) -> int:
        """Number of endpoints with negative slack."""
        return sum(1 for s in self.endpoint_slacks.values() if s < 0)


class TimingAnalyzer:
    """Propagates timing over a :class:`TimingGraph`.

    The analyzer is cheap to re-run after the placement moves: the
    graph is static, only the wire model's geometry answers change.
    """

    def __init__(
        self,
        graph: TimingGraph,
        wire_model: WireDelayModel,
        clock_uncertainty: float = 0.0,
    ) -> None:
        self.graph = graph
        self.wire_model = wire_model
        self.design = graph.design
        #: Uniform clock uncertainty (e.g. the CTS skew) subtracted
        #: from every endpoint's required time (ns).
        self.clock_uncertainty = clock_uncertainty
        self.report: Optional[TimingReport] = None
        self._net_loads: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _clock_period(self) -> float:
        period = self.design.clock_period
        return period if period is not None else UNCONSTRAINED_PERIOD

    def _arc_delay(self, u: int, v: int, kind: str, payload: object) -> float:
        """Delay of one timing arc (ns)."""
        if kind == TimingGraph.WIRE:
            net: Net = payload  # type: ignore[assignment]
            inst, pin = self.graph.info(v)
            sink = PinRef(inst, pin)
            return self.wire_model.wire_delay(net, sink)
        # Cell arc: linear delay model on the driving output pin,
        # with virtual buffering of large loads.
        inst: Instance = payload  # type: ignore[no-redef]
        _out_inst, out_pin = self.graph.info(v)
        net = inst.net_on(out_pin)
        if net is not None:
            load = self._net_loads.get(net.index)
            if load is None:
                load = self.wire_model.net_load(net)
                self._net_loads[net.index] = load
        else:
            load = 0.0
        master = inst.master
        return effective_cell_delay(
            master.intrinsic_delay, master.drive_resistance, load
        )

    def _startpoint_arrival(self, node: int) -> float:
        """Launch time at a startpoint."""
        inst, pin = self.graph.info(node)
        if inst is None:
            return 0.0  # input port (no explicit input delay by default)
        return inst.master.clk_to_q  # sequential Q launch

    def _endpoint_required(self, node: int, period: float) -> float:
        """Capture requirement at an endpoint."""
        inst, pin = self.graph.info(node)
        if inst is None:
            return period - self.clock_uncertainty  # output port
        # Sequential D-type input.
        return period - inst.master.setup_time - self.clock_uncertainty

    # ------------------------------------------------------------------
    def update(self) -> TimingReport:
        """Run full arrival/required propagation; returns the report.

        Each update also appends one point to the ``sta.wns`` /
        ``sta.tns`` telemetry streams (auto-stepped, so repeated
        updates — e.g. pre/post optimisation — trace a trajectory).
        """
        with telemetry.span("sta.update", nodes=self.graph.num_nodes):
            report = self._update()
        telemetry.observe("sta.wns", report.wns)
        telemetry.observe("sta.tns", report.tns)
        telemetry.observe("sta.failing_endpoints", report.num_failing)
        return report

    def _update(self) -> TimingReport:
        graph = self.graph
        n = graph.num_nodes
        period = self._clock_period()
        # Net loads depend only on the current geometry: cache them for
        # the duration of this update (cleared on every update so the
        # analyzer stays safe to re-run after placement moves).
        self._net_loads = {}

        arrival = [-math.inf] * n
        worst_pred = [-1] * n
        for s in graph.startpoints:
            arrival[s] = max(arrival[s], self._startpoint_arrival(s))

        for u in graph.topo_order:
            if arrival[u] == -math.inf:
                continue
            au = arrival[u]
            for v, kind, payload in graph.arcs[u]:
                candidate = au + self._arc_delay(u, v, kind, payload)
                if candidate > arrival[v]:
                    arrival[v] = candidate
                    worst_pred[v] = u

        required = [math.inf] * n
        endpoint_slacks: Dict[int, float] = {}
        for e in graph.endpoints:
            required[e] = min(required[e], self._endpoint_required(e, period))

        for v in reversed(graph.topo_order):
            rv = required[v]
            if rv == math.inf:
                continue
            for u, kind, payload in graph.preds[v]:
                candidate = rv - self._arc_delay(u, v, kind, payload)
                if candidate < required[u]:
                    required[u] = candidate

        wns = math.inf
        tns = 0.0
        for e in graph.endpoints:
            if arrival[e] == -math.inf:
                continue  # unreachable endpoint: unconstrained
            slack = required[e] - arrival[e]
            endpoint_slacks[e] = slack
            wns = min(wns, slack)
            if slack < 0:
                tns += slack
        if wns == math.inf:
            wns = period  # no constrained endpoints at all

        self.report = TimingReport(
            wns=wns,
            tns=tns,
            endpoint_slacks=endpoint_slacks,
            arrival=arrival,
            required=required,
            worst_pred=worst_pred,
        )
        return self.report

    # ------------------------------------------------------------------
    def net_slacks(self) -> Dict[int, float]:
        """Worst slack over each net's arcs (net index -> slack).

        The PPA-aware clustering uses these to weight hyperedges by
        timing criticality.
        """
        if self.report is None:
            self.update()
        report = self.report
        assert report is not None
        slacks: Dict[int, float] = {}
        graph = self.graph
        for u in range(graph.num_nodes):
            au = report.arrival[u]
            if au == -math.inf:
                continue
            for v, kind, payload in graph.arcs[u]:
                if kind != TimingGraph.WIRE:
                    continue
                rv = report.required[v]
                if rv == math.inf:
                    continue
                delay = self._arc_delay(u, v, kind, payload)
                slack = rv - (au + delay)
                net: Net = payload  # type: ignore[assignment]
                previous = slacks.get(net.index)
                if previous is None or slack < previous:
                    slacks[net.index] = slack
        return slacks
