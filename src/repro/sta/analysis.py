"""Arrival / required / slack propagation.

Single-clock setup analysis, matching how the paper's flow consumes
OpenSTA: launch at FF Q (clock edge at t=0 plus clk-to-q), capture at
FF D (next edge minus setup) and at output ports, worst-slack
propagation over the levelized graph.

Two propagation engines share the same semantics:

* a scalar reference (``_update_scalar``) — per-arc Python loops, kept
  as the ground truth and as the fallback for custom wire models;
* a vectorized engine over the :mod:`repro.sta.flat` compilation —
  wave-sliced NumPy kernels, bit-identical to the scalar reference
  (asserted in tests), used for the built-in wire models.

The analyzer also supports *incremental* updates: after
:meth:`TimingAnalyzer.invalidate_nets`, the next :meth:`update` only
re-evaluates the affected cone (levelized forward/backward worklists
seeded at the dirty nets' arcs) instead of the whole graph, recording
the arcs it skipped in the ``sta.incremental.*`` perf counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro import perf, telemetry
from repro.netlist.design import Instance, Net, PinRef
from repro.sta.delay import FanoutWireModel, WireDelayModel, effective_cell_delay
from repro.sta.flat import FlatTiming, _gather_ranges, flat_for
from repro.sta.graph import TimingGraph, timing_graph_for

#: Clock period used when the design is unconstrained (effectively
#: infinite, so all slacks come out large and positive).
UNCONSTRAINED_PERIOD = 1e6


@dataclass
class TimingReport:
    """Results of one timing update.

    Attributes:
        wns: Worst negative slack over all endpoints (ns; positive when
            all constraints are met).
        tns: Total negative slack (ns; 0 when nothing fails).
        endpoint_slacks: Node id -> slack for every endpoint.
        arrival: Per-node arrival times (-inf where unreachable).
        required: Per-node required times (+inf where unconstrained).
        worst_pred: Per-node predecessor on the worst arrival path,
            used for critical-path backtracking.
    """

    wns: float
    tns: float
    endpoint_slacks: Dict[int, float] = field(default_factory=dict)
    arrival: List[float] = field(default_factory=list)
    required: List[float] = field(default_factory=list)
    worst_pred: List[int] = field(default_factory=list)

    @property
    def num_failing(self) -> int:
        """Number of endpoints with negative slack."""
        return sum(1 for s in self.endpoint_slacks.values() if s < 0)


class _FlatState:
    """Arrays carried between updates for incremental re-propagation."""

    __slots__ = (
        "sig",
        "period",
        "uncertainty",
        "delay",
        "delay_f",
        "delay_b",
        "net_wl",
        "net_hpwl",
        "net_load",
        "arrival",
        "required",
        "wp",
        "init_req",
    )


class TimingAnalyzer:
    """Propagates timing over a :class:`TimingGraph`.

    The analyzer is cheap to re-run after the placement moves: the
    graph is static, only the wire model's geometry answers change.
    """

    def __init__(
        self,
        graph: TimingGraph,
        wire_model: WireDelayModel,
        clock_uncertainty: float = 0.0,
        vectorize: bool = True,
    ) -> None:
        self.graph = graph
        self.wire_model = wire_model
        self.design = graph.design
        #: Uniform clock uncertainty (e.g. the CTS skew) subtracted
        #: from every endpoint's required time (ns).
        self.clock_uncertainty = clock_uncertainty
        #: When False, always use the scalar reference propagation.
        self.vectorize = vectorize
        self.report: Optional[TimingReport] = None
        self._net_loads: Dict[int, float] = {}
        #: Pending dirty-net set; None means "everything dirty" (the
        #: next update is a full update, which is also the default so
        #: that plain update() calls keep their original semantics).
        self._dirty: Optional[set] = None
        self._state: Optional[_FlatState] = None
        #: Structure fingerprint of the design the graph was compiled
        #: from; when it drifts (an ECO added/removed nets or cells)
        #: the next update recompiles the graph instead of propagating
        #: over stale topology.
        self._graph_key: tuple = self.design.structure_key()

    # ------------------------------------------------------------------
    def invalidate_nets(self, nets: Iterable[Union[int, Net]]) -> None:
        """Mark nets whose geometry changed since the last update.

        Arms the incremental path: the next :meth:`update` re-evaluates
        only the timing cone reachable from these nets' arcs, with
        results bit-identical to a full update.  Callers must
        invalidate every net whose wire geometry or load changed (for
        placement-based models: all nets touching a moved instance).
        """
        if self._dirty is None:
            self._dirty = set()
        for net in nets:
            self._dirty.add(net.index if isinstance(net, Net) else int(net))

    # ------------------------------------------------------------------
    def _clock_period(self) -> float:
        period = self.design.clock_period
        return period if period is not None else UNCONSTRAINED_PERIOD

    def _arc_delay(self, u: int, v: int, kind: str, payload: object) -> float:
        """Delay of one timing arc (ns)."""
        if kind == TimingGraph.WIRE:
            net: Net = payload  # type: ignore[assignment]
            inst, pin = self.graph.info(v)
            sink = PinRef(inst, pin)
            return self.wire_model.wire_delay(net, sink)
        # Cell arc: linear delay model on the driving output pin,
        # with virtual buffering of large loads.
        inst: Instance = payload  # type: ignore[no-redef]
        _out_inst, out_pin = self.graph.info(v)
        net = inst.net_on(out_pin)
        if net is not None:
            load = self._net_loads.get(net.index)
            if load is None:
                load = self.wire_model.net_load(net)
                self._net_loads[net.index] = load
        else:
            load = 0.0
        master = inst.master
        return effective_cell_delay(
            master.intrinsic_delay, master.drive_resistance, load
        )

    def _startpoint_arrival(self, node: int) -> float:
        """Launch time at a startpoint."""
        inst, pin = self.graph.info(node)
        if inst is None:
            return 0.0  # input port (no explicit input delay by default)
        return inst.master.clk_to_q  # sequential Q launch

    def _endpoint_required(self, node: int, period: float) -> float:
        """Capture requirement at an endpoint."""
        inst, pin = self.graph.info(node)
        if inst is None:
            return period - self.clock_uncertainty  # output port
        # Sequential D-type input.
        return period - inst.master.setup_time - self.clock_uncertainty

    # ------------------------------------------------------------------
    def update(self) -> TimingReport:
        """Run arrival/required propagation; returns the report.

        Full update by default; incremental (affected-cone only) when
        :meth:`invalidate_nets` was called since the last update.  Each
        update also appends one point to the ``sta.wns`` / ``sta.tns``
        telemetry streams (auto-stepped, so repeated updates — e.g.
        pre/post optimisation — trace a trajectory).
        """
        with telemetry.span("sta.update", nodes=self.graph.num_nodes):
            report = self._update()
        telemetry.observe("sta.wns", report.wns)
        telemetry.observe("sta.tns", report.tns)
        telemetry.observe("sta.failing_endpoints", report.num_failing)
        return report

    def _refresh_graph(self) -> None:
        """Rebind to a freshly compiled graph after a topology edit.

        :meth:`invalidate_nets` covers geometry changes on a fixed
        graph; edits that *change the graph itself* (added / removed
        nets or instances) are detected here by comparing the design's
        structure key against the one the graph was compiled from.  The
        incremental state is dropped and the pending dirty set widened
        to "everything", so the next propagation is a full update over
        the new topology — equivalent to rebuilding the analyzer from
        scratch (asserted by tests/sta/test_incremental_topology.py).
        """
        key = self.design.structure_key()
        if key == self._graph_key:
            return
        self.graph = timing_graph_for(self.design)
        self._graph_key = key
        self._state = None
        self._dirty = None
        perf.count("sta.graph.recompiled")

    def _update(self) -> TimingReport:
        self._refresh_graph()
        dirty = self._dirty
        self._dirty = None
        if not self.vectorize:
            self._state = None
            return self._update_scalar()
        flat = flat_for(self.graph)
        sig = flat.model_signature(self.wire_model)
        if sig is None:
            self._state = None
            return self._update_scalar()
        period = self._clock_period()
        state = self._state
        if (
            dirty is not None
            and state is not None
            and state.sig == sig
            and state.period == period
            and state.uncertainty == self.clock_uncertainty
        ):
            return self._update_incremental(flat, state, dirty)
        return self._update_vectorized(flat, sig, period)

    # -- scalar reference ----------------------------------------------
    def _update_scalar(self) -> TimingReport:
        graph = self.graph
        n = graph.num_nodes
        period = self._clock_period()
        # Net loads depend only on the current geometry: cache them for
        # the duration of this update (cleared on every update so the
        # analyzer stays safe to re-run after placement moves).
        self._net_loads = {}

        arrival = [-math.inf] * n
        worst_pred = [-1] * n
        for s in graph.startpoints:
            arrival[s] = max(arrival[s], self._startpoint_arrival(s))

        for u in graph.topo_order:
            if arrival[u] == -math.inf:
                continue
            au = arrival[u]
            for v, kind, payload in graph.arcs[u]:
                candidate = au + self._arc_delay(u, v, kind, payload)
                if candidate > arrival[v]:
                    arrival[v] = candidate
                    worst_pred[v] = u

        required = [math.inf] * n
        endpoint_slacks: Dict[int, float] = {}
        for e in graph.endpoints:
            required[e] = min(required[e], self._endpoint_required(e, period))

        for v in reversed(graph.topo_order):
            rv = required[v]
            if rv == math.inf:
                continue
            for u, kind, payload in graph.preds[v]:
                candidate = rv - self._arc_delay(u, v, kind, payload)
                if candidate < required[u]:
                    required[u] = candidate

        wns = math.inf
        tns = 0.0
        for e in graph.endpoints:
            if arrival[e] == -math.inf:
                continue  # unreachable endpoint: unconstrained
            slack = required[e] - arrival[e]
            endpoint_slacks[e] = slack
            wns = min(wns, slack)
            if slack < 0:
                tns += slack
        if wns == math.inf:
            wns = period  # no constrained endpoints at all

        self.report = TimingReport(
            wns=wns,
            tns=tns,
            endpoint_slacks=endpoint_slacks,
            arrival=arrival,
            required=required,
            worst_pred=worst_pred,
        )
        return self.report

    # -- vectorized full update ----------------------------------------
    def _geometry(self, flat: FlatTiming):
        """(inst_x, inst_y) when the model needs coordinates."""
        if type(self.wire_model) is FanoutWireModel:
            return None, None
        return flat.instance_coords()

    def _update_vectorized(
        self, flat: FlatTiming, sig: tuple, period: float
    ) -> TimingReport:
        model = self.wire_model
        self._net_loads = {}
        inst_x, inst_y = self._geometry(flat)
        net_wl, net_hpwl = flat.wire_net_lengths(model, inst_x, inst_y)
        net_load = flat.net_pincap + model.c_per_um * net_wl
        delay = flat.arc_delays(model, net_load, net_hpwl, inst_x, inst_y)
        delay_f = delay[flat.order_f]
        delay_b = delay[flat.order_b]

        arrival, wp = self._forward_full(flat, delay_f)
        required, init_req = self._backward_full(flat, delay_b, period)

        state = _FlatState()
        state.sig = sig
        state.period = period
        state.uncertainty = self.clock_uncertainty
        state.delay = delay
        state.delay_f = delay_f
        state.delay_b = delay_b
        state.net_wl = net_wl
        state.net_hpwl = net_hpwl
        state.net_load = net_load
        state.arrival = arrival
        state.required = required
        state.wp = wp
        state.init_req = init_req
        self._state = state
        return self._finalize(flat, state, period)

    def _forward_full(self, flat: FlatTiming, delay_f: np.ndarray):
        n = flat.num_nodes
        m = flat.num_arcs
        init = flat.init_arrival
        arrival = init.copy()
        wp = np.full(n, -1, dtype=np.int64)
        fsrc = flat.f_src
        fdst = flat.f_dst
        for lvl in range(1, flat.max_level + 1):
            a0 = flat.wave_f[lvl]
            a1 = flat.wave_f[lvl + 1]
            if a0 == a1:
                continue
            starts = flat.seg_f[flat.wave_seg_f[lvl] : flat.wave_seg_f[lvl + 1]]
            local = starts - a0
            cand = arrival[fsrc[a0:a1]] + delay_f[a0:a1]
            segmax = np.maximum.reduceat(cand, local)
            vs = fdst[starts]
            iv = init[vs]
            counts = np.diff(np.append(starts, a1))
            pos = np.arange(a0, a1)
            hit = np.where(cand == np.repeat(segmax, counts), pos, m)
            first = np.minimum.reduceat(hit, local)
            choose = segmax > iv
            arrival[vs] = np.where(choose, segmax, iv)
            wp[vs] = np.where(choose, fsrc[first], -1)
        return arrival, wp

    def _backward_full(self, flat: FlatTiming, delay_b: np.ndarray, period: float):
        n = flat.num_nodes
        init_req = np.full(n, np.inf)
        if len(flat.e_nodes):
            ereq = (period - flat.e_setup) - self.clock_uncertainty
            np.minimum.at(init_req, flat.e_nodes, ereq)
        required = init_req.copy()
        bsrc = flat.b_src
        bdst = flat.b_dst
        for lvl in range(flat.max_level - 1, -1, -1):
            a0 = flat.wave_b[lvl]
            a1 = flat.wave_b[lvl + 1]
            if a0 == a1:
                continue
            starts = flat.seg_b[flat.wave_seg_b[lvl] : flat.wave_seg_b[lvl + 1]]
            local = starts - a0
            cand = required[bdst[a0:a1]] - delay_b[a0:a1]
            segmin = np.minimum.reduceat(cand, local)
            us = bsrc[starts]
            required[us] = np.minimum(init_req[us], segmin)
        return required, init_req

    def _finalize(
        self, flat: FlatTiming, state: _FlatState, period: float
    ) -> TimingReport:
        arrival = state.arrival
        required = state.required
        endpoint_slacks: Dict[int, float] = {}
        wns = math.inf
        tns = 0.0
        e = flat.e_nodes
        if len(e):
            arr_e = arrival[e]
            reach = arr_e != -np.inf
            slack = required[e] - arr_e
            kept = slack[reach]
            if len(kept):
                wns = float(kept.min())
                neg = kept[kept < 0]
                if len(neg):
                    tns = float(np.cumsum(neg)[-1])
            endpoint_slacks = dict(zip(e[reach].tolist(), kept.tolist()))
        if wns == math.inf:
            wns = period  # no constrained endpoints at all
        self.report = TimingReport(
            wns=wns,
            tns=tns,
            endpoint_slacks=endpoint_slacks,
            arrival=arrival.tolist(),
            required=required.tolist(),
            worst_pred=state.wp.tolist(),
        )
        return self.report

    # -- incremental update --------------------------------------------
    def _update_incremental(
        self, flat: FlatTiming, state: _FlatState, dirty: set
    ) -> TimingReport:
        perf.count("sta.incremental.updates")
        model = self.wire_model
        m = flat.num_arcs
        nets = np.asarray(sorted(dirty), dtype=np.int64)
        nets = nets[(nets >= 0) & (nets < flat.num_nets)]
        evaluated = 0
        if len(nets):
            inst_x, inst_y = self._subset_coords(flat, nets)
            wl, hp = flat.wire_net_lengths(model, inst_x, inst_y, nets)
            state.net_wl[nets] = wl
            if state.net_hpwl is not None:
                state.net_hpwl[nets] = hp if hp is not None else wl
            state.net_load[nets] = (
                flat.net_pincap[nets] + model.c_per_um * wl
            )
            warcs = flat.wnet_arcs[
                _gather_ranges(
                    flat.wnet_indptr[nets],
                    flat.wnet_indptr[nets + 1] - flat.wnet_indptr[nets],
                )
            ]
            carcs = flat.lnet_arcs[
                _gather_ranges(
                    flat.lnet_indptr[nets],
                    flat.lnet_indptr[nets + 1] - flat.lnet_indptr[nets],
                )
            ]
            affected = np.concatenate((warcs, carcs))
        else:
            affected = np.empty(0, dtype=np.int64)
        if len(affected):
            new_delay = flat.arc_delays(
                model,
                state.net_load,
                state.net_hpwl,
                inst_x,
                inst_y,
                arcs=affected,
            )
            state.delay[affected] = new_delay
            state.delay_f[flat.inv_f[affected]] = new_delay
            state.delay_b[flat.inv_b[affected]] = new_delay
            evaluated += self._forward_worklist(flat, state, affected)
            evaluated += self._backward_worklist(flat, state, affected)
        perf.count("sta.incremental.arcs_evaluated", evaluated)
        perf.count("sta.incremental.arcs_skipped", max(0, 2 * m - evaluated))
        return self._finalize(flat, state, state.period)

    def _subset_coords(self, flat: FlatTiming, nets: np.ndarray):
        """Sparse instance coordinates: only dirty nets' pins filled."""
        if type(self.wire_model) is FanoutWireModel:
            return None, None
        instances = self.design.instances
        inst_x = np.zeros(len(instances))
        inst_y = np.zeros(len(instances))
        starts = flat.pin_indptr[nets]
        counts = flat.pin_indptr[nets + 1] - starts
        pins = _gather_ranges(starts, counts)
        touched = np.unique(flat.pin_inst[pins])
        for i in touched.tolist():
            if i >= 0:
                inst = instances[i]
                inst_x[i] = inst.x
                inst_y[i] = inst.y
        return inst_x, inst_y

    @staticmethod
    def _bucket_by_level(
        nodes: np.ndarray,
        level: np.ndarray,
        pending: np.ndarray,
        buckets: List[List[np.ndarray]],
    ) -> None:
        """Queue not-yet-pending nodes into their per-level buckets."""
        fresh = nodes[~pending[nodes]]
        if not len(fresh):
            return
        pending[fresh] = True
        lv = level[fresh]
        order = np.argsort(lv, kind="stable")
        fresh = fresh[order]
        lv = lv[order]
        cuts = np.flatnonzero(np.concatenate(([True], lv[1:] != lv[:-1])))
        for i, c in enumerate(cuts):
            end = cuts[i + 1] if i + 1 < len(cuts) else len(fresh)
            buckets[lv[c]].append(fresh[c:end])

    def _forward_worklist(
        self, flat: FlatTiming, state: _FlatState, affected: np.ndarray
    ) -> int:
        arrival = state.arrival
        wp = state.wp
        init = flat.init_arrival
        level = flat.level
        fsrc = flat.f_src
        df = state.delay_f
        m = flat.num_arcs
        evaluated = 0
        pending = np.zeros(flat.num_nodes, dtype=bool)
        buckets: List[List[np.ndarray]] = [[] for _ in range(flat.max_level + 1)]
        self._bucket_by_level(
            np.unique(flat.a_dst[affected]), level, pending, buckets
        )
        for lvl in range(1, flat.max_level + 1):
            chunk = buckets[lvl]
            if not chunk:
                continue
            vs = np.concatenate(chunk) if len(chunk) > 1 else chunk[0]
            pending[vs] = False
            starts = flat.pred_start[vs]
            counts = flat.pred_end[vs] - starts
            idx = _gather_ranges(starts, counts)
            evaluated += len(idx)
            # Recompute from the full pred slice — identical semantics
            # (and tie-break) to one wave of the full forward sweep.
            cand = arrival[fsrc[idx]] + df[idx]
            loc = np.concatenate(([0], np.cumsum(counts)))[:-1]
            segmax = np.maximum.reduceat(cand, loc)
            hit = np.where(cand == np.repeat(segmax, counts), idx, m)
            first = np.minimum.reduceat(hit, loc)
            iv = init[vs]
            choose = segmax > iv
            new = np.where(choose, segmax, iv)
            wp[vs] = np.where(choose, fsrc[first], -1)
            changed = vs[new != arrival[vs]]
            arrival[vs] = new
            if len(changed):
                ss = flat.succ_start[changed]
                sc = flat.succ_end[changed] - ss
                succ = flat.b_dst[_gather_ranges(ss, sc)]
                if len(succ):
                    self._bucket_by_level(
                        np.unique(succ), level, pending, buckets
                    )
        return evaluated

    def _backward_worklist(
        self, flat: FlatTiming, state: _FlatState, affected: np.ndarray
    ) -> int:
        required = state.required
        init_req = state.init_req
        level = flat.level
        bdst = flat.b_dst
        db = state.delay_b
        evaluated = 0
        pending = np.zeros(flat.num_nodes, dtype=bool)
        buckets: List[List[np.ndarray]] = [[] for _ in range(flat.max_level + 1)]
        self._bucket_by_level(
            np.unique(flat.a_src[affected]), level, pending, buckets
        )
        for lvl in range(flat.max_level, -1, -1):
            chunk = buckets[lvl]
            if not chunk:
                continue
            us = np.concatenate(chunk) if len(chunk) > 1 else chunk[0]
            pending[us] = False
            starts = flat.succ_start[us]
            counts = flat.succ_end[us] - starts
            idx = _gather_ranges(starts, counts)
            evaluated += len(idx)
            cand = required[bdst[idx]] - db[idx]
            loc = np.concatenate(([0], np.cumsum(counts)))[:-1]
            segmin = np.minimum.reduceat(cand, loc)
            new = np.minimum(init_req[us], segmin)
            changed = us[new != required[us]]
            required[us] = new
            if len(changed):
                ps = flat.pred_start[changed]
                pc = flat.pred_end[changed] - ps
                pred = flat.f_src[_gather_ranges(ps, pc)]
                if len(pred):
                    self._bucket_by_level(
                        np.unique(pred), level, pending, buckets
                    )
        return evaluated

    # ------------------------------------------------------------------
    def net_slacks(self) -> Dict[int, float]:
        """Worst slack over each net's arcs (net index -> slack).

        The PPA-aware clustering uses these to weight hyperedges by
        timing criticality.
        """
        if self.report is None:
            self.update()
        report = self.report
        assert report is not None
        slacks: Dict[int, float] = {}
        graph = self.graph
        for u in range(graph.num_nodes):
            au = report.arrival[u]
            if au == -math.inf:
                continue
            for v, kind, payload in graph.arcs[u]:
                if kind != TimingGraph.WIRE:
                    continue
                rv = report.required[v]
                if rv == math.inf:
                    continue
                delay = self._arc_delay(u, v, kind, payload)
                slack = rv - (au + delay)
                net: Net = payload  # type: ignore[assignment]
                previous = slacks.get(net.index)
                if previous is None or slack < previous:
                    slacks[net.index] = slack
        return slacks
