"""Vectorless power analysis.

Total power = switching + internal + leakage (+ clock network), the
metric reported in the paper's Tables 3-6.

* switching: ``0.5 * Vdd^2 * f * sum_nets(activity * C_net)``
* internal:  ``f * sum_cells(internal_energy * output_activity)``
* leakage:   ``sum_cells(leakage_power)``
* clock:     switching power of the CTS network (wire + buffers at
  activity 1.0), supplied by the router/CTS stage.

Units: Vdd in volts, f in GHz (1/ns), capacitance in fF, energy in fJ;
the products come out in mW after the 1e-3 factors cancel (fF * V^2 *
GHz = fJ/ns * 1e-3 = uW... we carry an explicit factor, see code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netlist.design import Design
from repro.sta.delay import WireDelayModel

#: Supply voltage (V), NanGate45 nominal.
VDD = 1.1

#: fF * V^2 * GHz = 1e-15 F * V^2 * 1e9 Hz = 1e-6 W = 1e-3 mW.
_FF_V2_GHZ_TO_MW = 1e-3


@dataclass
class PowerReport:
    """Power breakdown in mW."""

    switching: float
    internal: float
    leakage: float
    clock: float

    @property
    def total(self) -> float:
        """Total power (mW)."""
        return self.switching + self.internal + self.leakage + self.clock


def analyze_power(
    design: Design,
    wire_model: WireDelayModel,
    net_activity: Optional[Dict[int, float]] = None,
    clock_wirelength: float = 0.0,
    clock_buffers: int = 0,
    c_per_um: float = 0.2,
) -> PowerReport:
    """Compute the power report for the current placement/routing state.

    Args:
        design: The design (nets must carry switching activity unless
            ``net_activity`` is given).
        wire_model: Geometry source for net capacitances.
        net_activity: Optional net index -> activity override.
        clock_wirelength: Total CTS wire length (microns).
        clock_buffers: Number of inserted clock buffers.
        c_per_um: Wire capacitance for the clock network (fF/um).
    """
    period = design.clock_period or 1.0
    freq_ghz = 1.0 / period

    switching = 0.0
    for net in design.nets:
        if net.is_clock or net.driver is None:
            continue
        if net_activity is not None:
            activity = net_activity.get(net.index, net.switching_activity)
        else:
            activity = net.switching_activity
        cap = wire_model.net_load(net)
        switching += 0.5 * activity * cap
    switching *= VDD * VDD * freq_ghz * _FF_V2_GHZ_TO_MW

    internal = 0.0
    leakage = 0.0
    for inst in design.instances:
        master = inst.master
        leakage += master.leakage_power
        out_activity = 0.0
        for pin in master.output_pins():
            net = inst.net_on(pin.name)
            if net is not None:
                out_activity = max(out_activity, net.switching_activity)
        if master.is_sequential:
            # Sequential cells burn internal power on every clock edge.
            out_activity = max(out_activity, 1.0)
        internal += master.internal_energy * out_activity
    internal *= freq_ghz * _FF_V2_GHZ_TO_MW

    # Clock network: full-rate switching on the CTS wire capacitance
    # plus per-buffer energy, plus CK pin caps of the sinks.
    ck_pin_cap = 0.0
    for inst in design.sequential_instances():
        clock_pin = inst.master.clock_pin()
        if clock_pin is not None:
            ck_pin_cap += clock_pin.capacitance
    clock_cap = c_per_um * clock_wirelength + ck_pin_cap
    buffer_energy = 2.0 * clock_buffers  # fJ per buffer per edge
    clock = (
        (0.5 * 1.0 * clock_cap * VDD * VDD + buffer_energy)
        * freq_ghz
        * _FF_V2_GHZ_TO_MW
    )

    return PowerReport(
        switching=switching, internal=internal, leakage=leakage, clock=clock
    )
