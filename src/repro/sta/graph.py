"""Timing graph construction and levelization.

Nodes are pins (instance pins and top-level ports); arcs are

* cell arcs: input pin -> output pin of a combinational cell,
* wire arcs: driver pin -> each sink pin of a net.

Clock pins are not modelled as nodes: sequential Q pins are path
*startpoints* whose launch time (clock edge + clk-to-q) the analyzer
applies directly, which is equivalent to an explicit CK -> Q launch arc
under the single-clock, zero-insertion-delay model (CTS skew enters as
clock uncertainty at the endpoints).

Sequential D-type inputs and output ports are path endpoints; input
ports and sequential Q outputs are path startpoints.  The generator
guarantees combinational acyclicity, and :meth:`TimingGraph.levelize`
verifies it (raising on a combinational loop, as OpenSTA would flag).
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.netlist.design import Design, Instance, Net, PinDirection, PinRef


class TimingGraph:
    """A levelized pin-level timing graph for one design.

    Attributes:
        design: The source design.
        num_nodes: Number of pin nodes.
        arcs: Forward adjacency: ``arcs[u]`` is a list of
            ``(v, kind, payload)`` where kind is ``"cell"`` (payload:
            the driving Instance) or ``"wire"`` (payload: the Net).
        preds: Reverse adjacency mirroring ``arcs``.
        startpoints: Node ids where timing paths begin.
        endpoints: Node ids where timing paths end.
        topo_order: Node ids in topological order (after levelize()).
    """

    CELL = "cell"
    WIRE = "wire"

    def __init__(self, design: Design) -> None:
        self.design = design
        self._node_of: Dict[Tuple[Optional[int], str], int] = {}
        self._node_info: List[Tuple[Optional[Instance], str]] = []
        self.arcs: List[List[Tuple[int, str, object]]] = []
        self.preds: List[List[Tuple[int, str, object]]] = []
        self.startpoints: List[int] = []
        self.endpoints: List[int] = []
        self.topo_order: List[int] = []
        self._build()

    # ------------------------------------------------------------------
    def node(self, inst: Optional[Instance], pin_name: str) -> int:
        """Get or create the node id for an instance pin / port."""
        key = (inst.index if inst is not None else None, pin_name)
        node_id = self._node_of.get(key)
        if node_id is None:
            node_id = len(self._node_info)
            self._node_of[key] = node_id
            self._node_info.append((inst, pin_name))
            self.arcs.append([])
            self.preds.append([])
        return node_id

    def node_for_ref(self, ref: PinRef) -> int:
        """Node id for a :class:`PinRef`."""
        return self.node(ref.instance, ref.pin_name)

    def info(self, node_id: int) -> Tuple[Optional[Instance], str]:
        """(instance, pin name) of a node; instance None for ports."""
        return self._node_info[node_id]

    def node_name(self, node_id: int) -> str:
        """Human-readable pin name, e.g. ``u_a/U3.Y`` or port name."""
        inst, pin = self._node_info[node_id]
        if inst is None:
            return pin
        return f"{inst.name}.{pin}"

    @property
    def num_nodes(self) -> int:
        """Number of pin nodes."""
        return len(self._node_info)

    # ------------------------------------------------------------------
    def _add_arc(self, u: int, v: int, kind: str, payload: object) -> None:
        self.arcs[u].append((v, kind, payload))
        self.preds[v].append((u, kind, payload))

    def _build(self) -> None:
        design = self.design
        # Create nodes for every port so they exist even when floating.
        for name in design.ports:
            self.node(None, name)
        # Wire arcs.
        for net in design.nets:
            if net.driver is None or net.is_clock:
                continue
            u = self.node_for_ref(net.driver)
            for sink in net.sinks:
                v = self.node_for_ref(sink)
                self._add_arc(u, v, self.WIRE, net)

        # Cell arcs.
        for inst in design.instances:
            master = inst.master
            outputs = [
                p.name
                for p in master.output_pins()
                if inst.net_on(p.name) is not None
            ]
            if master.is_sequential:
                # Q pins launch paths (clock arrives at t=0, so arrival
                # at Q is clk_to_q, applied by the analyzer).  D-type
                # inputs are endpoints even when Q is unused.
                for out in outputs:
                    self.startpoints.append(self.node(inst, out))
                d_pins = [
                    p.name
                    for p in master.input_pins()
                    if inst.net_on(p.name) is not None
                ]
                for d in d_pins:
                    self.endpoints.append(self.node(inst, d))
            elif not outputs:
                continue
            else:
                inputs = [
                    p.name
                    for p in master.input_pins()
                    if inst.net_on(p.name) is not None
                ]
                for out in outputs:
                    out_node = self.node(inst, out)
                    for inp in inputs:
                        self._add_arc(self.node(inst, inp), out_node, self.CELL, inst)

        # Ports: input ports with a driven net are startpoints; output
        # ports are endpoints.
        for name, port in design.ports.items():
            key = (None, name)
            if key not in self._node_of:
                continue
            node_id = self._node_of[key]
            if port.direction is PinDirection.INPUT:
                clock_like = name == design.clock_port
                if not clock_like:
                    self.startpoints.append(node_id)
            else:
                self.endpoints.append(node_id)

        self.levelize()

    # ------------------------------------------------------------------
    def levelize(self) -> None:
        """Topologically order the nodes; raises on combinational loops."""
        n = self.num_nodes
        indeg = [len(self.preds[v]) for v in range(n)]
        queue = deque(v for v in range(n) if indeg[v] == 0)
        order: List[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v, _kind, _payload in self.arcs[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            remaining = [self.node_name(v) for v in range(n) if indeg[v] > 0]
            raise ValueError(
                f"combinational loop detected among {len(remaining)} pins, "
                f"e.g. {remaining[:4]}"
            )
        self.topo_order = order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        num_arcs = sum(len(a) for a in self.arcs)
        return (
            f"TimingGraph(nodes={self.num_nodes}, arcs={num_arcs}, "
            f"starts={len(self.startpoints)}, ends={len(self.endpoints)})"
        )


_GRAPH_CACHE: "weakref.WeakKeyDictionary[Design, TimingGraph]" = (
    weakref.WeakKeyDictionary()
)


def timing_graph_for(design: Design) -> TimingGraph:
    """Cached timing graph for a design.

    The graph depends only on connectivity, which is immutable after
    netlist construction in this package, so one graph per design is
    safe to share between the clustering stage and the post-route
    evaluation (placement moves only change the wire model's answers).
    """
    graph = _GRAPH_CACHE.get(design)
    if graph is None:
        graph = TimingGraph(design)
        _GRAPH_CACHE[design] = graph
    return graph
