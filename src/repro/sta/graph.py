"""Timing graph construction and levelization.

Nodes are pins (instance pins and top-level ports); arcs are

* cell arcs: input pin -> output pin of a combinational cell,
* wire arcs: driver pin -> each sink pin of a net.

Clock pins are not modelled as nodes: sequential Q pins are path
*startpoints* whose launch time (clock edge + clk-to-q) the analyzer
applies directly, which is equivalent to an explicit CK -> Q launch arc
under the single-clock, zero-insertion-delay model (CTS skew enters as
clock uncertainty at the endpoints).

Sequential D-type inputs and output ports are path endpoints; input
ports and sequential Q outputs are path startpoints.  The generator
guarantees combinational acyclicity, and :meth:`TimingGraph.levelize`
verifies it (raising on a combinational loop, as OpenSTA would flag).

Besides the tuple-based adjacency (``arcs`` / ``preds``), the builder
records flat integer arc arrays (wire arcs first, then cell arcs — the
creation order) that :mod:`repro.sta.flat` compiles into the
vectorized-STA form without re-walking the Python adjacency lists.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.design import Design, Instance, Net, PinDirection, PinRef


class TimingGraph:
    """A levelized pin-level timing graph for one design.

    Attributes:
        design: The source design.
        num_nodes: Number of pin nodes.
        arcs: Forward adjacency: ``arcs[u]`` is a list of
            ``(v, kind, payload)`` where kind is ``"cell"`` (payload:
            the driving Instance) or ``"wire"`` (payload: the Net).
        preds: Reverse adjacency mirroring ``arcs``.
        startpoints: Node ids where timing paths begin.
        endpoints: Node ids where timing paths end.
        topo_order: Node ids in topological order (after levelize()).
        levels: Per-node longest-path depth (wave index) as a NumPy
            array, filled by :meth:`levelize`.
    """

    CELL = "cell"
    WIRE = "wire"

    def __init__(self, design, use_arrays: bool = True) -> None:
        # ``design`` may be a Design or a bare NetlistArrays (the
        # array-native generator emits the latter at scales where no
        # object view exists).  Scalar/reference features that need the
        # object graph raise when only arrays are available.
        if isinstance(design, Design):
            self.design = design
            self._source_arrays = None
        else:
            self.design = None
            self._source_arrays = design
            if not use_arrays:
                raise ValueError(
                    "reference build requires the object view, got NetlistArrays"
                )
        # Node identity maps are lazy on the array-native path: the
        # build records per-node (owner instance index, interned pin
        # name) arrays, and the dict/list views materialize on first
        # access (only the scalar reference engines need them).
        self._node_of_map: Optional[Dict[Tuple[Optional[int], str], int]] = None
        self._node_info_list: Optional[List[Tuple[Optional[Instance], str]]] = None
        self._node_owner: Optional[np.ndarray] = None
        self._node_pname: Optional[np.ndarray] = None
        self._num_nodes = 0
        # Tuple adjacency is built lazily from the flat arrays — the
        # vectorized paths never touch it (see arcs/preds properties).
        self._arcs: Optional[List[List[Tuple[int, str, object]]]] = None
        self._preds: Optional[List[List[Tuple[int, str, object]]]] = None
        self._wire_in: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self.startpoints: List[int] = []
        self.endpoints: List[int] = []
        self.topo_order: List[int] = []
        self.levels: Optional[np.ndarray] = None
        # Flat arc arrays (filled by the build, wire arcs then cell arcs):
        #: driver node per driven non-clock net, aligned with _w_net/_w_cnt.
        self._w_src: Optional[np.ndarray] = None
        self._w_dst: Optional[np.ndarray] = None  # per wire arc
        self._w_net: Optional[np.ndarray] = None  # net index per driven net
        self._w_cnt: Optional[np.ndarray] = None  # sink count per driven net
        self._c_src: Optional[np.ndarray] = None  # per cell arc
        self._c_out_node: Optional[np.ndarray] = None  # per (inst, output)
        self._c_out_net: Optional[np.ndarray] = None
        self._c_out_inst: Optional[np.ndarray] = None
        self._c_nin: Optional[np.ndarray] = None  # inputs per (inst, output)
        if use_arrays:
            self._build_arrays()
        else:
            self._node_of_map = {}
            self._node_info_list = []
            self._build_reference()
        self.levelize()

    # ------------------------------------------------------------------
    @property
    def _node_of(self) -> Dict[Tuple[Optional[int], str], int]:
        if self._node_of_map is None:
            self._materialize_node_maps()
        return self._node_of_map

    @property
    def _node_info(self) -> List[Tuple[Optional[Instance], str]]:
        if self._node_info_list is None:
            self._materialize_node_maps()
        return self._node_info_list

    def _materialize_node_maps(self) -> None:
        """Expand the per-node owner/name arrays into the dict/list views."""
        if self.design is None:
            raise RuntimeError(
                "node maps require the object view; this graph was built "
                "from a bare NetlistArrays"
            )
        pool = self.design.arrays().name_pool
        instances = self.design.instances
        info: List[Tuple[Optional[Instance], str]] = []
        node_of: Dict[Tuple[Optional[int], str], int] = {}
        for nid, (owner, nmi) in enumerate(
            zip(self._node_owner.tolist(), self._node_pname.tolist())
        ):
            name = pool[nmi]
            if owner >= 0:
                info.append((instances[owner], name))
                node_of[(owner, name)] = nid
            else:
                info.append((None, name))
                node_of[(None, name)] = nid
        self._node_info_list = info
        self._node_of_map = node_of

    def node(self, inst: Optional[Instance], pin_name: str) -> int:
        """Get or create the node id for an instance pin / port."""
        key = (inst.index if inst is not None else None, pin_name)
        node_of = self._node_of
        node_id = node_of.get(key)
        if node_id is None:
            node_id = len(self._node_info)
            node_of[key] = node_id
            self._node_info.append((inst, pin_name))
            if self._arcs is not None:
                self._arcs.append([])
                self._preds.append([])
        return node_id

    def node_for_ref(self, ref: PinRef) -> int:
        """Node id for a :class:`PinRef`."""
        return self.node(ref.instance, ref.pin_name)

    def info(self, node_id: int) -> Tuple[Optional[Instance], str]:
        """(instance, pin name) of a node; instance None for ports."""
        return self._node_info[node_id]

    def node_name(self, node_id: int) -> str:
        """Human-readable pin name, e.g. ``u_a/U3.Y`` or port name."""
        inst, pin = self._node_info[node_id]
        if inst is None:
            return pin
        return f"{inst.name}.{pin}"

    @property
    def num_nodes(self) -> int:
        """Number of pin nodes."""
        if self._node_info_list is not None:
            return len(self._node_info_list)
        return self._num_nodes

    # ------------------------------------------------------------------
    @property
    def arcs(self) -> List[List[Tuple[int, str, object]]]:
        """Forward tuple adjacency, built lazily on first access."""
        if self._arcs is None:
            self._build_adjacency()
        return self._arcs

    @property
    def preds(self) -> List[List[Tuple[int, str, object]]]:
        """Reverse tuple adjacency, built lazily on first access."""
        if self._preds is None:
            self._build_adjacency()
        return self._preds

    def _build_adjacency(self) -> None:
        """Materialize arcs/preds from the flat arrays.

        Reproduces the historical construction order exactly: wire arcs
        net-major in net-index order, then cell arcs output-major in
        instance order with inputs in pin order.  Only the scalar
        reference engines walk these lists; the vectorized flow runs
        entirely on the flat arrays.
        """
        n = self.num_nodes
        arcs: List[List[Tuple[int, str, object]]] = [[] for _ in range(n)]
        preds: List[List[Tuple[int, str, object]]] = [[] for _ in range(n)]
        WIRE = self.WIRE
        CELL = self.CELL
        nets = self.design.nets
        instances = self.design.instances
        dsts = self._w_dst.tolist()
        pos = 0
        for u, ni, cnt in zip(
            self._w_src.tolist(), self._w_net.tolist(), self._w_cnt.tolist()
        ):
            net = nets[ni]
            arcs_u = arcs[u]
            preds_append = preds
            for v in dsts[pos : pos + cnt]:
                arcs_u.append((v, WIRE, net))
                preds_append[v].append((u, WIRE, net))
            pos += cnt
        srcs = self._c_src.tolist()
        pos = 0
        for out_node, inst_i, nin in zip(
            self._c_out_node.tolist(),
            self._c_out_inst.tolist(),
            self._c_nin.tolist(),
        ):
            inst = instances[inst_i]
            preds_v = preds[out_node]
            for u in srcs[pos : pos + nin]:
                arcs[u].append((out_node, CELL, inst))
                preds_v.append((u, CELL, inst))
            pos += nin
        self._arcs = arcs
        self._preds = preds

    def wire_in_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node (driver node, net index) of the first wire in-arc.

        ``-1`` where a node has no wire in-arc.  Lets path backtracking
        resolve a hop's net without materializing the tuple adjacency.
        """
        if self._wire_in is None or len(self._wire_in[0]) < self.num_nodes:
            n = self.num_nodes
            wsrc = np.full(n, -1, dtype=np.int64)
            wnet = np.full(n, -1, dtype=np.int64)
            dst_rev = self._w_dst[::-1]
            # Reversed assignment: the first wire arc into a node wins,
            # matching the scalar scan's first-match semantics.
            wsrc[dst_rev] = np.repeat(self._w_src, self._w_cnt)[::-1]
            wnet[dst_rev] = np.repeat(self._w_net, self._w_cnt)[::-1]
            self._wire_in = (wsrc, wnet)
        return self._wire_in

    def _build_arrays(self) -> None:
        """Array-native graph construction from the design's CSR form.

        Reproduces :meth:`_build_reference` bit for bit — node ids,
        arc order, startpoint/endpoint order — without touching the
        object graph.  The trick is node-id assignment: the reference
        numbers nodes by first occurrence in its visitation sequence
        (all ports, then wire pins net-major with driver first, then
        cell pins instance-major).  Inside one combinational instance
        the reference's ``out0, in..., out1, in...(dup)`` walk has
        first occurrences ``out0, in..., out1..`` — so the equivalent
        flat sequence is built by ordering each instance's connected
        pins by (section, declaration slot) with sections
        ``first-out=0, inputs=1, remaining outs=2`` (sequential cells:
        ``outs=0, inputs=1``).  One global ``np.unique`` then ranks
        keys by first position to mint the identical ids.
        """
        from repro.netlist.arrays import DIR_INPUT, DIR_OUTPUT

        design = self.design
        arrays = design.arrays() if design is not None else self._source_arrays
        clock_port = design.clock_port if design is not None else arrays.clock_port
        pool_size = len(arrays.name_pool)
        # Composite pin key: (owner + 1) * |pool| + pin-name id, with
        # owner -1 (ports) mapping to code 0.  Unique per physical pin.
        # (int32 owner columns upcast: the product overflows 32 bits.)
        pin_key = (
            arrays.pin_inst.astype(np.int64) + 1
        ) * pool_size + arrays.pin_name_idx

        # Phase A: every port gets a node, insertion order.
        port_keys = arrays.port_name_idx.astype(np.int64)

        # Phase B: wire pins of driven non-clock nets, net-major,
        # driver first (the stored pin order).
        wnet = np.flatnonzero(arrays.net_has_driver & ~arrays.net_is_clock)
        wcounts = arrays.net_degree[wnet]
        wire_keys = pin_key[_multi_arange(arrays.net_ptr[wnet], wcounts)]

        # Phase C: cell pins.  Start from the instance->connection CSR
        # (rows sorted by instance then declaration slot), dedupe
        # multiply-connected pins keeping the *last* connection (the
        # reference reads ``pin_nets``, where the last connect wins).
        _iptr, irows = arrays.instance_pin_csr()
        ri = arrays.pin_inst[irows]
        rs = arrays.pin_slot[irows]
        if len(irows):
            keep_last = np.concatenate(
                ((ri[1:] != ri[:-1]) | (rs[1:] != rs[:-1]), [True])
            )
        else:
            keep_last = np.zeros(0, dtype=bool)
        drows = irows[keep_last]
        d_inst = ri[keep_last]
        d_key = pin_key[drows]
        d_dir = arrays.pin_dir[drows]
        is_out = d_dir == DIR_OUTPUT
        is_in = (d_dir == DIR_INPUT) & ~arrays.pin_is_clockpin[drows]
        d_net = arrays.pin_net()[drows]
        inst_seq = (
            arrays.m_is_seq[arrays.inst_master]
            if arrays.num_instances
            else np.zeros(0, dtype=bool)
        )
        row_seq = inst_seq[d_inst] if len(d_inst) else np.zeros(0, dtype=bool)
        n_out = np.bincount(
            d_inst[is_out], minlength=arrays.num_instances
        )
        # Combinational instances without connected outputs contribute
        # no nodes at all; clock pins / inouts never do.
        keep = (is_out | is_in) & (row_seq | (n_out[d_inst] > 0))
        k_inst = d_inst[keep]
        k_key = d_key[keep]
        k_out = is_out[keep]
        k_seq = row_seq[keep]
        k_net = d_net[keep]
        # First connected output per instance (rows are slot-ordered;
        # k_inst is sorted, so group starts are run boundaries).
        oc = np.cumsum(k_out)
        if len(k_inst):
            new_group = np.concatenate(([True], k_inst[1:] != k_inst[:-1]))
            group_start = np.flatnonzero(new_group)[np.cumsum(new_group) - 1]
        else:
            group_start = np.zeros(0, dtype=np.int64)
        prior = np.where(group_start > 0, oc[np.maximum(group_start - 1, 0)], 0)
        first_out = k_out & ((oc - prior) == 1)
        section = np.where(
            k_out & (k_seq | first_out), 0, np.where(k_out, 2, 1)
        )
        # Stable sort of the composite (instance, section) key ==
        # lexsort((arange, section, k_inst)).
        seq_order = np.argsort(
            k_inst.astype(np.int64) * 4 + section, kind="stable"
        )
        cell_keys = k_key[seq_order]

        # Global first-occurrence node ids over the full visitation
        # sequence.
        all_keys = np.concatenate((port_keys, wire_keys, cell_keys))
        uniq, first_pos, inverse = np.unique(
            all_keys, return_index=True, return_inverse=True
        )
        rank = np.argsort(first_pos, kind="stable")
        id_of = np.empty(len(uniq), dtype=np.int64)
        id_of[rank] = np.arange(len(uniq), dtype=np.int64)
        all_ids = id_of[inverse]
        n_port = len(port_keys)
        n_wire = len(wire_keys)
        port_ids = all_ids[:n_port]
        #: Per-row node id of k_key (undo the seq_order permutation).
        k_ids = np.empty(len(k_key), dtype=np.int64)
        k_ids[seq_order] = all_ids[n_port + n_wire :]

        self._num_nodes = len(uniq)
        ordered_keys = uniq[rank]
        self._node_owner = (ordered_keys // pool_size) - 1
        self._node_pname = ordered_keys % pool_size

        # Wire arc arrays.
        wire_ids = all_ids[n_port : n_port + n_wire]
        span_starts = np.concatenate(([0], np.cumsum(wcounts)))[:-1].astype(
            np.int64
        )
        is_driver_pos = np.zeros(len(wire_keys), dtype=bool)
        is_driver_pos[span_starts] = True
        self._w_src = wire_ids[span_starts]
        self._w_dst = wire_ids[~is_driver_pos]
        self._w_net = wnet
        self._w_cnt = wcounts - 1

        # Cell arc arrays (combinational instances, output-major,
        # inputs in declaration order — identical to the reference's
        # nested loops).
        comb_in = ~k_seq & ~k_out
        comb_out = ~k_seq & k_out
        in_ids = k_ids[comb_in]
        in_counts = np.bincount(
            k_inst[comb_in], minlength=arrays.num_instances
        )
        in_starts = np.concatenate(([0], np.cumsum(in_counts)))[:-1]
        out_inst = k_inst[comb_out]
        out_ids = k_ids[comb_out]
        out_nets = k_net[comb_out]
        self._c_src = in_ids[
            _multi_arange(in_starts[out_inst], in_counts[out_inst])
        ]
        has_in = in_counts[out_inst] > 0
        self._c_out_node = out_ids[has_in]
        self._c_out_net = out_nets[has_in]
        self._c_out_inst = out_inst[has_in]
        self._c_nin = in_counts[out_inst][has_in]

        # Startpoints / endpoints: sequential pins instance-major, then
        # ports in insertion order (matching the reference's two loops).
        self.startpoints = k_ids[k_seq & k_out].tolist()
        self.endpoints = k_ids[k_seq & ~k_out].tolist()
        is_input = arrays.port_dir == DIR_INPUT
        not_clock = np.ones(arrays.num_ports, dtype=bool)
        port_names = arrays.port_names
        if clock_port is not None and clock_port in port_names:
            not_clock[port_names.index(clock_port)] = False
        self.startpoints.extend(port_ids[is_input & not_clock].tolist())
        self.endpoints.extend(port_ids[~is_input].tolist())

    def _build_reference(self) -> None:
        design = self.design
        node_of = self._node_of
        node_info = self._node_info

        # Create nodes for every port so they exist even when floating.
        for name in design.ports:
            self.node(None, name)

        # Wire arcs (node() inlined: one dict probe per pin reference).
        w_src: List[int] = []
        w_dst: List[int] = []
        w_net: List[int] = []
        w_cnt: List[int] = []
        for net in design.nets:
            driver = net.driver
            if driver is None or net.is_clock:
                continue
            inst = driver.instance
            key = (inst.index if inst is not None else None, driver.pin_name)
            u = node_of.get(key)
            if u is None:
                u = len(node_info)
                node_of[key] = u
                node_info.append((inst, driver.pin_name))
            count = 0
            for sink in net.sinks:
                si = sink.instance
                key = (si.index if si is not None else None, sink.pin_name)
                v = node_of.get(key)
                if v is None:
                    v = len(node_info)
                    node_of[key] = v
                    node_info.append((si, sink.pin_name))
                w_dst.append(v)
                count += 1
            w_src.append(u)
            w_net.append(net.index)
            w_cnt.append(count)

        # Cell arcs.  Per-master pin-name lists are memoized: the
        # MasterCell accessors rebuild them on every call.
        c_src: List[int] = []
        c_out_node: List[int] = []
        c_out_net: List[int] = []
        c_out_inst: List[int] = []
        c_nin: List[int] = []
        pins_of_master: Dict[int, Tuple[List[str], List[str], bool]] = {}
        startpoints = self.startpoints
        endpoints = self.endpoints
        for inst in design.instances:
            master = inst.master
            cached = pins_of_master.get(id(master))
            if cached is None:
                cached = (
                    [p.name for p in master.output_pins()],
                    [p.name for p in master.input_pins()],
                    master.is_sequential,
                )
                pins_of_master[id(master)] = cached
            out_names, in_names, is_seq = cached
            pin_nets = inst.pin_nets
            outputs = [p for p in out_names if pin_nets.get(p) is not None]
            if is_seq:
                # Q pins launch paths (clock arrives at t=0, so arrival
                # at Q is clk_to_q, applied by the analyzer).  D-type
                # inputs are endpoints even when Q is unused.
                for out in outputs:
                    startpoints.append(self.node(inst, out))
                for d in in_names:
                    if pin_nets.get(d) is not None:
                        endpoints.append(self.node(inst, d))
            elif not outputs:
                continue
            else:
                inputs = [p for p in in_names if pin_nets.get(p) is not None]
                inst_index = inst.index
                for out in outputs:
                    key = (inst_index, out)
                    out_node = node_of.get(key)
                    if out_node is None:
                        out_node = len(node_info)
                        node_of[key] = out_node
                        node_info.append((inst, out))
                    for inp in inputs:
                        key = (inst_index, inp)
                        in_node = node_of.get(key)
                        if in_node is None:
                            in_node = len(node_info)
                            node_of[key] = in_node
                            node_info.append((inst, inp))
                        c_src.append(in_node)
                    if inputs:
                        c_out_node.append(out_node)
                        c_out_net.append(pin_nets[out].index)
                        c_out_inst.append(inst_index)
                        c_nin.append(len(inputs))

        # Ports: input ports with a driven net are startpoints; output
        # ports are endpoints.
        for name, port in design.ports.items():
            key = (None, name)
            if key not in node_of:
                continue
            node_id = node_of[key]
            if port.direction is PinDirection.INPUT:
                clock_like = name == design.clock_port
                if not clock_like:
                    startpoints.append(node_id)
            else:
                endpoints.append(node_id)

        self._w_src = np.asarray(w_src, dtype=np.int64)
        self._w_dst = np.asarray(w_dst, dtype=np.int64)
        self._w_net = np.asarray(w_net, dtype=np.int64)
        self._w_cnt = np.asarray(w_cnt, dtype=np.int64)
        self._c_src = np.asarray(c_src, dtype=np.int64)
        self._c_out_node = np.asarray(c_out_node, dtype=np.int64)
        self._c_out_net = np.asarray(c_out_net, dtype=np.int64)
        self._c_out_inst = np.asarray(c_out_inst, dtype=np.int64)
        self._c_nin = np.asarray(c_nin, dtype=np.int64)

    # ------------------------------------------------------------------
    def flat_arc_arrays(self) -> Tuple[np.ndarray, np.ndarray, int]:
        """(src, dst, num_wire_arcs): arcs in creation order."""
        src = np.concatenate(
            (np.repeat(self._w_src, self._w_cnt), self._c_src)
        )
        dst = np.concatenate(
            (self._w_dst, np.repeat(self._c_out_node, self._c_nin))
        )
        return src, dst, len(self._w_dst)

    def levelize(self) -> None:
        """Topologically order the nodes; raises on combinational loops.

        Vectorized Kahn waves that reproduce the FIFO deque order
        exactly: within a wave, nodes are ordered by the position of
        the arc that zeroed their in-degree in the wave's arc stream.
        Also fills :attr:`levels` (longest-path depth per node).
        """
        if self._w_src is None:
            self._levelize_scalar()
            return
        n = self.num_nodes
        src, dst, _nw = self.flat_arc_arrays()
        m = len(src)
        level = np.zeros(n, dtype=np.int64)
        if m == 0:
            self.topo_order = list(range(n))
            self.levels = level
            return
        indeg = np.bincount(dst, minlength=n)
        order_arcs = np.argsort(src, kind="stable")
        sdst = dst[order_arcs]
        indptr = np.concatenate(([0], np.cumsum(np.bincount(src, minlength=n))))
        frontier = np.flatnonzero(indeg == 0)
        chunks: List[np.ndarray] = [frontier]
        done = len(frontier)
        lvl = 0
        while len(frontier):
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            arc_idx = _multi_arange(starts, counts)
            if not len(arc_idx):
                break
            dsts = sdst[arc_idx]
            np.subtract.at(indeg, dsts, 1)
            # FIFO order within the next wave: position of the *last*
            # decrement of each node in this wave's arc stream.
            rev = dsts[::-1]
            uniq, rev_first = np.unique(rev, return_index=True)
            ready = indeg[uniq] == 0
            nodes = uniq[ready]
            last_pos = (len(dsts) - 1) - rev_first[ready]
            nodes = nodes[np.argsort(last_pos)]
            lvl += 1
            level[nodes] = lvl
            chunks.append(nodes)
            done += len(nodes)
            frontier = nodes
        if done != n:
            remaining = [self.node_name(v) for v in np.flatnonzero(indeg > 0)]
            raise ValueError(
                f"combinational loop detected among {len(remaining)} pins, "
                f"e.g. {remaining[:4]}"
            )
        self.topo_order = np.concatenate(chunks).tolist()
        self.levels = level

    def _levelize_scalar(self) -> None:
        """Reference deque-based Kahn levelization."""
        n = self.num_nodes
        indeg = [len(self.preds[v]) for v in range(n)]
        queue = deque(v for v in range(n) if indeg[v] == 0)
        order: List[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v, _kind, _payload in self.arcs[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if len(order) != n:
            remaining = [self.node_name(v) for v in range(n) if indeg[v] > 0]
            raise ValueError(
                f"combinational loop detected among {len(remaining)} pins, "
                f"e.g. {remaining[:4]}"
            )
        self.topo_order = order
        self.levels = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        num_arcs = len(self._w_dst) + len(self._c_src)
        return (
            f"TimingGraph(nodes={self.num_nodes}, arcs={num_arcs}, "
            f"starts={len(self.startpoints)}, ends={len(self.endpoints)})"
        )


def _multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each (start, count)."""
    nonzero = counts > 0
    if not nonzero.all():
        starts = starts[nonzero]
        counts = counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    out[0] = starts[0]
    if len(starts) > 1:
        out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


_GRAPH_CACHE: "weakref.WeakKeyDictionary[Design, Tuple[tuple, TimingGraph]]" = (
    weakref.WeakKeyDictionary()
)


def timing_graph_for(design: Design) -> TimingGraph:
    """Cached timing graph for a design.

    The graph depends only on connectivity, so one graph per design is
    shared between the clustering stage and the post-route evaluation
    (placement moves only change the wire model's answers).  The cache
    is keyed on :meth:`Design.structure_key`, so ECO mutations
    (reconnect / add / remove) transparently recompile the graph on
    next access instead of serving pre-edit topology.
    """
    key = design.structure_key()
    entry = _GRAPH_CACHE.get(design)
    if entry is not None and entry[0] == key:
        return entry[1]
    graph = TimingGraph(design)
    _GRAPH_CACHE[design] = (key, graph)
    return graph
