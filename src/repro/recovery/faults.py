"""Deterministic fault injection for crash-safety testing.

Long flows die in ways unit tests rarely exercise: a worker is
OOM-killed mid-item, the whole process is SIGKILLed between stages, a
checkpoint file is half-written by a dying disk.  This module plants
named *sites* in the flow (``faults.check("vpr.item", key="3/7")``)
that normally cost one boolean test, and arms them from a spec string
(or the ``REPRO_FAULTS`` environment variable, so CLI subprocesses can
be crashed from the outside) to reproduce those failures on demand:

    REPRO_FAULTS="kill:vpr.item:0/3"      # worker evaluating cluster 0,
                                          # candidate 3 dies (os._exit)
    REPRO_FAULTS="raise:flow.clustering"  # clustering stage raises
    REPRO_FAULTS="abort:vpr.item:#5"      # whole process exits on the
                                          # 5th item (resume testing)
    REPRO_FAULTS="corrupt:checkpoint.save:clustering"

Spec grammar — comma-separated ``action:site[:selector]``:

* ``action`` — one of

  - ``raise``   raise :class:`FaultInjected` at the site;
  - ``oserror`` raise :class:`OSError` (pool-infrastructure failure);
  - ``kill``    ``os._exit`` — **worker processes only** (no-op in the
                parent, so a parent-side retry of the killed item
                survives);
  - ``hang``    sleep far past any timeout — worker processes only;
  - ``abort``   ``os._exit`` unconditionally (simulates a mid-run
                SIGKILL of the whole flow);
  - ``corrupt`` returned to the caller, which corrupts the artefact it
                just wrote (used by the checkpoint store).

* ``site`` — the instrumentation point name.
* ``selector`` — optional: ``#N`` fires on the N-th hit of the site in
  this process; any other string fires when it equals the site's
  ``key``; omitted fires on the first hit.

Each spec fires **once per process** and then disarms; forked workers
inherit an armed copy, which is exactly what makes "worker dies, parent
retry succeeds" reproducible: the worker's copy fires and kills it, the
parent's copy fires on the first retry attempt, and the second attempt
runs clean.

All checks are no-ops (a single module-level boolean) when no spec is
configured, so production runs pay nothing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Environment variable consulted on first use (CLI subprocess control).
ENV_VAR = "REPRO_FAULTS"

#: Exit codes of the process-terminating actions (distinct from normal
#: failures so tests can assert the fault actually fired).
KILL_EXIT_CODE = 117
ABORT_EXIT_CODE = 123

#: Sleep of the ``hang`` action — far past any sane item timeout.
HANG_SECONDS = 3600.0

_ACTIONS = ("raise", "oserror", "kill", "hang", "abort", "corrupt")


class FaultInjected(RuntimeError):
    """Raised at a site armed with the ``raise`` action."""


class FaultSpecError(ValueError):
    """Malformed fault spec string."""


@dataclass
class _Spec:
    action: str
    site: str
    count: Optional[int] = None  # "#N" selector
    key: Optional[str] = None  # exact-key selector
    armed: bool = True

    def matches(self, hit: int, key: Optional[str]) -> bool:
        if not self.armed:
            return False
        if self.count is not None:
            return hit == self.count
        if self.key is not None:
            return key is not None and str(key) == self.key
        return True  # first hit (callers disarm on fire)


@dataclass
class _State:
    specs: List[_Spec] = field(default_factory=list)
    hits: Dict[str, int] = field(default_factory=dict)
    in_worker: bool = False


#: None means "not yet configured" — the first check() consults ENV_VAR.
_state: Optional[_State] = None
_active: bool = False


def parse_specs(text: str) -> List[_Spec]:
    """Parse a spec string; raises :class:`FaultSpecError` when malformed."""
    specs: List[_Spec] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":", 2)
        if len(pieces) < 2:
            raise FaultSpecError(
                f"fault spec {part!r} must be action:site[:selector]"
            )
        action, site = pieces[0], pieces[1]
        if action not in _ACTIONS:
            raise FaultSpecError(
                f"unknown fault action {action!r} (one of {', '.join(_ACTIONS)})"
            )
        spec = _Spec(action=action, site=site)
        if len(pieces) == 3 and pieces[2]:
            selector = pieces[2]
            if selector.startswith("#"):
                try:
                    spec.count = int(selector[1:])
                except ValueError:
                    raise FaultSpecError(
                        f"fault selector {selector!r} is not #<int>"
                    ) from None
                if spec.count < 1:
                    raise FaultSpecError("fault hit counts are 1-based")
            else:
                spec.key = selector
        specs.append(spec)
    return specs


def configure(text: Optional[str]) -> None:
    """Arm the given spec string (None or "" disables injection)."""
    global _state, _active
    _state = _State(specs=parse_specs(text) if text else [])
    _active = bool(_state.specs)


def reset() -> None:
    """Disarm everything and forget the env var was ever read."""
    global _state, _active
    _state = None
    _active = False


def is_active() -> bool:
    """Whether any spec is armed (reads ``REPRO_FAULTS`` on first call)."""
    if _state is None:
        configure(os.environ.get(ENV_VAR))
    return _active


def mark_worker() -> None:
    """Tag this process as a pool worker (enables kill/hang actions)."""
    if _state is None:
        configure(os.environ.get(ENV_VAR))
    _state.in_worker = True


def check(site: str, key: Optional[object] = None) -> Optional[str]:
    """Fire any armed spec matching this site.

    Side-effecting actions (raise/oserror/kill/hang/abort) happen here;
    ``"corrupt"`` is returned for the caller to apply.  Returns None
    when nothing fired.
    """
    if not is_active():
        return None
    state = _state
    hit = state.hits.get(site, 0) + 1
    state.hits[site] = hit
    for spec in state.specs:
        if spec.site != site or not spec.matches(hit, None if key is None else str(key)):
            continue
        spec.armed = False
        if spec.action == "raise":
            raise FaultInjected(f"injected fault at {site}" + (f" [{key}]" if key is not None else ""))
        if spec.action == "oserror":
            raise OSError(f"injected pool failure at {site}")
        if spec.action == "kill":
            if state.in_worker:
                os._exit(KILL_EXIT_CODE)
            continue  # parent-side retry of the killed item runs clean
        if spec.action == "hang":
            if state.in_worker:
                time.sleep(HANG_SECONDS)
            continue
        if spec.action == "abort":
            os._exit(ABORT_EXIT_CODE)
        if spec.action == "corrupt":
            return "corrupt"
    return None
