"""Crash safety: stage checkpoint/resume and deterministic fault injection.

Long multi-stage placement runs die — a worker is OOM-killed, the job
scheduler preempts the process, a disk fills mid-write.  This package
makes those failures cheap instead of catastrophic:

* :mod:`repro.recovery.checkpoint` — :class:`CheckpointStore`, a
  versioned checkpoint directory with atomic (write-temp + fsync +
  rename) stage records, per-(cluster, candidate) V-P&R item records
  and per-stage RNG snapshots.  ``repro flow --checkpoint DIR
  [--resume]`` wires it through the flow; a resumed run restarts from
  the last completed unit of work and reproduces the uninterrupted
  run's QoR bit for bit.
* :mod:`repro.recovery.faults` — env/config-driven fault injection
  (kill a worker on a chosen item, raise in a named stage, corrupt a
  checkpoint file) so every recovery path is testable deterministically
  (``tests/recovery/``).

See ``docs/recovery.md`` for the checkpoint layout, resume semantics
and the fault-injection knobs.
"""

from repro.recovery import faults
from repro.recovery.checkpoint import (
    SCHEMA,
    STAGES,
    CheckpointError,
    CheckpointStore,
    atomic_write_bytes,
)
from repro.recovery.faults import FaultInjected, FaultSpecError

__all__ = [
    "SCHEMA",
    "STAGES",
    "CheckpointError",
    "CheckpointStore",
    "FaultInjected",
    "FaultSpecError",
    "atomic_write_bytes",
    "faults",
]
