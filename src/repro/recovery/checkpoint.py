"""Versioned, atomic stage checkpoints for the placement flow.

A :class:`CheckpointStore` owns one checkpoint directory and persists
the flow's units of work as they complete:

* **stage records** — the clustering result, the chosen shapes, the
  seeded-placement state and the final metrics, one pickle per stage,
  with a SHA-256 recorded in the manifest and verified on load;
* **V-P&R items** — one small JSON file per (cluster, candidate)
  evaluation, written the moment the item finishes, so an interrupted
  sweep resumes from the last completed item rather than the last
  completed stage;
* **RNG snapshots** — the global ``random`` / ``numpy.random`` states
  captured at each stage boundary, restored on resume so a resumed run
  replays the exact RNG stream of an uninterrupted one.

Every write is atomic: the payload goes to a temporary file in the
same directory, is fsynced, and is renamed over the final name (the
directory is fsynced too; the shared primitive lives in
:mod:`repro.ioutil` and is also what the evaluation cache uses).  A
crash at any instant therefore leaves either the previous version or
the new one — never a torn file.
Externally corrupted files are detected (checksum / JSON parse) and
reported as a :class:`CheckpointError` naming the file and the fix,
not as a pickle traceback.

Layout of a checkpoint directory::

    MANIFEST.json             # schema, fingerprint, completed stages
    stage_clustering.pkl      # one per completed stage
    rng_clustering.pkl        # one per started stage
    vpr_items/c{C}_k{K}.json  # one per completed (cluster, candidate)

The manifest ``fingerprint`` identifies the run configuration (design,
seed, clustering method, candidate grid, ...); ``--resume`` refuses a
checkpoint written by a different configuration instead of silently
mixing results.
"""

from __future__ import annotations

import io
import json
import pickle
import random
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.ioutil import atomic_write_bytes, fsync_directory, sha256_hex
from repro.recovery import faults

__all__ = [
    "SCHEMA",
    "STAGES",
    "CheckpointError",
    "CheckpointStore",
    "atomic_write_bytes",  # re-exported; implementation in repro.ioutil
]

#: Schema tag of the manifest and every item record.
SCHEMA = "repro.recovery/1"

#: Flow stages a store can hold, in execution order.
STAGES = ("clustering", "vpr", "vpr_digests", "seeded", "eco_base", "metrics")


class CheckpointError(RuntimeError):
    """A checkpoint could not be created, validated or loaded.

    The message always names the offending path and the remedy
    (usually: delete the file or directory and rerun without
    ``--resume``).
    """


#: Kept as module aliases so existing call sites and tests keep
#: working; the implementations moved to :mod:`repro.ioutil` when the
#: evaluation cache started sharing them.
_fsync_directory = fsync_directory
_sha256 = sha256_hex


class CheckpointStore:
    """One checkpoint directory: stage records, V-P&R items, RNG state."""

    MANIFEST = "MANIFEST.json"
    ITEM_DIR = "vpr_items"

    def __init__(self, directory: str) -> None:
        self.directory = Path(directory)
        self._manifest: Dict[str, Any] = {}

    # -- lifecycle -----------------------------------------------------
    def initialize(self, fingerprint: Dict[str, Any]) -> None:
        """Start a fresh checkpoint, discarding any previous records."""
        self.directory.mkdir(parents=True, exist_ok=True)
        for stale in self.directory.glob("stage_*.pkl"):
            stale.unlink()
        for stale in self.directory.glob("rng_*.pkl"):
            stale.unlink()
        item_dir = self.directory / self.ITEM_DIR
        if item_dir.is_dir():
            for stale in item_dir.glob("*.json"):
                stale.unlink()
        self._manifest = {
            "schema": SCHEMA,
            "fingerprint": dict(fingerprint),
            "stages": {},
        }
        self._write_manifest()

    def open_resume(self, fingerprint: Dict[str, Any]) -> None:
        """Attach to an existing checkpoint for a resumed run."""
        manifest_path = self.directory / self.MANIFEST
        if not manifest_path.is_file():
            raise CheckpointError(
                f"no checkpoint manifest at {manifest_path}; run without "
                "--resume to start a fresh checkpointed run"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint manifest {manifest_path} is corrupt ({exc}); "
                f"delete {self.directory} and rerun without --resume"
            ) from exc
        schema = manifest.get("schema")
        if schema != SCHEMA:
            raise CheckpointError(
                f"checkpoint {manifest_path} has schema {schema!r} but this "
                f"build expects {SCHEMA!r}; delete {self.directory} and "
                "rerun without --resume"
            )
        recorded = manifest.get("fingerprint", {})
        if recorded != dict(fingerprint):
            changed = sorted(
                k
                for k in set(recorded) | set(fingerprint)
                if recorded.get(k) != fingerprint.get(k)
            )
            raise CheckpointError(
                f"checkpoint {self.directory} was written by a different run "
                f"configuration (differing: {', '.join(changed)}); resume "
                "with the original configuration or start a fresh checkpoint"
            )
        self._manifest = manifest

    def open_existing(self) -> Dict[str, Any]:
        """Attach to an existing checkpoint without a fingerprint check.

        The ECO path opens a finished run's checkpoint to *read* its
        stages (clustering, shapes, seeded positions, metrics, the
        ``eco_base`` design snapshot) — the caller does not know the
        original run configuration, so unlike :meth:`open_resume` the
        recorded fingerprint is returned rather than compared.  Schema
        and manifest integrity are still validated with the same
        actionable errors.
        """
        manifest_path = self.directory / self.MANIFEST
        if not manifest_path.is_file():
            raise CheckpointError(
                f"no checkpoint manifest at {manifest_path}; point the ECO "
                "path at a run directory produced with --checkpoint"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint manifest {manifest_path} is corrupt ({exc}); "
                f"re-run the base flow with --checkpoint to regenerate it"
            ) from exc
        schema = manifest.get("schema")
        if schema != SCHEMA:
            raise CheckpointError(
                f"checkpoint {manifest_path} has schema {schema!r} but this "
                f"build expects {SCHEMA!r}; re-run the base flow with "
                "--checkpoint to regenerate it"
            )
        self._manifest = manifest
        return dict(manifest.get("fingerprint", {}))

    @property
    def fingerprint(self) -> Dict[str, Any]:
        """The run-configuration fingerprint recorded in the manifest."""
        return dict(self._manifest.get("fingerprint", {}))

    # -- stage records -------------------------------------------------
    def _stage_path(self, stage: str) -> Path:
        return self.directory / f"stage_{stage}.pkl"

    def has_stage(self, stage: str) -> bool:
        entry = self._manifest.get("stages", {}).get(stage)
        return entry is not None and self._stage_path(stage).is_file()

    def save_stage(self, stage: str, payload: Any) -> None:
        """Persist one completed stage atomically and record its hash."""
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._stage_path(stage)
        atomic_write_bytes(path, data)
        if faults.check("checkpoint.save", key=stage) == "corrupt":
            # Fault injection: simulate a torn/bit-rotted file on disk.
            path.write_bytes(data[: max(1, len(data) // 2)] + b"\xde\xad")
        self._manifest.setdefault("stages", {})[stage] = {
            "file": path.name,
            "sha256": _sha256(data),
            "bytes": len(data),
        }
        self._write_manifest()

    def load_stage(self, stage: str) -> Any:
        """Load a completed stage, verifying its checksum."""
        entry = self._manifest.get("stages", {}).get(stage)
        path = self._stage_path(stage)
        if entry is None or not path.is_file():
            raise CheckpointError(
                f"checkpoint stage {stage!r} is not recorded in {self.directory}"
            )
        data = path.read_bytes()
        if _sha256(data) != entry.get("sha256"):
            raise CheckpointError(
                f"checkpoint file {path} does not match the checksum in the "
                "manifest (truncated or corrupted); delete it (or the whole "
                f"directory {self.directory}) and rerun without --resume to "
                "recompute the stage"
            )
        try:
            return pickle.loads(data)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint file {path} failed to unpickle ({exc!r}); "
                f"delete it and rerun without --resume"
            ) from exc

    # -- V-P&R item records --------------------------------------------
    def _item_path(self, cluster_id: int, candidate_index: int) -> Path:
        return (
            self.directory
            / self.ITEM_DIR
            / f"c{int(cluster_id)}_k{int(candidate_index)}.json"
        )

    def save_vpr_item(
        self,
        cluster_id: int,
        candidate_index: int,
        record: Dict[str, Any],
    ) -> None:
        """Persist one finished (cluster, candidate) evaluation."""
        payload = {
            "schema": SCHEMA,
            "cluster": int(cluster_id),
            "candidate": int(candidate_index),
        }
        payload.update(record)
        atomic_write_bytes(
            self._item_path(cluster_id, candidate_index),
            json.dumps(payload, sort_keys=True).encode(),
        )

    def load_vpr_item(
        self, cluster_id: int, candidate_index: int
    ) -> Optional[Dict[str, Any]]:
        """The saved evaluation record, or None when not checkpointed."""
        path = self._item_path(cluster_id, candidate_index)
        if not path.is_file():
            return None
        try:
            record = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint item {path} is corrupt ({exc}); delete it to "
                "recompute that (cluster, candidate) evaluation on resume"
            ) from exc
        if record.get("schema") != SCHEMA or "hpwl_cost" not in record:
            raise CheckpointError(
                f"checkpoint item {path} has an unexpected schema; delete "
                "it to recompute that evaluation on resume"
            )
        return record

    def vpr_items(self) -> Iterator[Tuple[int, int, Dict[str, Any]]]:
        """Iterate all saved (cluster, candidate, record) items."""
        item_dir = self.directory / self.ITEM_DIR
        if not item_dir.is_dir():
            return
        for path in sorted(item_dir.glob("c*_k*.json")):
            stem = path.stem  # c{C}_k{K}
            c_text, k_text = stem[1:].split("_k")
            yield int(c_text), int(k_text), self.load_vpr_item(
                int(c_text), int(k_text)
            )

    # -- RNG snapshots -------------------------------------------------
    def _rng_path(self, stage: str) -> Path:
        return self.directory / f"rng_{stage}.pkl"

    def has_rng(self, stage: str) -> bool:
        return self._rng_path(stage).is_file()

    def capture_rng(self, stage: str) -> None:
        """Snapshot the global RNG states at this stage boundary."""
        state = {
            "random": random.getstate(),
            "numpy": np.random.get_state(),
        }
        buffer = io.BytesIO()
        pickle.dump(state, buffer, protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(self._rng_path(stage), buffer.getvalue())

    def restore_rng(self, stage: str) -> bool:
        """Restore the snapshot for ``stage``; False when absent."""
        path = self._rng_path(stage)
        if not path.is_file():
            return False
        try:
            state = pickle.loads(path.read_bytes())
            random.setstate(state["random"])
            np.random.set_state(state["numpy"])
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint RNG snapshot {path} is corrupt ({exc!r}); "
                "delete it and rerun without --resume"
            ) from exc
        return True

    # -- manifest ------------------------------------------------------
    def _write_manifest(self) -> None:
        atomic_write_bytes(
            self.directory / self.MANIFEST,
            json.dumps(self._manifest, indent=2, sort_keys=True).encode(),
        )
