"""Flow-as-a-service: the ``repro serve`` HTTP surface.

The daemon is three long-lived pieces wired together:

* a :class:`~repro.serve.registry.JobRegistry` (job table + job dirs
  under the run root),
* a :class:`~repro.serve.pool.FlowWorkerPool` (bounded concurrency,
  one runner subprocess per job),
* one shared :class:`~repro.cache.EvaluationCache` every job reads
  and writes, so repeat traffic on popular designs is served warm.

Request handling follows the ``{statusCode, body}`` framing of
``Kuree/cgra_pnr``'s serverless placement handler: every route is a
pure function from ``(method, path, body)`` to a status code plus a
JSON-serialisable body (:meth:`ServeApp.handle_request`), and the
stdlib HTTP layer is a thin adapter around it — which also makes the
whole API unit-testable without sockets.

API (all JSON; see ``docs/serving.md``):

========  ======================  =======================================
method    path                    meaning
========  ======================  =======================================
GET       /                       service description + endpoint list
POST      /jobs                   submit a job spec -> ``202 {job_id}``
GET       /jobs                   all job records (newest last)
GET       /jobs/<id>              one record + live ``status.json``
GET       /jobs/<id>/events       events.jsonl tail (``offset``/``limit``)
GET       /jobs/<id>/result       final QoR report (409 until ``done``)
GET       /stats                  queue/worker/cache/counter snapshot
POST      /shutdown               drain running jobs and exit
========  ======================  =======================================
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.cache import EvaluationCache, derive_cache_summary
from repro.ioutil import atomic_write_bytes
from repro.serve.pool import FlowWorkerPool
from repro.serve.registry import Job, JobRegistry
from repro.serve.schemas import (
    RESULT_FILENAME,
    SCHEMA,
    SpecError,
    parse_job_spec,
)

#: File the daemon writes into its run root once the socket is bound,
#: so clients (and the load bench) can discover the ephemeral port.
SERVER_FILENAME = "server.json"


def _response(status: int, body: Dict[str, Any]) -> Dict[str, Any]:
    """The Kuree-style handler framing: one dict per response."""
    return {"statusCode": status, "body": body}


class ServeApp:
    """Daemon state + the pure request handler."""

    def __init__(
        self,
        run_root: str,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.run_root = Path(run_root)
        self.run_root.mkdir(parents=True, exist_ok=True)
        self.cache_dir = str(
            Path(cache_dir) if cache_dir else self.run_root / "cache"
        )
        self.cache = EvaluationCache(self.cache_dir)
        self.registry = JobRegistry(str(self.run_root))
        self.pool = FlowWorkerPool(
            self.registry,
            cache=self.cache,
            workers=workers,
            job_timeout=job_timeout,
        )
        self.started_unix = time.time()
        self.shutdown_event = threading.Event()

    # -- routes --------------------------------------------------------
    def handle_request(
        self, method: str, path: str, body: Any = None
    ) -> Dict[str, Any]:
        """Dispatch one request; always returns ``{statusCode, body}``."""
        parts = urlsplit(path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        segments = [s for s in parts.path.split("/") if s]
        try:
            if method == "GET" and not segments:
                return self._describe()
            if segments == ["jobs"]:
                if method == "POST":
                    return self._submit(body)
                if method == "GET":
                    return self._list_jobs()
            if segments == ["stats"] and method == "GET":
                return self._stats()
            if segments == ["shutdown"] and method == "POST":
                return self._shutdown()
            if len(segments) >= 2 and segments[0] == "jobs":
                job = self.registry.get(segments[1])
                if job is None:
                    return _response(
                        404, {"error": f"unknown job {segments[1]!r}"}
                    )
                if len(segments) == 2 and method == "GET":
                    return self._job_detail(job)
                if segments[2:] == ["events"] and method == "GET":
                    return self._job_events(job, query)
                if segments[2:] == ["result"] and method == "GET":
                    return self._job_result(job)
                if segments[2:] == ["eco"] and method == "POST":
                    return self._submit_eco(job, body)
        except SpecError as exc:
            return _response(400, {"error": str(exc)})
        return _response(
            404, {"error": f"no route for {method} {parts.path}"}
        )

    def _describe(self) -> Dict[str, Any]:
        return _response(
            200,
            {
                "schema": SCHEMA,
                "service": "repro serve",
                "version": __version__,
                "endpoints": [
                    "POST /jobs",
                    "GET /jobs",
                    "GET /jobs/<id>",
                    "GET /jobs/<id>/events",
                    "GET /jobs/<id>/result",
                    "POST /jobs/<id>/eco",
                    "GET /stats",
                    "POST /shutdown",
                ],
            },
        )

    def _submit(self, body: Any) -> Dict[str, Any]:
        if self.shutdown_event.is_set():
            return _response(503, {"error": "server is shutting down"})
        spec = parse_job_spec(body)
        job = self.registry.create(spec, self.cache_dir)
        self.pool.submit(job)
        return _response(
            202,
            {
                "schema": SCHEMA,
                "job_id": job.id,
                "state": job.state,
                "links": {
                    "status": f"/jobs/{job.id}",
                    "events": f"/jobs/{job.id}/events",
                    "result": f"/jobs/{job.id}/result",
                },
            },
        )

    def _submit_eco(self, parent: Job, body: Any) -> Dict[str, Any]:
        """Queue an incremental ECO against a finished flow job.

        The child job re-opens the parent's stage checkpoint and
        recomputes QoR for the edit delta only (docs/performance.md,
        "Incremental ECO"); it is a first-class job — same lifecycle,
        status/events/result endpoints, worker pool and shared cache.
        """
        from repro.eco import EcoError, parse_edits
        from repro.serve.schemas import CHECKPOINT_DIRNAME

        if self.shutdown_event.is_set():
            return _response(503, {"error": "server is shutting down"})
        if parent.spec.flow != "ours":
            return _response(
                400,
                {
                    "error": f"job {parent.id} ran flow "
                    f"{parent.spec.flow!r}; only 'ours' jobs leave an "
                    "ECO-able checkpoint"
                },
            )
        if parent.state != "done":
            return _response(
                409,
                {
                    "error": f"job {parent.id} is {parent.state}; ECO "
                    "needs a finished base run",
                    "state": parent.state,
                },
            )
        try:
            edits = parse_edits(body)
        except EcoError as exc:
            return _response(400, {"error": str(exc)})
        job = self.registry.create(
            parent.spec,
            self.cache_dir,
            eco={
                "parent": parent.id,
                "checkpoint_dir": str(parent.dir / CHECKPOINT_DIRNAME),
                "edits": [edit.to_payload() for edit in edits],
            },
        )
        self.pool.submit(job)
        return _response(
            202,
            {
                "schema": SCHEMA,
                "job_id": job.id,
                "parent": parent.id,
                "state": job.state,
                "edits": len(edits),
                "links": {
                    "status": f"/jobs/{job.id}",
                    "events": f"/jobs/{job.id}/events",
                    "result": f"/jobs/{job.id}/result",
                },
            },
        )

    def _list_jobs(self) -> Dict[str, Any]:
        return _response(
            200,
            {
                "schema": SCHEMA,
                "jobs": [job.to_dict() for job in self.registry.list()],
            },
        )

    def _job_detail(self, job: Job) -> Dict[str, Any]:
        from repro.monitor import load_status

        record = job.to_dict()
        # The live view, straight from the runner's atomically-replaced
        # status.json (schema repro.monitor/1) — progress bars, stage
        # stack, worker heartbeats, RSS — with zero daemon-side state.
        record["status"] = load_status(str(job.dir))
        return _response(200, record)

    def _job_events(
        self, job: Job, query: Dict[str, str]
    ) -> Dict[str, Any]:
        from repro.telemetry.events import iter_events

        try:
            offset = max(0, int(query.get("offset", 0)))
            limit = max(1, min(int(query.get("limit", 100)), 1000))
        except ValueError:
            return _response(
                400, {"error": "offset/limit must be integers"}
            )
        events = []
        index = 0
        for event in iter_events(str(job.dir / "events.jsonl")):
            if index >= offset:
                events.append(event)
                if len(events) > limit:
                    events.pop(0)
                    offset = index - limit + 1
            index += 1
        return _response(
            200,
            {
                "schema": SCHEMA,
                "job_id": job.id,
                "state": job.state,
                "offset": offset,
                "next_offset": index,
                "events": events,
            },
        )

    def _job_result(self, job: Job) -> Dict[str, Any]:
        if job.state == "failed":
            return _response(
                410, {"error": job.error or "job failed", "state": "failed"}
            )
        if job.state != "done":
            return _response(
                409,
                {
                    "error": f"job is {job.state}; poll /jobs/{job.id}",
                    "state": job.state,
                },
            )
        try:
            report = json.loads((job.dir / RESULT_FILENAME).read_text())
        except (OSError, ValueError):
            return _response(
                500, {"error": "result.json unreadable", "state": job.state}
            )
        return _response(
            200,
            {
                "schema": SCHEMA,
                "job_id": job.id,
                "state": job.state,
                "qor": report,
                "counters": dict(job.counters),
                "wall_s": (job.finished_unix or 0)
                - (job.started_unix or 0),
            },
        )

    def _stats(self) -> Dict[str, Any]:
        cache_stats = self.cache.stats()
        totals = self.registry.totals()
        hits = totals.get("vpr.cache.hit", 0)
        misses = totals.get("vpr.cache.miss", 0)
        # One summary derivation shared with ``repro cache stats`` and
        # the sweep parent's end-of-sweep event, so hit_ratio /
        # bytes_on_disk mean the same thing everywhere.  The historical
        # warm_hit_ratio key stays (same value) for existing clients.
        summary = derive_cache_summary(
            hits,
            misses,
            totals.get("vpr.cache.store", 0),
            cache_stats,
        )
        cache_block = {
            "directory": self.cache_dir,
            "total_bytes": cache_stats.total_bytes,
            "warm_hit_ratio": summary["hit_ratio"],
        }
        cache_block.update(summary)
        return _response(
            200,
            {
                "schema": SCHEMA,
                "uptime_s": time.time() - self.started_unix,
                "queue_depth": self.pool.queue_depth,
                "workers": self.pool.workers,
                "busy_workers": self.pool.busy,
                "jobs": self.registry.counts(),
                "cache": cache_block,
            },
        )

    def _shutdown(self) -> Dict[str, Any]:
        self.shutdown_event.set()
        return _response(
            202, {"schema": SCHEMA, "state": "stopping"}
        )

    # -- lifecycle -----------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        self.shutdown_event.set()
        self.pool.shutdown(timeout=timeout)


# ----------------------------------------------------------------------
# stdlib HTTP adapter
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Thin adapter from HTTP to :meth:`ServeApp.handle_request`."""

    server_version = "repro-serve/" + __version__
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw)
            except ValueError:
                self._reply(400, {"error": "request body is not JSON"})
                return
        response = app.handle_request(self.command, self.path, body)
        self._reply(response["statusCode"], response["body"])

    def _reply(self, status: int, body: Dict[str, Any]) -> None:
        data = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    do_GET = _dispatch
    do_POST = _dispatch

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # requests are visible via the registry, not stderr noise


class ServeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the app reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServeApp) -> None:
        super().__init__(address, _Handler)
        self.app = app


def write_server_file(app: ServeApp, host: str, port: int) -> Path:
    """Publish the bound address for clients (ephemeral-port friendly)."""
    import os

    path = app.run_root / SERVER_FILENAME
    atomic_write_bytes(
        path,
        json.dumps(
            {
                "schema": SCHEMA,
                "url": f"http://{host}:{port}",
                "host": host,
                "port": port,
                "pid": os.getpid(),
                "workers": app.pool.workers,
                "cache_dir": app.cache_dir,
                "started_unix": app.started_unix,
            },
            sort_keys=True,
            indent=2,
        ).encode(),
        durable=False,
    )
    return path


def run_serve(
    run_root: str,
    cache_dir: Optional[str] = None,
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 8181,
    job_timeout: Optional[float] = None,
) -> int:
    """Run the daemon until ``POST /shutdown`` or SIGTERM/SIGINT.

    Binds first (``port=0`` picks an ephemeral port), then publishes
    ``<run_root>/server.json`` with the resolved address.  Shutdown is
    clean: in-flight jobs finish, queued jobs are failed as cancelled,
    worker threads are joined.
    """
    app = ServeApp(
        run_root,
        cache_dir=cache_dir,
        workers=workers,
        job_timeout=job_timeout,
    )
    try:
        server = ServeServer((host, port), app)
    except socket.error as exc:
        print(f"repro serve: cannot bind {host}:{port}: {exc}")
        app.close(timeout=5.0)
        return 1
    bound_port = server.server_address[1]
    write_server_file(app, host, bound_port)
    print(
        f"repro serve: listening on http://{host}:{bound_port} "
        f"(workers={app.pool.workers}, cache={app.cache_dir}, "
        f"run-root={app.run_root})",
        flush=True,
    )

    previous_handlers = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[signum] = signal.signal(
                signum, lambda *_: app.shutdown_event.set()
            )
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass

    server_thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    server_thread.start()
    try:
        app.shutdown_event.wait()
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=10.0)
        cancelled = app.pool.shutdown(timeout=None)
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    counts = app.registry.counts()
    print(
        f"repro serve: stopped ({counts['done']} done, "
        f"{counts['failed']} failed, {len(cancelled)} cancelled)",
        flush=True,
    )
    return 0
