"""Wire schemas of the job server.

One schema tag (``repro.serve/1``) covers the three JSON documents the
server exchanges with clients and persists per job:

* the **job spec** a client POSTs to ``/jobs`` — a design (named
  benchmark or generator parameters) plus flow-config overrides;
* the **job record** every ``/jobs*`` endpoint returns — id, state,
  timestamps, aggregated cache counters;
* the on-disk ``job.json`` tying the two together inside a job's
  directory, which is all :mod:`repro.serve.runner` needs to run the
  flow in its own process.

A spec deliberately re-uses the CLI ``flow`` vocabulary (``flow``,
``tool``, ``clustering``, ``shapes``, ``routing``, ``jobs``, ``seed``)
and is compiled to CLI argv by :func:`spec_to_argv`, so a served job
runs the *exact* code path of ``python -m repro flow`` and its QoR is
byte-identical to a CLI run of the same spec (asserted in
``tests/serve/test_qor_identity.py``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

#: Schema tag stamped on every serve document.
SCHEMA = "repro.serve/1"

#: The job lifecycle.  ``queued`` -> ``running`` -> ``done`` |
#: ``failed``; there are no other transitions.
JOB_STATES = ("queued", "running", "done", "failed")

#: File names inside a job directory.
JOB_FILENAME = "job.json"
RESULT_FILENAME = "result.json"
ERROR_FILENAME = "job_error.json"
RUNNER_LOG_FILENAME = "runner.log"
ECO_EDITS_FILENAME = "edits.json"
#: Subdirectory of a flow job holding its stage checkpoint — what an
#: ECO job re-opens (see docs/performance.md, "Incremental ECO").
CHECKPOINT_DIRNAME = "ckpt"

#: Spec fields a client may override, with their defaults (mirroring
#: the CLI ``flow`` defaults except ``routing``, which mirrors
#: ``--no-routing`` as a boolean).
_FLOW_CHOICES = ("ours", "default", "blob")
_TOOL_CHOICES = ("openroad", "innovus")
_CLUSTERING_CHOICES = ("ppa", "mfc", "leiden", "louvain", "bc", "ec")
_SHAPES_CHOICES = ("vpr", "uniform", "random")

#: Environment variables a spec may inject into its runner process —
#: deliberately only the deterministic fault-injection hook, so a
#: client can exercise crash containment but not mutate the daemon's
#: environment at large.
_ALLOWED_ENV = ("REPRO_FAULTS",)


class SpecError(ValueError):
    """A job spec failed validation (maps to HTTP 400)."""


@dataclass
class JobSpec:
    """A validated design + flow-config override bundle.

    ``design`` is either a benchmark name from Table 1 (``"aes"``) or
    a dict of :class:`repro.designs.generator.DesignSpec` fields for a
    synthetic design generated server-side.
    """

    design: Union[str, Dict[str, Any]]
    flow: str = "ours"
    tool: str = "openroad"
    clustering: str = "ppa"
    shapes: str = "vpr"
    routing: bool = True
    jobs: int = 1
    seed: int = 0
    env: Dict[str, str] = field(default_factory=dict)

    def design_label(self) -> str:
        """Short human label for listings (`aes`, `gen:tiny`, ...)."""
        if isinstance(self.design, str):
            return self.design
        return f"gen:{self.design.get('name', '?')}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def _design_spec_fields() -> Dict[str, Any]:
    from repro.designs.generator import DesignSpec

    return {f.name: f for f in dataclasses.fields(DesignSpec)}


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate a ``POST /jobs`` body into a :class:`JobSpec`.

    Raises :class:`SpecError` with a client-actionable message on any
    unknown key, wrong type, or out-of-vocabulary choice.
    """
    if not isinstance(payload, dict):
        raise SpecError("job spec must be a JSON object")
    known = {f.name for f in dataclasses.fields(JobSpec)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise SpecError(
            f"unknown spec field(s) {unknown}; accepted: {sorted(known)}"
        )
    if "design" not in payload:
        raise SpecError("job spec requires a 'design'")
    design = payload["design"]
    if isinstance(design, str):
        from repro.designs.benchmarks import BENCHMARKS

        if design not in BENCHMARKS:
            raise SpecError(
                f"unknown benchmark {design!r}; one of "
                f"{sorted(BENCHMARKS)} (or pass generator parameters)"
            )
    elif isinstance(design, dict):
        fields = _design_spec_fields()
        unknown = sorted(set(design) - set(fields))
        if unknown:
            raise SpecError(
                f"unknown generator field(s) {unknown}; accepted: "
                f"{sorted(fields)}"
            )
        for required in ("name", "num_instances"):
            if required not in design:
                raise SpecError(
                    f"generator design requires {required!r}"
                )
    else:
        raise SpecError(
            "'design' must be a benchmark name or a generator "
            "parameter object"
        )

    def _choice(key: str, choices) -> str:
        value = payload.get(key, getattr(JobSpec, key))
        if value not in choices:
            raise SpecError(f"{key!r} must be one of {list(choices)}")
        return value

    def _int(key: str, minimum: int) -> int:
        value = payload.get(key, getattr(JobSpec, key))
        if not isinstance(value, int) or isinstance(value, bool):
            raise SpecError(f"{key!r} must be an integer")
        if value < minimum:
            raise SpecError(f"{key!r} must be >= {minimum}")
        return value

    routing = payload.get("routing", JobSpec.routing)
    if not isinstance(routing, bool):
        raise SpecError("'routing' must be a boolean")
    env = payload.get("env", {})
    if not isinstance(env, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in env.items()
    ):
        raise SpecError("'env' must map strings to strings")
    disallowed = sorted(set(env) - set(_ALLOWED_ENV))
    if disallowed:
        raise SpecError(
            f"env key(s) {disallowed} not allowed; only "
            f"{list(_ALLOWED_ENV)} may be injected"
        )
    return JobSpec(
        design=design,
        flow=_choice("flow", _FLOW_CHOICES),
        tool=_choice("tool", _TOOL_CHOICES),
        clustering=_choice("clustering", _CLUSTERING_CHOICES),
        shapes=_choice("shapes", _SHAPES_CHOICES),
        routing=routing,
        jobs=_int("jobs", 1),
        seed=_int("seed", 0),
        env=dict(env),
    )


def spec_to_argv(
    spec: JobSpec, job_dir: str, cache_dir: Optional[str]
) -> List[str]:
    """Compile a spec to the exact ``repro flow`` argv the runner execs.

    The job's telemetry + monitor land in ``job_dir`` (so
    ``status.json`` / ``events.jsonl`` double as the wire format) and
    its QoR report in ``job_dir/result.json``.
    """
    argv = ["flow"]
    if isinstance(spec.design, str):
        argv += ["--benchmark", spec.design]
    else:
        argv += ["--generator", json.dumps(spec.design, sort_keys=True)]
    argv += [
        "--flow", spec.flow,
        "--tool", spec.tool,
        "--clustering", spec.clustering,
        "--shapes", spec.shapes,
        "--jobs", str(spec.jobs),
        "--seed", str(spec.seed),
        "--telemetry", job_dir,
        "--monitor",
        "--report", f"{job_dir}/{RESULT_FILENAME}",
    ]
    if not spec.routing:
        argv.append("--no-routing")
    if cache_dir and spec.flow == "ours":
        argv += ["--cache", cache_dir]
    if spec.flow == "ours":
        # Every served "ours" job leaves a stage checkpoint behind, so
        # POST /jobs/<id>/eco can re-open it for incremental edits.
        argv += ["--checkpoint", f"{job_dir}/{CHECKPOINT_DIRNAME}"]
    return argv


def eco_to_argv(
    eco: Dict[str, Any], job_dir: str, cache_dir: Optional[str]
) -> List[str]:
    """Compile a job's ``eco`` payload to the ``repro eco`` argv.

    The edit script itself is written to ``job_dir/edits.json`` by the
    runner (the payload carries the edits inline); the updated QoR +
    reuse summary lands in ``job_dir/result.json`` like any flow job's
    report, and telemetry/monitor land in ``job_dir`` so the live
    ``status.json`` endpoints work unchanged.
    """
    argv = [
        "eco",
        str(eco["checkpoint_dir"]),
        "--edits", f"{job_dir}/{ECO_EDITS_FILENAME}",
        "--report", f"{job_dir}/{RESULT_FILENAME}",
        "--telemetry", job_dir,
        "--monitor",
    ]
    if cache_dir:
        argv += ["--cache", cache_dir]
    return argv


#: QoR-report keys that carry wall-clock measurements; everything else
#: in a ``result.json`` is deterministic for a given spec.
_RUNTIME_KEYS = ("runtimes_s", "placement_runtime_s")


def deterministic_qor(report: Dict[str, Any]) -> Dict[str, Any]:
    """A QoR report minus its wall-clock fields.

    Two runs of the same spec produce byte-identical JSON dumps of
    this projection — the serve acceptance gate for "cache speed
    without QoR drift".
    """
    out = {k: v for k, v in report.items() if k not in _RUNTIME_KEYS}
    selection = out.get("shape_selection")
    if isinstance(selection, dict):
        out["shape_selection"] = {
            k: v for k, v in selection.items() if k != "runtime_s"
        }
    return out
