"""Bounded flow-worker pool: the execution half of the job server.

Each worker thread pops one job at a time off the shared queue and
supervises a **runner subprocess**
(``python -m repro.serve.runner <job_dir>``).  One process per job is
the containment boundary the tentpole requires:

* a flow that raises, aborts, is OOM-killed or injected with
  ``REPRO_FAULTS`` takes down only its own process — the daemon marks
  the job ``failed`` and serves the next one;
* the process-global perf/telemetry/monitor registries stay
  single-run, so each job's ``status.json`` / ``events.jsonl`` /
  ``run.json`` are exactly what the one-shot CLI would have written
  into the same directory (the byte-identity guarantee rides on this);
* N workers bound the machine to N concurrent flows no matter how
  deep the queue grows.

All jobs share one content-addressed :class:`EvaluationCache`
directory; keys are digests of (sub-netlist, shape, config), so
concurrent writers are naturally safe and repeat traffic on popular
designs is served warm.  Because the per-writer opportunistic GC
trigger fires every ``GC_WRITE_INTERVAL`` puts *of one short-lived
writer* — which a job rarely reaches — the pool runs its own janitor
sweep after every finished job.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
from typing import Dict, List, Optional

from repro.cache import EvaluationCache
from repro.serve.registry import Job, JobRegistry
from repro.serve.schemas import ERROR_FILENAME, RUNNER_LOG_FILENAME

_STOP = object()


def _runner_env(job: Job) -> Dict[str, str]:
    """The runner subprocess environment.

    Inherits the daemon's environment, guarantees the repro package is
    importable (the daemon may run from a source tree without an
    installed package), and applies the spec's allow-listed overrides
    (fault injection).
    """
    env = dict(os.environ)
    import repro

    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
    env.update(job.spec.env)
    return env


def _runner_error(job: Job, returncode: int) -> str:
    """Best diagnosis of a failed runner, most specific source first."""
    try:
        payload = json.loads((job.dir / ERROR_FILENAME).read_text())
        if payload.get("error"):
            return str(payload["error"])
    except (OSError, ValueError):
        pass
    from repro.monitor import load_status

    status = load_status(str(job.dir))
    if status and status.get("error"):
        return str(status["error"])
    return f"runner exited with code {returncode}"


def _finished_counters(job: Job) -> Dict[str, int]:
    """Perf counters from the job's run.json (empty when unreadable)."""
    try:
        run = json.loads((job.dir / "run.json").read_text())
        counters = run.get("perf", {}).get("counters", {})
        return {
            k: int(v)
            for k, v in counters.items()
            if isinstance(v, (int, float))
        }
    except (OSError, ValueError):
        return {}


class FlowWorkerPool:
    """N worker threads supervising one runner subprocess each."""

    def __init__(
        self,
        registry: JobRegistry,
        cache: Optional[EvaluationCache],
        workers: int = 2,
        job_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.registry = registry
        self.cache = cache
        self.job_timeout = job_timeout
        self._queue: "queue.Queue" = queue.Queue()
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"flow-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- introspection (the /stats endpoint) ---------------------------
    @property
    def workers(self) -> int:
        return len(self._threads)

    @property
    def busy(self) -> int:
        with self._busy_lock:
            return self._busy

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- submission ----------------------------------------------------
    def submit(self, job: Job) -> None:
        if self._closed:
            raise RuntimeError("pool is shut down")
        self._queue.put(job)

    # -- shutdown ------------------------------------------------------
    def shutdown(self, timeout: Optional[float] = None) -> List[Job]:
        """Stop accepting work and drain: running jobs finish, jobs
        still queued are failed as cancelled.  Returns the cancelled
        jobs."""
        self._closed = True
        cancelled: List[Job] = []
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            self.registry.mark_failed(job, "cancelled: server shutting down")
            cancelled.append(job)
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        return cancelled

    # -- the worker loop -----------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            with self._busy_lock:
                self._busy += 1
            try:
                self._run_job(job)
            except Exception as exc:  # never kill the worker thread
                self.registry.mark_failed(job, f"worker error: {exc!r}")
            finally:
                with self._busy_lock:
                    self._busy -= 1
                self._janitor_gc()

    def _run_job(self, job: Job) -> None:
        self.registry.mark_running(job)
        command = [
            sys.executable,
            "-m",
            "repro.serve.runner",
            str(job.dir),
        ]
        log_path = job.dir / RUNNER_LOG_FILENAME
        with open(log_path, "ab") as log:
            try:
                process = subprocess.Popen(
                    command,
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=_runner_env(job),
                    cwd=str(job.dir),
                )
                returncode = process.wait(timeout=self.job_timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
                self.registry.mark_failed(
                    job, f"job exceeded timeout of {self.job_timeout:g}s"
                )
                return
        if returncode == 0 and (job.dir / "result.json").is_file():
            self.registry.mark_done(job, _finished_counters(job))
        else:
            self.registry.mark_failed(job, _runner_error(job, returncode))

    def _janitor_gc(self) -> None:
        """Daemon-side LRU sweep of the shared cache.

        Individual jobs are short-lived writers that rarely reach the
        per-instance opportunistic GC trigger, so the long-lived pool
        owns keeping the shared store within bounds.
        """
        if self.cache is None:
            return
        try:
            self.cache.gc()
        except Exception:  # pragma: no cover - GC is best-effort
            pass
