"""The daemon's job table.

One :class:`Job` per submission, living in memory for the daemon's
lifetime and on disk as ``<run_root>/jobs/<job_id>/``.  The directory
is the job's *entire* observable state — ``job.json`` (spec),
``status.json`` + ``events.jsonl`` (written live by the runner
process's monitor/telemetry), ``result.json`` (final QoR) and
``runner.log`` — so every HTTP endpoint is a file read, and a crashed
daemon leaves behind directories a human can still inspect with
``repro top`` / ``repro report``.

All registry methods are thread-safe: HTTP handler threads and flow
worker threads share one registry under a single lock.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.ioutil import atomic_write_bytes
from repro.serve.schemas import (
    JOB_FILENAME,
    JOB_STATES,
    SCHEMA,
    JobSpec,
)

#: Cache/perf counters aggregated across finished jobs into ``/stats``.
AGGREGATED_COUNTERS = (
    "vpr.cache.hit",
    "vpr.cache.miss",
    "vpr.cache.store",
    "vpr.cache.corrupt",
    "vpr.cache.evict",
)


@dataclass
class Job:
    """One submitted flow run and its lifecycle bookkeeping."""

    id: str
    spec: JobSpec
    dir: Path
    state: str = "queued"
    created_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    error: Optional[str] = None
    counters: Dict[str, int] = field(default_factory=dict)
    #: ECO jobs only: {"parent": job id, "checkpoint_dir": ...,
    #: "edits": [...]} — the runner compiles this to `repro eco` argv.
    eco: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """The job record served by ``/jobs`` endpoints."""
        out: Dict[str, Any] = {
            "schema": SCHEMA,
            "id": self.id,
            "design": self.spec.design_label(),
            "state": self.state,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "spec": self.spec.to_dict(),
        }
        if self.eco is not None:
            out["eco"] = {
                "parent": self.eco.get("parent"),
                "edits": len(self.eco.get("edits", [])),
            }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.started_unix and self.finished_unix:
            out["wall_s"] = self.finished_unix - self.started_unix
        return out


class JobRegistry:
    """Thread-safe id allocation, lookup and state transitions."""

    def __init__(self, run_root: str) -> None:
        self.run_root = Path(run_root)
        self.jobs_root = self.run_root / "jobs"
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 0
        self._totals: Dict[str, int] = {}

    # -- creation ------------------------------------------------------
    def create(
        self,
        spec: JobSpec,
        cache_dir: Optional[str],
        eco: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Allocate an id + directory and persist ``job.json``.

        ``job.json`` carries everything the runner subprocess needs:
        the validated spec, the shared cache directory, and — for ECO
        jobs — the parent checkpoint + inline edit script.
        """
        with self._lock:
            job_id = f"j{self._next_id:05d}"
            self._next_id += 1
            job = Job(
                id=job_id, spec=spec, dir=self.jobs_root / job_id, eco=eco
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
        job.dir.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, Any] = {
            "schema": SCHEMA,
            "id": job.id,
            "spec": spec.to_dict(),
            "cache_dir": cache_dir,
            "created_unix": job.created_unix,
        }
        if eco is not None:
            payload["eco"] = eco
        atomic_write_bytes(
            job.dir / JOB_FILENAME,
            json.dumps(payload, sort_keys=True, indent=2).encode(),
            durable=False,
        )
        return job

    # -- lookup --------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (all states always present)."""
        out = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def totals(self) -> Dict[str, int]:
        """Aggregated counters folded in from finished jobs."""
        with self._lock:
            return dict(self._totals)

    # -- transitions (worker threads) ----------------------------------
    def mark_running(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.started_unix = time.time()

    def mark_done(self, job: Job, counters: Dict[str, int]) -> None:
        with self._lock:
            job.state = "done"
            job.finished_unix = time.time()
            job.counters = dict(counters)
            for key in AGGREGATED_COUNTERS:
                if counters.get(key):
                    self._totals[key] = (
                        self._totals.get(key, 0) + int(counters[key])
                    )

    def mark_failed(self, job: Job, error: str) -> None:
        with self._lock:
            job.state = "failed"
            job.finished_unix = job.finished_unix or time.time()
            if job.started_unix is None:
                job.started_unix = job.finished_unix
            job.error = error
