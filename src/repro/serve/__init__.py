"""Flow-as-a-service: a long-lived job server over the placement flow.

``repro serve`` wraps :class:`~repro.core.flow.ClusteredPlacementFlow`
in a daemon with an async job queue: clients ``POST /jobs`` a design
spec plus flow-config overrides and get a job id back; live status
streams straight from each job's ``status.json`` (schema
``repro.monitor/1``) and ``events.jsonl``; all jobs share one
content-addressed :class:`~repro.cache.EvaluationCache`, so repeat
traffic on popular designs is served at cache speed.  Each job runs
in its own runner subprocess and telemetry out-dir — crash containment
per job, byte-identical QoR to the one-shot CLI.

See ``docs/serving.md`` for the API and operational semantics, and
``benchmarks/bench_serve_load.py`` for the throughput/latency gate.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.pool import FlowWorkerPool
from repro.serve.registry import Job, JobRegistry
from repro.serve.schemas import (
    JOB_STATES,
    SCHEMA,
    JobSpec,
    SpecError,
    deterministic_qor,
    parse_job_spec,
    spec_to_argv,
)
from repro.serve.server import (
    SERVER_FILENAME,
    ServeApp,
    ServeServer,
    run_serve,
)

__all__ = [
    "FlowWorkerPool",
    "JOB_STATES",
    "Job",
    "JobRegistry",
    "JobSpec",
    "SCHEMA",
    "SERVER_FILENAME",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "SpecError",
    "deterministic_qor",
    "parse_job_spec",
    "run_serve",
    "spec_to_argv",
]
