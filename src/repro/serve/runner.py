"""The per-job runner process: ``python -m repro.serve.runner JOBDIR``.

Reads the job directory's ``job.json`` (validated spec + shared cache
directory), compiles it to CLI argv and calls :func:`repro.cli.main` —
so a served job executes the *identical* code path as
``python -m repro flow ...`` and its QoR report is byte-identical
(modulo wall-clock fields) to a CLI run of the same spec.

The runner is also the crash-containment boundary: any failure —
spec rot, a flow exception, an injected ``REPRO_FAULTS`` abort — ends
this process with a non-zero exit code and, when possible, a
``job_error.json`` diagnosis, while the daemon that spawned it keeps
serving.  The flow's ``--monitor`` flag additionally leaves a final
``failed`` ``status.json`` behind for pollers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.ioutil import atomic_write_bytes
from repro.serve.schemas import (
    ECO_EDITS_FILENAME,
    ERROR_FILENAME,
    JOB_FILENAME,
    SCHEMA,
    eco_to_argv,
    parse_job_spec,
    spec_to_argv,
)


def _write_error(job_dir: Path, message: str) -> None:
    try:
        atomic_write_bytes(
            job_dir / ERROR_FILENAME,
            json.dumps(
                {"schema": SCHEMA, "error": message}, sort_keys=True
            ).encode(),
            durable=False,
        )
    except OSError:  # pragma: no cover - diagnosis is best-effort
        pass


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.serve.runner JOBDIR", file=sys.stderr)
        return 2
    job_dir = Path(argv[0])
    try:
        payload = json.loads((job_dir / JOB_FILENAME).read_text())
        spec = parse_job_spec(payload["spec"])
        eco = payload.get("eco")
        if eco is not None:
            # ECO job: materialise the inline edit script, then run the
            # exact `repro eco` code path against the parent checkpoint.
            from repro.eco import SCHEMA as ECO_SCHEMA
            from repro.eco import parse_edits

            parse_edits(eco.get("edits", []))
            atomic_write_bytes(
                job_dir / ECO_EDITS_FILENAME,
                json.dumps(
                    {"schema": ECO_SCHEMA, "edits": eco.get("edits", [])},
                    sort_keys=True,
                    indent=2,
                ).encode(),
                durable=False,
            )
            flow_argv = eco_to_argv(
                eco, str(job_dir), payload.get("cache_dir")
            )
        else:
            flow_argv = spec_to_argv(
                spec, str(job_dir), payload.get("cache_dir")
            )
    except Exception as exc:
        _write_error(job_dir, f"bad job spec: {exc!r}")
        return 2

    from repro.cli import main as cli_main

    try:
        return int(cli_main(flow_argv) or 0)
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else 1
        if code != 0:
            _write_error(job_dir, f"flow exited: {exc.code!r}")
        return code
    except BaseException as exc:
        _write_error(job_dir, repr(exc))
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
