"""Tiny stdlib client for the job server.

Used by the load benchmark, the serve smoke test and the test-suite;
also a copy-paste reference for anyone driving the API from scripts.
Every method maps 1:1 to an endpoint and returns the decoded JSON
body; non-2xx responses raise :class:`ServeError` carrying the status
code and the server's error message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.serve.schemas import SCHEMA  # noqa: F401 - re-exported

#: Terminal job states (polling stops on these).
TERMINAL_STATES = ("done", "failed")


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """One server's base URL plus request plumbing."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    @classmethod
    def discover(
        cls, run_root: str, timeout: float = 30.0
    ) -> "ServeClient":
        """Wait for ``<run_root>/server.json`` and connect to it.

        The daemon writes the file only after its socket is bound, so
        this doubles as the "server is up" barrier for subprocesses.
        """
        path = Path(run_root) / "server.json"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                info = json.loads(path.read_text())
                return cls(info["url"])
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        raise TimeoutError(f"no server.json in {run_root} after {timeout}s")

    # -- plumbing ------------------------------------------------------
    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServeError(exc.code, message) from None

    # -- endpoints -----------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        return self.request("GET", "/")

    def submit(self, spec: Dict[str, Any]) -> str:
        """POST a job spec; returns the allocated job id."""
        return self.request("POST", "/jobs", spec)["job_id"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")

    def events(
        self, job_id: str, offset: int = 0, limit: int = 100
    ) -> Dict[str, Any]:
        return self.request(
            "GET", f"/jobs/{job_id}/events?offset={offset}&limit={limit}"
        )

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}/result")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("POST", "/shutdown", {})

    # -- polling helpers -----------------------------------------------
    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll one job until it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll)

    def wait_all(
        self,
        job_ids: List[str],
        timeout: float = 600.0,
        poll: float = 0.1,
    ) -> Dict[str, Dict[str, Any]]:
        """Poll many jobs until all are terminal; id -> final record."""
        deadline = time.monotonic() + timeout
        done: Dict[str, Dict[str, Any]] = {}
        pending = list(job_ids)
        while pending:
            still_pending = []
            for job_id in pending:
                record = self.job(job_id)
                if record["state"] in TERMINAL_STATES:
                    done[job_id] = record
                else:
                    still_pending.append(job_id)
            pending = still_pending
            if pending:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"{len(pending)} job(s) unfinished after {timeout}s"
                    )
                time.sleep(poll)
        return done
