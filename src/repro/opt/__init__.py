"""Netlist optimisation substrate (OpenROAD resizer substitute).

Post-placement optimisations the paper's flows run implicitly inside
OpenROAD (`resizer`) / Innovus (`optDesign`): high-fanout buffering and
gate sizing.  The STA delay model includes a *virtual* buffering term
for unbuffered netlists; running these passes materialises the buffers
so the virtual term vanishes.
"""

from repro.opt.buffering import BufferingResult, buffer_high_fanout_nets
from repro.opt.sizing import SizingResult, resize_gates

__all__ = [
    "BufferingResult",
    "buffer_high_fanout_nets",
    "SizingResult",
    "resize_gates",
]
