"""Greedy gate sizing (the resizer's second job).

Upsizes cells on negative-slack paths to their stronger drive variants
(X1 -> X2 -> X4) when the load-dependent delay reduction exceeds the
intrinsic-delay increase, and downsizes near-zero-load cells to save
power.  A deliberately simple linear-delay sizer: one pass over the
failing endpoints' worst paths, matching the spirit of the
post-placement `repair_timing` step in the paper's flows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.netlist.design import Design, MasterCell
from repro.sta.analysis import TimingAnalyzer
from repro.sta.delay import WireDelayModel, effective_cell_delay
from repro.sta.flat import invalidate_flat
from repro.sta.graph import TimingGraph
from repro.sta.paths import find_path_ends

_DRIVE_RE = re.compile(r"^(?P<base>.+)_X(?P<drive>\d+)$")


@dataclass
class SizingResult:
    """Outcome of the sizing pass.

    Attributes:
        upsized: Instances moved to a stronger drive.
        downsized: Instances moved to a weaker drive.
        paths_touched: Worst paths examined.
    """

    upsized: int
    downsized: int
    paths_touched: int


def _variant(design: Design, master: MasterCell, factor: int) -> Optional[MasterCell]:
    """The master's drive-strength sibling scaled by ``factor``."""
    match = _DRIVE_RE.match(master.name)
    if not match:
        return None
    drive = int(match.group("drive")) * factor
    name = f"{match.group('base')}_X{drive}"
    return design.masters.get(name)


def _cell_delay(master: MasterCell, load: float) -> float:
    return effective_cell_delay(
        master.intrinsic_delay, master.drive_resistance, load
    )


def resize_gates(
    design: Design,
    graph: TimingGraph,
    wire_model: WireDelayModel,
    max_paths: int = 50,
    downsize_load: float = 3.0,
) -> SizingResult:
    """One sizing pass over the worst failing paths.

    Args:
        design: Placed design (mutated in place: masters swapped).
        graph: The design's timing graph (stays valid: sizing does not
            change connectivity).
        wire_model: Geometry source for loads.
        max_paths: Worst paths examined for upsizing.
        downsize_load: Cells driving less than this load (fF) and not
            on examined paths are candidates for downsizing.

    Returns:
        Counts of resized instances.
    """
    analyzer = TimingAnalyzer(graph, wire_model)
    analyzer.update()
    paths = [
        p for p in find_path_ends(analyzer, group_count=max_paths) if p.slack < 0
    ]

    upsized = 0
    on_paths: set = set()
    for path in paths:
        for node in path.nodes:
            inst, pin = graph.info(node)
            if inst is None or inst.master.is_sequential or inst.master.is_macro:
                continue
            on_paths.add(inst.index)
            outputs = inst.master.output_pins()
            if not outputs:
                continue
            net = inst.net_on(outputs[0].name)
            if net is None:
                continue
            load = wire_model.net_load(net)
            stronger = _variant(design, inst.master, 2)
            if stronger is None:
                continue
            if _cell_delay(stronger, load) < _cell_delay(inst.master, load):
                inst.master = stronger
                upsized += 1

    downsized = 0
    for inst in design.instances:
        if inst.index in on_paths:
            continue
        master = inst.master
        if master.is_sequential or master.is_macro:
            continue
        outputs = master.output_pins()
        if not outputs:
            continue
        net = inst.net_on(outputs[0].name)
        if net is None:
            continue
        if wire_model.net_load(net) > downsize_load:
            continue
        match = _DRIVE_RE.match(master.name)
        if not match or int(match.group("drive")) <= 1:
            continue
        weaker = design.masters.get(f"{match.group('base')}_X1")
        if weaker is not None:
            inst.master = weaker
            downsized += 1

    if upsized or downsized:
        # Master swaps change the cell delays captured by the flat
        # compilation; force a recompile for the next analyzer.
        invalidate_flat(graph)

    return SizingResult(
        upsized=upsized, downsized=downsized, paths_touched=len(paths)
    )
