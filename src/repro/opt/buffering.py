"""High-fanout net buffering (repeater insertion).

Nets whose driver sees more than ``max_load`` fF are split by a
buffer tree: sinks are grouped geometrically (k-means-style around
sink medians), each group is re-driven by an inserted buffer placed at
the group's centroid, recursively until every driver's load is within
budget.  This materialises the buffer trees the STA otherwise models
virtually (:func:`repro.sta.delay.effective_cell_delay`), and is the
role OpenROAD's resizer / Innovus optDesign play in the paper's flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.netlist.design import Design, PinRef
from repro.sta.delay import BUFFERED_LOAD_FF, WireDelayModel

#: Buffer master used for insertion.
BUFFER_MASTER = "BUF_X4"

#: Safety bound on recursion depth per net.
MAX_LEVELS = 6


@dataclass
class BufferingResult:
    """Outcome of the buffering pass.

    Attributes:
        buffers_inserted: Number of buffer instances added.
        nets_buffered: Number of original nets that needed buffering.
        max_fanout_before: Largest signal-net fanout before the pass.
        max_fanout_after: Largest signal-net fanout after the pass.
    """

    buffers_inserted: int
    nets_buffered: int
    max_fanout_before: int
    max_fanout_after: int


def _sink_location(design: Design, ref: PinRef) -> Tuple[float, float]:
    if ref.instance is not None:
        return ref.instance.x, ref.instance.y
    port = design.ports[ref.pin_name]
    return port.x, port.y


def _split_sinks(
    design: Design, sinks: Sequence[PinRef], groups: int
) -> List[List[PinRef]]:
    """Split sinks into ``groups`` geometric clusters by sorting along
    the longer spread axis (median cuts — deterministic and cheap)."""
    if groups <= 1 or len(sinks) <= 1:
        return [list(sinks)]
    points = [_sink_location(design, s) for s in sinks]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
    order = sorted(range(len(sinks)), key=lambda i: points[i][axis])
    half = len(order) // 2
    left = [sinks[i] for i in order[:half]]
    right = [sinks[i] for i in order[half:]]
    out = []
    for part in (left, right):
        out.extend(_split_sinks(design, part, groups // 2))
    return [g for g in out if g]


def _sink_load(design: Design, sinks: Sequence[PinRef]) -> float:
    return sum(ref.capacitance(design) for ref in sinks)


def buffer_high_fanout_nets(
    design: Design,
    wire_model: WireDelayModel,
    max_load: float = BUFFERED_LOAD_FF,
    buffer_master: str = BUFFER_MASTER,
) -> BufferingResult:
    """Insert buffers so no signal driver sees more than ``max_load``.

    Buffers are placed at sink-group centroids and named
    ``<net>_buf<k>``; the design remains structurally valid (one driver
    per net) and the timing graph must be rebuilt afterwards.
    """
    master = design.masters.get(buffer_master)
    if master is None:
        # Fall back to any buffer in the design's library.
        candidates = [
            m
            for name, m in sorted(design.masters.items())
            if m.cell_class == "buf"
        ]
        master = candidates[-1] if candidates else None

    before = max(
        (n.fanout for n in design.nets if not n.is_clock), default=0
    )
    buffers = 0
    nets_buffered = 0
    counter = 0

    # Snapshot: inserted nets must not be revisited within the pass
    # (their loads are within budget by construction).
    original_nets = [
        n for n in design.nets if not n.is_clock and n.driver is not None
    ]
    for net in original_nets:
        if wire_model.net_load(net) <= max_load:
            continue
        if master is None:
            raise KeyError(
                f"no buffer master available (wanted {buffer_master!r})"
            )
        nets_buffered += 1
        level = 0
        frontier = net
        while (
            wire_model.net_load(frontier) > max_load and level < MAX_LEVELS
        ):
            level += 1
            sinks = list(frontier.sinks)
            # Number of groups so each group's pin load fits the
            # budget, leaving headroom for wire capacitance.
            groups = 2
            while (
                _sink_load(design, sinks) / groups > 0.5 * max_load
                and groups < len(sinks)
            ):
                groups *= 2
            groups = min(groups, max(2, len(sinks)))
            partitions = _split_sinks(design, sinks, groups)
            if len(partitions) < 2:
                break
            # Rewire: frontier keeps the buffers as its only sinks.
            frontier.sinks = []
            for part in partitions:
                if not part:
                    continue
                counter += 1
                buffers += 1
                name = f"{net.name}_buf{counter}"
                buf = design.add_instance(name, master)
                points = [_sink_location(design, s) for s in part]
                buf.x = sum(p[0] for p in points) / len(points)
                buf.y = sum(p[1] for p in points) / len(points)
                frontier.sinks.append(PinRef(buf, "A"))
                buf.pin_nets["A"] = frontier
                new_net = design.add_net(f"{name}_out")
                design.connect_instance_pin(new_net, buf, "Y")
                for sink in part:
                    new_net.sinks.append(sink)
                    if sink.instance is not None:
                        sink.instance.pin_nets[sink.pin_name] = new_net
            # Recurse into the worst child if still over budget: the
            # while loop re-checks the frontier (driver side) only; the
            # children are within budget by the group sizing above
            # unless wire cap dominates, handled by the next pass.

    after = max(
        (n.fanout for n in design.nets if not n.is_clock), default=0
    )
    return BufferingResult(
        buffers_inserted=buffers,
        nets_buffered=nets_buffered,
        max_fanout_before=before,
        max_fanout_after=after,
    )
