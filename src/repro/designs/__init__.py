"""Synthetic benchmark substrate.

The paper evaluates on six open testcases (aes, jpeg, ariane,
BlackParrot, MegaBoom, MemPool Group) implemented in the NanGate45
enablement.  Those netlists and the PDK are not available offline, so
this package provides (i) a NanGate45-lite standard-cell library with
the same functional mix, and (ii) a Rent's-rule netlist generator that
reproduces each testcase's statistics at ~1/40 scale — instance/net
counts, logical-hierarchy depth, sequential fraction, macro content and
clock constraints — which is what the clustering and placement
algorithms actually consume.
"""

from repro.designs.nangate45 import make_library
from repro.designs.generator import DesignSpec, generate_design
from repro.designs.benchmarks import (
    BENCHMARKS,
    benchmark_spec,
    benchmark_table,
    load_benchmark,
)

__all__ = [
    "make_library",
    "DesignSpec",
    "generate_design",
    "BENCHMARKS",
    "benchmark_spec",
    "benchmark_table",
    "load_benchmark",
]
