"""ASAP7-lite standard-cell library (second enablement).

The paper's conclusion pursues "additional testcases, design
enablements and P&R tools"; this module provides a second enablement
so that claim is testable: a 7 nm-class predictive library with the
same functional footprint as the NanGate45-lite library but scaled
geometry and electrical characteristics —

* row height 0.27 um (7.5-track) vs 1.4 um,
* site width 0.054 um,
* input capacitances ~5x smaller,
* faster intrinsic delays, higher wire-resistance sensitivity,
* lower per-toggle internal energy, higher leakage density.

Cell names carry an ``ASAP7_`` prefix so a design's enablement is
self-describing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.design import CellPin, MasterCell, PinDirection

#: Row height of the ASAP7-lite enablement in microns.
ROW_HEIGHT = 0.27

#: Site width in microns.
SITE_WIDTH = 0.054

#: Wire RC for this enablement (used by flows that parameterise it):
#: thinner wires are more resistive but shorter.
R_PER_UM = 0.010
C_PER_UM = 0.12


def _pin(name: str, direction: PinDirection, cap: float, clock: bool = False) -> CellPin:
    return CellPin(name=name, direction=direction, capacitance=cap, is_clock=clock)


def _comb_cell(
    name: str,
    inputs: List[str],
    sites: int,
    intrinsic: float,
    resistance: float,
    input_cap: float,
    leakage: float,
    internal_energy: float,
    cell_class: str,
) -> MasterCell:
    master = MasterCell(
        name=name,
        width=sites * SITE_WIDTH,
        height=ROW_HEIGHT,
        intrinsic_delay=intrinsic,
        drive_resistance=resistance,
        leakage_power=leakage,
        internal_energy=internal_energy,
        cell_class=cell_class,
    )
    for pin_name in inputs:
        master.pins[pin_name] = _pin(pin_name, PinDirection.INPUT, input_cap)
    master.pins["Y"] = _pin("Y", PinDirection.OUTPUT, 0.0)
    return master


def make_library() -> Dict[str, MasterCell]:
    """Create the ASAP7-lite master-cell library."""
    masters: Dict[str, MasterCell] = {}

    comb_templates: List[Tuple[str, List[str], int, float, str]] = [
        ("INV", ["A"], 3, 0.004, "inv"),
        ("BUF", ["A"], 4, 0.007, "buf"),
        ("NAND2", ["A", "B"], 4, 0.006, "logic"),
        ("NOR2", ["A", "B"], 4, 0.007, "logic"),
        ("AND2", ["A", "B"], 5, 0.009, "logic"),
        ("OR2", ["A", "B"], 5, 0.010, "logic"),
        ("AOI21", ["A", "B", "C"], 6, 0.008, "logic"),
        ("OAI21", ["A", "B", "C"], 6, 0.009, "logic"),
        ("XOR2", ["A", "B"], 7, 0.014, "arith"),
        ("XNOR2", ["A", "B"], 7, 0.014, "arith"),
        ("FA", ["A", "B", "CI"], 12, 0.019, "arith"),
        ("HA", ["A", "B"], 9, 0.016, "arith"),
        ("MUX2", ["A", "B", "S"], 8, 0.012, "mux"),
    ]
    for base, inputs, sites, intrinsic, cell_class in comb_templates:
        for strength in (1, 2, 4):
            name = f"ASAP7_{base}_X{strength}"
            masters[name] = _comb_cell(
                name=name,
                inputs=inputs,
                sites=sites + (strength - 1) * 2,
                intrinsic=intrinsic * (1.0 + 0.1 * (strength - 1)),
                resistance=0.0080 / strength,
                input_cap=0.20 + 0.12 * (strength - 1),
                leakage=2.5e-5 * strength,
                internal_energy=0.06 * strength,
                cell_class=cell_class,
            )

    for strength in (1, 2):
        name = f"ASAP7_DFF_X{strength}"
        dff = MasterCell(
            name=name,
            width=(17 + 3 * (strength - 1)) * SITE_WIDTH,
            height=ROW_HEIGHT,
            is_sequential=True,
            clk_to_q=0.030 / (0.5 + 0.5 * strength),
            setup_time=0.013,
            hold_time=0.004,
            drive_resistance=0.0080 / strength,
            leakage_power=9e-5 * strength,
            internal_energy=0.30 * strength,
            cell_class="seq",
        )
        dff.pins["D"] = _pin("D", PinDirection.INPUT, 0.22)
        dff.pins["CK"] = _pin("CK", PinDirection.INPUT, 0.16, clock=True)
        dff.pins["Q"] = _pin("Q", PinDirection.OUTPUT, 0.0)
        masters[name] = dff

    ram = MasterCell(
        name="ASAP7_RAM256X32",
        width=10.0,
        height=8.0,
        is_macro=True,
        is_sequential=True,
        clk_to_q=0.120,
        setup_time=0.040,
        drive_resistance=0.004,
        leakage_power=4e-2,
        internal_energy=8.0,
        cell_class="macro",
    )
    for i in range(8):
        ram.pins[f"A{i}"] = _pin(f"A{i}", PinDirection.INPUT, 0.32)
    for i in range(8):
        ram.pins[f"D{i}"] = _pin(f"D{i}", PinDirection.INPUT, 0.32)
    ram.pins["WE"] = _pin("WE", PinDirection.INPUT, 0.32)
    ram.pins["CK"] = _pin("CK", PinDirection.INPUT, 0.5, clock=True)
    for i in range(8):
        ram.pins[f"Q{i}"] = _pin(f"Q{i}", PinDirection.OUTPUT, 0.0)
    masters["ASAP7_RAM256X32"] = ram

    return masters


#: Combinational mix (same shape as the NanGate45-lite mix).
COMB_MIX: List[Tuple[str, float]] = [
    (f"ASAP7_{base}", weight)
    for base, weight in [
        ("INV_X1", 0.14),
        ("INV_X2", 0.04),
        ("BUF_X1", 0.06),
        ("BUF_X2", 0.03),
        ("NAND2_X1", 0.16),
        ("NAND2_X2", 0.04),
        ("NOR2_X1", 0.09),
        ("AND2_X1", 0.07),
        ("OR2_X1", 0.05),
        ("AOI21_X1", 0.07),
        ("OAI21_X1", 0.06),
        ("XOR2_X1", 0.06),
        ("XNOR2_X1", 0.03),
        ("FA_X1", 0.03),
        ("HA_X1", 0.02),
        ("MUX2_X1", 0.05),
    ]
]

#: Flip-flop mix.
SEQ_MIX: List[Tuple[str, float]] = [
    ("ASAP7_DFF_X1", 0.85),
    ("ASAP7_DFF_X2", 0.15),
]
