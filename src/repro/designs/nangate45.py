"""NanGate45-lite standard-cell library.

A reduced standard-cell library modelled on the NanGate45 open
enablement used by the paper: the usual combinational gates at several
drive strengths, a D flip-flop, and a RAM hard macro.  Geometry, pin
capacitance, linear-delay coefficients and power numbers are
representative of a 45 nm library (row height 1.4 um, gate caps of a
few fF, FO4-ish delays of tens of ps).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.design import CellPin, MasterCell, PinDirection

#: Row height of the NanGate45 enablement in microns.
ROW_HEIGHT = 1.4

#: Site width in microns; cell widths are multiples of this.
SITE_WIDTH = 0.19


def _pin(name: str, direction: PinDirection, cap: float, clock: bool = False) -> CellPin:
    return CellPin(name=name, direction=direction, capacitance=cap, is_clock=clock)


def _comb_cell(
    name: str,
    inputs: List[str],
    sites: int,
    intrinsic: float,
    resistance: float,
    input_cap: float,
    leakage: float,
    internal_energy: float,
    cell_class: str,
) -> MasterCell:
    """Build a combinational cell with one output pin ``Y``."""
    master = MasterCell(
        name=name,
        width=sites * SITE_WIDTH,
        height=ROW_HEIGHT,
        intrinsic_delay=intrinsic,
        drive_resistance=resistance,
        leakage_power=leakage,
        internal_energy=internal_energy,
        cell_class=cell_class,
    )
    for pin_name in inputs:
        master.pins[pin_name] = _pin(pin_name, PinDirection.INPUT, input_cap)
    master.pins["Y"] = _pin("Y", PinDirection.OUTPUT, 0.0)
    return master


def make_library() -> Dict[str, MasterCell]:
    """Create the NanGate45-lite master-cell library.

    Returns a dict keyed by cell name.  Drive strengths X1/X2/X4 scale
    width up and drive resistance down, as in the real library.
    """
    masters: Dict[str, MasterCell] = {}

    comb_templates: List[Tuple[str, List[str], int, float, str]] = [
        # (base name, input pins, base sites, base intrinsic delay, class)
        ("INV", ["A"], 3, 0.012, "inv"),
        ("BUF", ["A"], 4, 0.020, "buf"),
        ("NAND2", ["A", "B"], 4, 0.018, "logic"),
        ("NOR2", ["A", "B"], 4, 0.020, "logic"),
        ("AND2", ["A", "B"], 5, 0.026, "logic"),
        ("OR2", ["A", "B"], 5, 0.028, "logic"),
        ("AOI21", ["A", "B", "C"], 6, 0.024, "logic"),
        ("OAI21", ["A", "B", "C"], 6, 0.025, "logic"),
        ("XOR2", ["A", "B"], 7, 0.040, "arith"),
        ("XNOR2", ["A", "B"], 7, 0.041, "arith"),
        ("FA", ["A", "B", "CI"], 12, 0.055, "arith"),
        ("HA", ["A", "B"], 9, 0.045, "arith"),
        ("MUX2", ["A", "B", "S"], 8, 0.035, "mux"),
    ]
    for base, inputs, sites, intrinsic, cell_class in comb_templates:
        for strength in (1, 2, 4):
            name = f"{base}_X{strength}"
            masters[name] = _comb_cell(
                name=name,
                inputs=inputs,
                sites=sites + (strength - 1) * 2,
                intrinsic=intrinsic * (1.0 + 0.1 * (strength - 1)),
                resistance=0.0045 / strength,
                input_cap=1.0 + 0.6 * (strength - 1),
                leakage=8e-6 * strength,
                internal_energy=0.35 * strength,
                cell_class=cell_class,
            )

    for strength in (1, 2):
        name = f"DFF_X{strength}"
        dff = MasterCell(
            name=name,
            width=(17 + 3 * (strength - 1)) * SITE_WIDTH,
            height=ROW_HEIGHT,
            is_sequential=True,
            clk_to_q=0.085 / (0.5 + 0.5 * strength),
            setup_time=0.038,
            hold_time=0.010,
            drive_resistance=0.0045 / strength,
            leakage_power=3.2e-5 * strength,
            internal_energy=1.8 * strength,
            cell_class="seq",
        )
        dff.pins["D"] = _pin("D", PinDirection.INPUT, 1.1)
        dff.pins["CK"] = _pin("CK", PinDirection.INPUT, 0.8, clock=True)
        dff.pins["Q"] = _pin("Q", PinDirection.OUTPUT, 0.0)
        masters[name] = dff

    ram = MasterCell(
        name="RAM256X32",
        width=48.0,
        height=40.0,
        is_macro=True,
        is_sequential=True,
        clk_to_q=0.35,
        setup_time=0.12,
        drive_resistance=0.002,
        leakage_power=1.5e-2,
        internal_energy=45.0,
        cell_class="macro",
    )
    for i in range(8):
        ram.pins[f"A{i}"] = _pin(f"A{i}", PinDirection.INPUT, 1.6)
    for i in range(8):
        ram.pins[f"D{i}"] = _pin(f"D{i}", PinDirection.INPUT, 1.6)
    ram.pins["WE"] = _pin("WE", PinDirection.INPUT, 1.6)
    ram.pins["CK"] = _pin("CK", PinDirection.INPUT, 2.5, clock=True)
    for i in range(8):
        ram.pins[f"Q{i}"] = _pin(f"Q{i}", PinDirection.OUTPUT, 0.0)
    masters["RAM256X32"] = ram

    return masters


#: Sampling weights for the generator's combinational cell mix,
#: loosely matching synthesised NanGate45 netlist composition.
COMB_MIX: List[Tuple[str, float]] = [
    ("INV_X1", 0.14),
    ("INV_X2", 0.04),
    ("BUF_X1", 0.06),
    ("BUF_X2", 0.03),
    ("NAND2_X1", 0.16),
    ("NAND2_X2", 0.04),
    ("NOR2_X1", 0.09),
    ("AND2_X1", 0.07),
    ("OR2_X1", 0.05),
    ("AOI21_X1", 0.07),
    ("OAI21_X1", 0.06),
    ("XOR2_X1", 0.06),
    ("XNOR2_X1", 0.03),
    ("FA_X1", 0.03),
    ("HA_X1", 0.02),
    ("MUX2_X1", 0.05),
]

#: Flip-flop mix.
SEQ_MIX: List[Tuple[str, float]] = [
    ("DFF_X1", 0.85),
    ("DFF_X2", 0.15),
]
