"""Enablement registry: standard-cell libraries the generator can target.

The paper's conclusion pursues validation "on additional testcases,
design enablements and P&R tools"; this registry makes the enablement a
generator parameter.  Two enablements ship: the NanGate45-lite library
the paper uses and an ASAP7-lite 7 nm-class library
(benchmarks/bench_ext_enablement.py confirms the flow's benefits
transfer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.netlist.design import MasterCell


@dataclass(frozen=True)
class Enablement:
    """One standard-cell enablement.

    Attributes:
        name: Registry key.
        make_library: Factory for the master-cell dict.
        comb_mix: (cell name, sampling weight) combinational mix.
        seq_mix: Flip-flop mix.
        ram_cell: Name of the RAM hard macro.
        row_height: Standard-cell row height (microns).
        r_per_um, c_per_um: Representative wire RC for delay models.
    """

    name: str
    make_library: Callable[[], Dict[str, MasterCell]]
    comb_mix: List[Tuple[str, float]]
    seq_mix: List[Tuple[str, float]]
    ram_cell: str
    row_height: float
    r_per_um: float
    c_per_um: float


def _nangate45() -> Enablement:
    from repro.designs import nangate45

    return Enablement(
        name="nangate45",
        make_library=nangate45.make_library,
        comb_mix=nangate45.COMB_MIX,
        seq_mix=nangate45.SEQ_MIX,
        ram_cell="RAM256X32",
        row_height=nangate45.ROW_HEIGHT,
        r_per_um=0.002,
        c_per_um=0.2,
    )


def _asap7() -> Enablement:
    from repro.designs import asap7

    return Enablement(
        name="asap7",
        make_library=asap7.make_library,
        comb_mix=asap7.COMB_MIX,
        seq_mix=asap7.SEQ_MIX,
        ram_cell="ASAP7_RAM256X32",
        row_height=asap7.ROW_HEIGHT,
        r_per_um=asap7.R_PER_UM,
        c_per_um=asap7.C_PER_UM,
    )


_REGISTRY: Dict[str, Callable[[], Enablement]] = {
    "nangate45": _nangate45,
    "asap7": _asap7,
}


def get_enablement(name: str) -> Enablement:
    """Look up an enablement by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown enablement {name!r}; have {sorted(_REGISTRY)}"
        ) from None


def available() -> List[str]:
    """Registered enablement names."""
    return sorted(_REGISTRY)
