"""Rent's-rule synthetic netlist generator.

Generates gate-level designs whose *statistics* match the paper's
testcases: instance/net counts, logical hierarchy shape, sequential
fraction, macro content, IO count and clock constraints.  Connectivity
is generated with hierarchical locality — a sink prefers a driver in
its own module, then a sibling module, then anywhere — which yields the
Rent-exponent behaviour the hierarchy-based clustering of Algorithm 2
relies on, and rank-ordered combinational edges guarantee an acyclic
timing graph.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.designs import enablements
from repro.netlist.design import (
    Design,
    Floorplan,
    Instance,
    MasterCell,
    PinDirection,
)


@dataclass
class DesignSpec:
    """Parameters of one synthetic design.

    Attributes:
        name: Design name.
        num_instances: Target standard-cell instance count (macros are
            added on top of this).
        seq_fraction: Fraction of instances that are flip-flops.
        hierarchy_depth: Depth of the logical module tree.
        hierarchy_branching: Fanout of internal module-tree nodes.
        locality: Probability that a sink picks a driver inside its own
            leaf module; the remainder spills to siblings then anywhere.
        sibling_bias: Given a non-local sink, probability of picking a
            sibling module rather than a uniformly random one.
        num_macros: Number of RAM hard macros.
        num_ports: Top-level IO count; None derives ~4*sqrt(n) from
            Rent's rule.
        logic_depth: Number of combinational rank levels; the longest
            register-to-register gate chain is bounded by this, which
            (with the clock period) controls how critical the design
            is.
        critical_chains: Explicit register-to-register chains of
            ~logic_depth gates (one cell per level), modelling critical
            pipeline stages; guarantees the worst path exercises the
            full logic depth.
        enablement: Standard-cell enablement: "nangate45" (default) or
            "asap7" (see repro.designs.enablements).
        clock_period: Target clock period (ns); None = unconstrained.
        target_utilization: Core utilization used to size the floorplan.
        high_fanout_nets: Number of control-style nets with large
            fanout (reset / enable trees).
        seed: RNG seed; generation is fully deterministic given a seed.
    """

    name: str
    num_instances: int
    seq_fraction: float = 0.15
    hierarchy_depth: int = 3
    hierarchy_branching: int = 4
    locality: float = 0.72
    sibling_bias: float = 0.6
    num_macros: int = 0
    num_ports: Optional[int] = None
    clock_period: Optional[float] = 1.0
    target_utilization: float = 0.62
    high_fanout_nets: int = 4
    logic_depth: int = 14
    critical_chains: int = 3
    enablement: str = "nangate45"
    seed: int = 1


@dataclass
class _Module:
    """A leaf module of the hierarchy during generation."""

    path: str
    parent_path: str
    budget: int = 0
    comb: List[Instance] = field(default_factory=list)
    comb_ranks: List[float] = field(default_factory=list)
    seq: List[Instance] = field(default_factory=list)


def generate_design(spec: DesignSpec) -> Design:
    """Generate a design from a spec.  Deterministic for a fixed seed."""
    rng = random.Random(spec.seed)
    enablement = enablements.get_enablement(spec.enablement)
    masters = enablement.make_library()
    design = Design(spec.name)
    for master in masters.values():
        design.masters.setdefault(master.name, master)

    modules = _build_modules(spec, rng)
    _populate_instances(design, spec, modules, masters, enablement, rng)
    macros = _add_macros(design, spec, masters, modules, enablement, rng)
    input_ports, output_ports = _add_ports(design, spec, rng)
    _generate_nets(design, spec, modules, macros, input_ports, output_ports, rng)
    _add_clock(design, spec)
    _size_floorplan(design, spec)
    _place_ports(design)
    _preplace_macros(design, [m for m, _home in macros], rng)
    return design


# ----------------------------------------------------------------------
# Hierarchy
# ----------------------------------------------------------------------
def _build_modules(spec: DesignSpec, rng: random.Random) -> List[_Module]:
    """Split the instance budget across a branching module tree."""
    modules: List[_Module] = []

    def recurse(path: str, parent: str, budget: int, depth: int) -> None:
        min_leaf = max(20, spec.hierarchy_branching * 10)
        if depth >= spec.hierarchy_depth or budget <= min_leaf:
            modules.append(_Module(path=path, parent_path=parent, budget=budget))
            return
        branching = spec.hierarchy_branching
        # Random but bounded-away-from-zero proportions.
        shares = [0.5 + rng.random() for _ in range(branching)]
        total = sum(shares)
        remaining = budget
        for i in range(branching):
            part = int(budget * shares[i] / total) if i < branching - 1 else remaining
            part = min(part, remaining)
            remaining -= part
            if part <= 0:
                continue
            child = f"{path}/m{depth}_{i}" if path else f"m{depth}_{i}"
            recurse(child, path, part, depth + 1)

    recurse("", "", spec.num_instances, 0)
    return modules


def _populate_instances(
    design: Design,
    spec: DesignSpec,
    modules: List[_Module],
    masters: Dict[str, MasterCell],
    enablement: "enablements.Enablement",
    rng: random.Random,
) -> None:
    """Fill each leaf module with a comb/seq cell mix."""
    comb_names = [name for name, _w in enablement.comb_mix]
    comb_weights = [w for _name, w in enablement.comb_mix]
    seq_names = [name for name, _w in enablement.seq_mix]
    seq_weights = [w for _name, w in enablement.seq_mix]
    counter = 0
    for module in modules:
        budget = module.budget
        num_seq = int(round(budget * spec.seq_fraction))
        num_comb = budget - num_seq
        chosen_comb = rng.choices(comb_names, weights=comb_weights, k=num_comb)
        chosen_seq = rng.choices(seq_names, weights=seq_weights, k=num_seq)
        prefix = module.path + "/" if module.path else ""
        for master_name in chosen_comb:
            inst = design.add_instance(f"{prefix}U{counter}", masters[master_name])
            counter += 1
            module.comb.append(inst)
            # Quantized logic level: bounds combinational depth by
            # spec.logic_depth (edges go strictly level-up).
            module.comb_ranks.append(float(rng.randrange(spec.logic_depth)))
        for master_name in chosen_seq:
            inst = design.add_instance(f"{prefix}FF{counter}", masters[master_name])
            counter += 1
            module.seq.append(inst)
        # Sort comb instances by rank so prefix sampling is cheap.
        order = sorted(range(len(module.comb)), key=lambda i: module.comb_ranks[i])
        module.comb = [module.comb[i] for i in order]
        module.comb_ranks = sorted(module.comb_ranks)


def _add_macros(
    design: Design,
    spec: DesignSpec,
    masters: Dict[str, MasterCell],
    modules: List[_Module],
    enablement: "enablements.Enablement",
    rng: random.Random,
) -> List[Tuple[Instance, _Module]]:
    """Instantiate RAM macros, each "homed" in a random module."""
    macros: List[Tuple[Instance, _Module]] = []
    for i in range(spec.num_macros):
        home = rng.choice(modules)
        prefix = home.path + "/" if home.path else ""
        inst = design.add_instance(
            f"{prefix}ram{i}", masters[enablement.ram_cell]
        )
        macros.append((inst, home))
    return macros


def _add_ports(
    design: Design, spec: DesignSpec, rng: random.Random
) -> Tuple[List[str], List[str]]:
    """Create IO ports (~4*sqrt(n) by default, 60/40 in/out split)."""
    n_ports = spec.num_ports
    if n_ports is None:
        n_ports = max(16, int(4 * math.sqrt(spec.num_instances)))
    n_in = max(2, int(n_ports * 0.6))
    n_out = max(2, n_ports - n_in)
    inputs = []
    outputs = []
    for i in range(n_in):
        design.add_port(f"in{i}", PinDirection.INPUT)
        inputs.append(f"in{i}")
    for i in range(n_out):
        design.add_port(f"out{i}", PinDirection.OUTPUT)
        outputs.append(f"out{i}")
    design.add_port("clk", PinDirection.INPUT)
    return inputs, outputs


# ----------------------------------------------------------------------
# Connectivity
# ----------------------------------------------------------------------
def _generate_nets(
    design: Design,
    spec: DesignSpec,
    modules: List[_Module],
    macros: List[Tuple[Instance, _Module]],
    input_ports: List[str],
    output_ports: List[str],
    rng: random.Random,
) -> None:
    """Assign a driver to every input pin, then materialise the nets.

    Combinational edges respect the per-module rank order (driver rank
    strictly below sink rank) so the resulting timing graph is a DAG.
    """
    by_path = {m.path: m for m in modules}
    siblings: Dict[str, List[_Module]] = {}
    for module in modules:
        siblings.setdefault(module.parent_path, []).append(module)

    # driver key -> list of (instance or None, pin name)
    sink_map: Dict[Tuple[Optional[int], str], List[Tuple[Optional[Instance], str]]] = {}
    #: Sink pins already claimed (by critical chains), skipped later.
    driven_pins: set = set()

    def driver_key(inst: Optional[Instance], pin: str) -> Tuple[Optional[int], str]:
        return (inst.index if inst is not None else None, pin)

    def assign(driver: Tuple[Optional[Instance], str], sink: Tuple[Optional[Instance], str]) -> None:
        key = driver_key(*driver)
        sink_map.setdefault(key, []).append(sink)
        fanout_count[key] = fanout_count.get(key, 0) + 1
        sink_inst, sink_pin = sink
        if sink_inst is not None:
            driven_pins.add((sink_inst.index, sink_pin))

    def pick_module_for(module: _Module) -> _Module:
        """Locality-aware module choice for a non-local driver."""
        sibs = [m for m in siblings.get(module.parent_path, []) if m is not module]
        if sibs and rng.random() < spec.sibling_bias:
            return rng.choice(sibs)
        return rng.choice(modules)

    fanout_count: Dict[Tuple[Optional[int], str], int] = {}

    def balanced_pick(candidates: List[Instance], pin: str) -> Instance:
        """Two-choice sampling biased toward less-loaded drivers.

        Spreads sinks across drivers so most cell outputs end up used,
        matching the net/instance ratio of real synthesised netlists.
        """
        a = rng.choice(candidates)
        b = rng.choice(candidates)
        fa = fanout_count.get((a.index, pin), 0)
        fb = fanout_count.get((b.index, pin), 0)
        return a if fa <= fb else b

    def pick_comb_driver(module: _Module, max_rank: Optional[float]) -> Optional[Instance]:
        """Pick a comb driver in ``module`` with rank below ``max_rank``."""
        if not module.comb:
            return None
        if max_rank is None:
            return balanced_pick(module.comb, "Y")
        import bisect

        hi = bisect.bisect_left(module.comb_ranks, max_rank)
        if hi == 0:
            return None
        return balanced_pick(module.comb[:hi], "Y")

    def pick_driver(
        module: _Module, sink_rank: Optional[float]
    ) -> Tuple[Optional[Instance], str]:
        """Pick a driver for a sink in ``module``.

        ``sink_rank`` is the comb rank constraint (None for FF D pins
        and macro inputs, which end timing paths).
        """
        home = module if rng.random() < spec.locality else pick_module_for(module)
        # Prefer a combinational driver; fall back to a FF Q, then a port.
        for candidate_module in (home, module):
            roll = rng.random()
            if roll < 0.8:
                inst = pick_comb_driver(candidate_module, sink_rank)
                if inst is not None:
                    return inst, "Y"
            if candidate_module.seq:
                return balanced_pick(candidate_module.seq, "Q"), "Q"
            inst = pick_comb_driver(candidate_module, sink_rank)
            if inst is not None:
                return inst, "Y"
        return None, rng.choice(input_ports)

    # 0. Explicit critical chains: one cell per logic level,
    # FF.Q -> U -> ... -> U -> FF.D.  These model critical pipeline
    # stages and pin the worst path depth at ~logic_depth.  A chain
    # draws its cells from a small group of modules (levels increase
    # globally, so cross-module hops preserve acyclicity) — which also
    # creates the inter-module critical paths that timing-aware
    # clustering is designed to keep together.
    seq_modules = [m for m in modules if m.seq and m.comb]
    for chain_idx in range(min(spec.critical_chains, len(seq_modules))):
        module = seq_modules[chain_idx % len(seq_modules)]
        group = [module]
        # Widen the module group until every level has a candidate.
        pool = [m for m in modules if m is not module and m.comb]
        rng.shuffle(pool)
        per_level: Dict[int, List[Instance]] = {}

        def add_module_levels(m: _Module) -> None:
            for pos, inst in enumerate(m.comb):
                per_level.setdefault(int(m.comb_ranks[pos]), []).append(inst)

        add_module_levels(module)
        for extra in pool:
            if len(per_level) >= spec.logic_depth:
                break
            group.append(extra)
            add_module_levels(extra)
        chain: List[Tuple[Instance, str, str]] = []  # (inst, in pin, out pin)
        for level in sorted(per_level):
            inst = rng.choice(per_level[level])
            in_pin = inst.master.input_pins()[0].name
            if (inst.index, in_pin) in driven_pins:
                continue
            chain.append((inst, in_pin, "Y"))
        if len(chain) < 2:
            continue
        start_ff = rng.choice(module.seq)
        assign((start_ff, "Q"), (chain[0][0], chain[0][1]))
        for (prev, _pi, prev_out), (nxt, nxt_in, _po) in zip(chain, chain[1:]):
            assign((prev, prev_out), (nxt, nxt_in))
        end_ff = rng.choice(module.seq)
        if (end_ff.index, "D") not in driven_pins:
            assign((chain[-1][0], "Y"), (end_ff, "D"))

    # 1. Wire macro data/address pins from their home module (before
    # the exhaustive pass so macro outputs find free sink pins).
    for macro, home in macros:
        for pin in macro.master.input_pins():
            driver = pick_driver(home, None)
            assign(driver, (macro, pin.name))
        # Macro outputs drive sinks in the home and sibling modules.
        for pin in macro.master.output_pins():
            for _ in range(rng.randint(1, 3)):
                target = home if rng.random() < 0.7 else pick_module_for(home)
                sink = _free_sink(target, rng, driven_pins)
                if sink is not None:
                    assign((macro, pin.name), sink)

    # 2. High-fanout control nets (reset / enable style) — also before
    # the exhaustive pass, while free pins are plentiful.
    all_seq = [inst for m in modules for inst in m.seq]
    for _ in range(spec.high_fanout_nets):
        if not all_seq:
            break
        driver_inst = rng.choice(all_seq)
        fanout = rng.randint(20, 60)
        for _ in range(fanout):
            module = rng.choice(modules)
            sink = _free_sink(module, rng, driven_pins)
            if sink is not None:
                assign((driver_inst, "Q"), sink)

    # 3. Wire every remaining standard-cell input pin.
    for module in modules:
        for pos, inst in enumerate(module.comb):
            rank = module.comb_ranks[pos]
            for pin in inst.master.input_pins():
                if (inst.index, pin.name) in driven_pins:
                    continue
                driver = pick_driver(module, rank)
                assign(driver, (inst, pin.name))
        for inst in module.seq:
            if (inst.index, "D") in driven_pins:
                continue
            driver = pick_driver(module, None)
            assign(driver, (inst, "D"))

    # 4. Output ports load a random driver's net.
    for port_name in output_ports:
        module = rng.choice(modules)
        driver = pick_driver(module, None)
        assign(driver, (None, port_name))

    # 5. Materialise nets (one net per driver with sinks).
    net_counter = 0
    for (inst_index, pin_name), sinks in sink_map.items():
        if inst_index is None:
            # Driven by an input port named pin_name.
            net = design.add_net(pin_name + "_net")
            design.connect_port(net, pin_name)
        else:
            inst = design.instances[inst_index]
            net = design.add_net(f"n{net_counter}")
            net_counter += 1
            design.connect_instance_pin(net, inst, pin_name)
        seen: set = set()
        for sink_inst, sink_pin in sinks:
            key = (sink_inst.index if sink_inst else None, sink_pin)
            if key in seen:
                continue
            seen.add(key)
            if sink_inst is None:
                design.connect_port(net, sink_pin)
            else:
                design.connect_instance_pin(net, sink_inst, sink_pin)


def _free_sink(
    module: _Module, rng: random.Random, driven_pins: set
) -> Optional[Tuple[Instance, str]]:
    """Pick an undriven input pin in ``module``, or None.

    ``driven_pins`` is the generator-wide set of (instance index, pin)
    sink assignments made so far — pins must be driven exactly once.
    """
    candidates = module.comb + module.seq
    if not candidates:
        return None
    for _ in range(8):
        inst = rng.choice(candidates)
        pins = [
            p.name
            for p in inst.master.input_pins()
            if (inst.index, p.name) not in driven_pins
        ]
        if pins:
            return inst, rng.choice(pins)
    return None


def _add_clock(design: Design, spec: DesignSpec) -> None:
    """Connect the clock port to every sequential CK pin."""
    clock_net = design.add_net("clk_net")
    clock_net.is_clock = True
    design.connect_port(clock_net, "clk")
    for inst in design.instances:
        clock_pin = inst.master.clock_pin()
        if clock_pin is not None:
            design.connect_instance_pin(clock_net, inst, clock_pin.name)
    design.clock_period = spec.clock_period
    design.clock_port = "clk"


# ----------------------------------------------------------------------
# Floorplan
# ----------------------------------------------------------------------
def _size_floorplan(design: Design, spec: DesignSpec) -> None:
    """Square die sized so core utilization hits the spec target."""
    enablement = enablements.get_enablement(spec.enablement)
    cell_area = design.total_cell_area()
    core_area = cell_area / spec.target_utilization
    margin = max(2.0 * enablement.row_height, 0.5)
    side = math.sqrt(core_area) + 2 * margin
    design.floorplan = Floorplan(
        die_width=side,
        die_height=side,
        core_margin=margin,
        row_height=enablement.row_height,
        target_utilization=spec.target_utilization,
    )


def _place_ports(design: Design) -> None:
    """Distribute ports evenly around the die periphery."""
    fp = design.floorplan
    names = sorted(design.ports)
    perimeter = 2 * (fp.die_width + fp.die_height)
    for i, name in enumerate(names):
        port = design.ports[name]
        t = (i + 0.5) / len(names) * perimeter
        if t < fp.die_width:
            port.x, port.y = t, 0.0
        elif t < fp.die_width + fp.die_height:
            port.x, port.y = fp.die_width, t - fp.die_width
        elif t < 2 * fp.die_width + fp.die_height:
            port.x, port.y = t - fp.die_width - fp.die_height, fp.die_height
        else:
            port.x, port.y = 0.0, t - 2 * fp.die_width - fp.die_height


# ----------------------------------------------------------------------
# Array-native fast path
# ----------------------------------------------------------------------
def _pick_drivers(
    rng: np.random.Generator,
    tgt: np.ndarray,
    sink_rank: np.ndarray,
    cum_below: np.ndarray,
    mod_start: np.ndarray,
    seq_start: np.ndarray,
    seq_count: np.ndarray,
    num_instances: int,
    n_in_ports: int,
) -> np.ndarray:
    """Vectorized driver choice for a batch of sinks.

    Picks uniformly among the rank-eligible combinational cells of each
    sink's target module (``cum_below[m, r]`` counts module ``m``'s comb
    cells with rank strictly below ``r``; the instance sort guarantees
    they occupy the first ``cum_below[m, r]`` positions of the module
    block).  Falls back to a module flip-flop, then to a random input
    port.  Returns driver codes: an instance index, or
    ``num_instances + input-port index``.
    """
    k = len(tgt)
    eligible = cum_below[tgt, sink_rank]
    comb = mod_start[tgt] + np.floor(rng.random(k) * eligible).astype(np.int64)
    sc = seq_count[tgt]
    ff = seq_start[tgt] + np.floor(rng.random(k) * np.maximum(sc, 1)).astype(np.int64)
    no_comb = eligible == 0
    drv = np.where(no_comb, ff, comb)
    use_port = no_comb & (sc == 0)
    ports = num_instances + rng.integers(0, n_in_ports, size=k)
    return np.where(use_port, ports, drv)


def generate_arrays(spec: DesignSpec) -> "NetlistArrays":
    """Generate a design directly in its flat array form.

    Builds a :class:`repro.netlist.arrays.NetlistArrays` without ever
    constructing the linked object graph, which is what makes
    million-instance synthetic designs practical (seconds and tens of
    bytes per instance instead of minutes and kilobytes).  The
    statistical model matches :func:`generate_design` — same cell mix,
    sequential fraction, leaf-module sizing, rank-ordered DAG edges
    (driver rank strictly below sink rank, so the timing graph is
    acyclic), hierarchical locality, high-fanout control nets, IO
    count, floorplan sizing and port ring — but streams are drawn from
    NumPy's bit generator, so a given seed yields a *different*
    (equally distributed) netlist than the object path.  Macros,
    critical chains and sibling bias are not modelled.

    Use :meth:`NetlistArrays.to_design` to materialize an object view
    when one is needed.
    """
    from repro.netlist.arrays import (
        DIR_INPUT,
        DIR_OUTPUT,
        NetlistArrays,
        flatten_masters,
        multi_arange,
    )

    if spec.num_macros:
        raise ValueError(
            "generate_arrays does not model macros; use generate_design"
        )

    rng = np.random.default_rng(spec.seed)
    enablement = enablements.get_enablement(spec.enablement)
    masters = enablement.make_library()
    pool_index: Dict[str, int] = {}
    name_pool: List[str] = []
    t = flatten_masters(masters, pool_index, name_pool)
    name_to_mi = {nm: i for i, nm in enumerate(t.names)}
    n_masters = len(t.names)

    # Per-master pin shape: non-clock input slots (declaration order),
    # first output slot (the "Y"/"Q" drive pin) and the clock slot.
    mp_ptr_l = t.mp_ptr.tolist()
    in_slots: List[int] = []
    in_off_l = [0]
    out_first = np.full(n_masters, -1, dtype=np.int64)
    clk_slot = np.full(n_masters, -1, dtype=np.int64)
    for mi in range(n_masters):
        for s in range(mp_ptr_l[mi], mp_ptr_l[mi + 1]):
            if t.mp_dir[s] == DIR_OUTPUT:
                if out_first[mi] < 0:
                    out_first[mi] = s
            elif t.mp_is_clock[s]:
                clk_slot[mi] = s
            elif t.mp_dir[s] == DIR_INPUT:
                in_slots.append(s)
        in_off_l.append(len(in_slots))
    in_slots_a = np.asarray(in_slots, dtype=np.int64)
    in_off = np.asarray(in_off_l, dtype=np.int64)
    in_count = np.diff(in_off)

    # -- instances: master / module / rank streams ---------------------
    n = spec.num_instances
    depth = max(1, spec.logic_depth)
    comb_ids = np.asarray([name_to_mi[nm] for nm, _w in enablement.comb_mix])
    comb_p = np.asarray([w for _nm, w in enablement.comb_mix], dtype=np.float64)
    seq_ids = np.asarray([name_to_mi[nm] for nm, _w in enablement.seq_mix])
    seq_p = np.asarray([w for _nm, w in enablement.seq_mix], dtype=np.float64)

    is_seq = rng.random(n) < spec.seq_fraction
    n_seq = int(is_seq.sum())
    inst_master = np.empty(n, dtype=np.int64)
    inst_master[~is_seq] = rng.choice(comb_ids, size=n - n_seq, p=comb_p / comb_p.sum())
    inst_master[is_seq] = rng.choice(seq_ids, size=n_seq, p=seq_p / seq_p.sum())
    #: Comb rank in [0, depth); FFs get the sentinel rank ``depth`` so
    #: one eligibility table serves both (any comb cell may drive a D pin).
    rank = np.where(is_seq, depth, rng.integers(0, depth, size=n))

    min_leaf = max(20, spec.hierarchy_branching * 10)
    leaf = max(min_leaf, n // max(1, spec.hierarchy_branching**spec.hierarchy_depth))
    n_modules = max(1, -(-n // leaf))
    inst_module = rng.integers(0, n_modules, size=n)

    # Sort by (module, is_seq, rank): each module becomes one block of
    # rank-sorted comb cells followed by its FFs, so rank-eligible
    # drivers are a prefix of the module block.
    order = np.lexsort((rank, is_seq, inst_module))
    inst_master = inst_master[order]
    is_seq = is_seq[order]
    rank = rank[order]
    inst_module = inst_module[order]

    mod_start = np.searchsorted(inst_module, np.arange(n_modules), side="left")
    comb_count = np.bincount(inst_module[~is_seq], minlength=n_modules)
    seq_count = np.bincount(inst_module[is_seq], minlength=n_modules)
    seq_start = mod_start + comb_count
    hist = np.bincount(
        inst_module[~is_seq] * depth + rank[~is_seq], minlength=n_modules * depth
    ).reshape(n_modules, depth)
    cum_below = np.concatenate(
        [np.zeros((n_modules, 1), dtype=np.int64), np.cumsum(hist, axis=1)], axis=1
    )

    # -- IO budget (matches _add_ports) --------------------------------
    n_ports = spec.num_ports
    if n_ports is None:
        n_ports = max(16, int(4 * math.sqrt(n)))
    n_in = max(2, int(n_ports * 0.6))
    n_out = max(2, n_ports - n_in)

    # -- one sink row per non-clock input pin --------------------------
    nin = in_count[inst_master]
    n_sinks = int(nin.sum())
    sink_inst = np.repeat(np.arange(n, dtype=np.int64), nin)
    local_pos = multi_arange(np.zeros(n, dtype=np.int64), nin)
    sink_slot = in_slots_a[in_off[inst_master[sink_inst]] + local_pos]
    sink_rank = rank[sink_inst]
    home = inst_module[sink_inst]
    local = rng.random(n_sinks) < spec.locality
    tgt = np.where(local, home, rng.integers(0, n_modules, size=n_sinks))
    driver_code = _pick_drivers(
        rng, tgt, sink_rank, cum_below, mod_start, seq_start, seq_count, n, n_in
    )

    # High-fanout control nets: a few FF outputs grab 20-60 random
    # sinks each (reset / enable trees).
    seq_global = np.flatnonzero(is_seq)
    if spec.high_fanout_nets and len(seq_global) and n_sinks:
        fan = rng.integers(20, 61, size=spec.high_fanout_nets)
        total = int(min(fan.sum(), n_sinks))
        rows = rng.choice(n_sinks, size=total, replace=False)
        drivers = rng.choice(seq_global, size=spec.high_fanout_nets)
        driver_code[rows] = np.repeat(drivers, fan)[:total]

    # Output ports load a random driver (rank-unconstrained).
    tgt_o = rng.integers(0, n_modules, size=n_out)
    out_driver = _pick_drivers(
        rng,
        tgt_o,
        np.full(n_out, depth, dtype=np.int64),
        cum_below,
        mod_start,
        seq_start,
        seq_count,
        n,
        n_in,
    )

    # -- group sinks by driver: one net per driver ---------------------
    all_driver = np.concatenate([driver_code, out_driver])
    all_inst = np.concatenate([sink_inst, np.full(n_out, -1, dtype=np.int64)])
    all_slot = np.concatenate([sink_slot, np.full(n_out, -1, dtype=np.int64)])
    all_port = np.concatenate(
        [np.full(n_sinks, -1, dtype=np.int64), n_in + np.arange(n_out, dtype=np.int64)]
    )
    order_s = np.argsort(all_driver, kind="stable")
    ds = all_driver[order_s]
    uniq_d, first = np.unique(ds, return_index=True)
    d_counts = np.diff(np.append(first, len(ds)))

    # -- ports (insertion order: inputs, outputs, clk) -----------------
    port_names = (
        [f"in{i}" for i in range(n_in)]
        + [f"out{i}" for i in range(n_out)]
        + ["clk"]
    )
    p_total = len(port_names)
    port_name_idx = np.empty(p_total, dtype=np.int32)
    for pi, pname in enumerate(port_names):
        idx = pool_index.get(pname)
        if idx is None:
            idx = len(name_pool)
            pool_index[pname] = idx
            name_pool.append(pname)
        port_name_idx[pi] = idx
    port_dir = np.full(p_total, DIR_INPUT, dtype=np.int8)
    port_dir[n_in : n_in + n_out] = DIR_OUTPUT
    port_cap = np.full(p_total, 2.0, dtype=np.float64)

    # -- net/pin CSR: signal nets (driver first), then the clock net ---
    clk_of = clk_slot[inst_master]
    clk_insts = np.flatnonzero(is_seq & (clk_of >= 0))
    n_signal = len(uniq_d)
    deg = np.concatenate([d_counts + 1, [1 + len(clk_insts)]])
    net_ptr = np.concatenate(([0], np.cumsum(deg))).astype(np.int64)
    q = int(net_ptr[-1])
    pin_inst = np.empty(q, dtype=np.int64)
    pin_port = np.full(q, -1, dtype=np.int64)
    pin_slot = np.full(q, -1, dtype=np.int64)
    pin_name = np.empty(q, dtype=np.int32)

    drv_pos = net_ptr[:n_signal]
    is_port_drv = uniq_d >= n
    inst_safe = np.where(is_port_drv, 0, uniq_d)
    dslot = out_first[inst_master[inst_safe]]
    port_safe = np.where(is_port_drv, uniq_d - n, 0)
    pin_inst[drv_pos] = np.where(is_port_drv, -1, uniq_d)
    pin_port[drv_pos] = np.where(is_port_drv, uniq_d - n, -1)
    pin_slot[drv_pos] = np.where(is_port_drv, -1, dslot)
    pin_name[drv_pos] = np.where(
        is_port_drv, port_name_idx[port_safe], t.mp_name_idx[np.maximum(dslot, 0)]
    )

    sink_pos = multi_arange(drv_pos + 1, d_counts)
    si = all_inst[order_s]
    sp = all_port[order_s]
    ss = all_slot[order_s]
    pin_inst[sink_pos] = si
    pin_port[sink_pos] = sp
    pin_slot[sink_pos] = ss
    pin_name[sink_pos] = np.where(
        ss >= 0,
        t.mp_name_idx[np.maximum(ss, 0)],
        port_name_idx[np.maximum(sp, 0)],
    )

    c0 = int(net_ptr[n_signal])
    pin_inst[c0] = -1
    pin_port[c0] = p_total - 1
    pin_name[c0] = port_name_idx[-1]
    if len(clk_insts):
        pin_inst[c0 + 1 :] = clk_insts
        cs = clk_of[clk_insts]
        pin_slot[c0 + 1 :] = cs
        pin_name[c0 + 1 :] = t.mp_name_idx[cs]

    n_nets = n_signal + 1
    net_has_driver = np.ones(n_nets, dtype=bool)
    net_is_clock = np.zeros(n_nets, dtype=bool)
    net_is_clock[-1] = True

    # -- floorplan + port ring (matches _size_floorplan/_place_ports) --
    cell_area = float(
        np.sum(t.scalars[inst_master, 0] * t.scalars[inst_master, 1])
    )
    margin = max(2.0 * enablement.row_height, 0.5)
    side = math.sqrt(cell_area / spec.target_utilization) + 2 * margin
    sorted_idx = np.asarray(
        sorted(range(p_total), key=port_names.__getitem__), dtype=np.int64
    )
    tpos = (np.arange(p_total, dtype=np.float64) + 0.5) / p_total * (4 * side)
    xs = np.empty(p_total)
    ys = np.empty(p_total)
    m_bot = tpos < side
    m_right = ~m_bot & (tpos < 2 * side)
    m_top = ~m_bot & ~m_right & (tpos < 3 * side)
    m_left = ~(m_bot | m_right | m_top)
    xs[m_bot], ys[m_bot] = tpos[m_bot], 0.0
    xs[m_right], ys[m_right] = side, tpos[m_right] - side
    xs[m_top], ys[m_top] = tpos[m_top] - 2 * side, side
    xs[m_left], ys[m_left] = 0.0, tpos[m_left] - 3 * side
    port_x = np.empty(p_total)
    port_y = np.empty(p_total)
    port_x[sorted_idx] = xs
    port_y[sorted_idx] = ys

    return NetlistArrays(
        name=spec.name,
        floorplan=(side, side, margin, enablement.row_height, spec.target_utilization),
        clock_period=spec.clock_period,
        clock_port="clk",
        name_pool=name_pool,
        master_names=t.names,
        master_classes=t.classes,
        m_width=t.scalars[:, 0],
        m_height=t.scalars[:, 1],
        m_is_seq=t.flags[:, 0],
        m_is_macro=t.flags[:, 1],
        m_intrinsic=t.scalars[:, 2],
        m_drive=t.scalars[:, 3],
        m_clk_to_q=t.scalars[:, 4],
        m_setup=t.scalars[:, 5],
        m_hold=t.scalars[:, 6],
        m_leakage=t.scalars[:, 7],
        m_energy=t.scalars[:, 8],
        mp_ptr=t.mp_ptr,
        mp_name_idx=t.mp_name_idx,
        mp_dir=t.mp_dir,
        mp_is_clock=t.mp_is_clock,
        mp_cap=t.mp_cap,
        inst_master=inst_master,
        port_name_idx=port_name_idx,
        port_dir=port_dir,
        port_x=port_x,
        port_y=port_y,
        port_cap=port_cap,
        net_ptr=net_ptr,
        net_has_driver=net_has_driver,
        net_is_clock=net_is_clock,
        net_weight=np.ones(n_nets, dtype=np.float64),
        net_activity=np.zeros(n_nets, dtype=np.float64),
        pin_inst=pin_inst,
        pin_port=pin_port,
        pin_name_idx=pin_name,
        pin_slot=pin_slot,
    )


def _preplace_macros(
    design: Design, macros: Sequence[Instance], rng: random.Random
) -> None:
    """Fix macros along the left/right core edges (as the .def would)."""
    if not macros:
        return
    fp = design.floorplan
    per_side = math.ceil(len(macros) / 2)
    for i, macro in enumerate(macros):
        side = i // per_side  # 0 = left, 1 = right
        slot = i % per_side
        y = fp.core_lly + (slot + 0.5) * fp.core_height / per_side
        if side == 0:
            x = fp.core_llx + macro.master.width / 2
        else:
            x = fp.core_urx - macro.master.width / 2
        macro.x, macro.y = x, y
        macro.fixed = True
