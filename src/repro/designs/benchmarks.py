"""Benchmark configurations mirroring the paper's Table 1.

The paper evaluates six open testcases from the TILOS MacroPlacement
and OpenROAD-flow-scripts repositories in the NanGate45 enablement.
Each entry here reproduces that testcase's *statistics* at roughly 1/40
scale via the Rent's-rule generator, so the full experiment harness
runs on a laptop: instance/net ratio, hierarchy depth (ariane and the
SoCs are deeply hierarchical; aes/jpeg are shallow), sequential
fraction, macro content (BlackParrot/MegaBoom/MemPool carry SRAMs) and
the OpenROAD target clock periods TCP_OR from Table 1.

The paper masks the Innovus clock periods (TCP_Inv); our "innovus mode"
is a second placer configuration (see DESIGN.md), and we reuse TCP_OR
for it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.designs.generator import DesignSpec, generate_design
from repro.netlist.design import Design

#: Scale factor relative to the paper's testcases (documented in
#: DESIGN.md and EXPERIMENTS.md).
SCALE_NOTE = "~1/40 of the paper's instance counts"

BENCHMARKS: Dict[str, DesignSpec] = {
    "aes": DesignSpec(
        name="aes",
        num_instances=1200,
        seq_fraction=0.12,
        logic_depth=12,
        critical_chains=2,
        hierarchy_depth=2,
        hierarchy_branching=4,
        clock_period=0.55,
        high_fanout_nets=2,
        seed=101,
    ),
    "jpeg": DesignSpec(
        name="jpeg",
        num_instances=3000,
        seq_fraction=0.14,
        logic_depth=14,
        critical_chains=3,
        hierarchy_depth=3,
        hierarchy_branching=4,
        clock_period=0.80,
        high_fanout_nets=3,
        seed=102,
    ),
    "ariane": DesignSpec(
        name="ariane",
        num_instances=6000,
        seq_fraction=0.16,
        logic_depth=32,
        critical_chains=4,
        hierarchy_depth=4,
        hierarchy_branching=4,
        clock_period=1.80,
        high_fanout_nets=4,
        seed=103,
    ),
    "BlackParrot": DesignSpec(
        name="BlackParrot",
        num_instances=12000,
        seq_fraction=0.18,
        logic_depth=41,
        critical_chains=6,
        hierarchy_depth=4,
        hierarchy_branching=5,
        num_macros=4,
        clock_period=2.30,
        high_fanout_nets=6,
        seed=104,
    ),
    "MegaBoom": DesignSpec(
        name="MegaBoom",
        num_instances=16000,
        seq_fraction=0.18,
        logic_depth=38,
        critical_chains=8,
        hierarchy_depth=5,
        hierarchy_branching=4,
        num_macros=6,
        clock_period=2.60,
        high_fanout_nets=8,
        seed=105,
    ),
    "MemPool Group": DesignSpec(
        name="MemPool Group",
        num_instances=24000,
        seq_fraction=0.20,
        logic_depth=38,
        critical_chains=10,
        hierarchy_depth=5,
        hierarchy_branching=5,
        num_macros=8,
        clock_period=3.00,
        high_fanout_nets=10,
        seed=106,
    ),
}

#: Short aliases used in the paper's tables.
ALIASES = {
    "BP": "BlackParrot",
    "MB": "MegaBoom",
    "MP-G": "MemPool Group",
}

_CACHE: Dict[str, Design] = {}


def benchmark_spec(name: str) -> DesignSpec:
    """Look up a benchmark spec by name or paper alias."""
    key = ALIASES.get(name, name)
    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; have {sorted(BENCHMARKS)}")
    return BENCHMARKS[key]


def load_benchmark(name: str, use_cache: bool = True) -> Design:
    """Generate (or fetch the cached) benchmark design.

    Generation is deterministic, so caching only saves time.  Callers
    that mutate the design (net weights, placement) should pass
    ``use_cache=False`` to get a private copy.
    """
    spec = benchmark_spec(name)
    if use_cache and spec.name in _CACHE:
        return _CACHE[spec.name]
    design = generate_design(spec)
    if use_cache:
        _CACHE[spec.name] = design
    return design


def benchmark_table() -> List[Dict[str, object]]:
    """Rows of Table 1: per-design #insts, #nets, TCP_OR.

    TCP_Inv is masked in the paper (footnote 6); we report the same
    value used for our innovus-mode runs.
    """
    rows = []
    for name in BENCHMARKS:
        design = load_benchmark(name)
        rows.append(
            {
                "design": name,
                "instances": design.num_instances,
                "nets": design.num_nets,
                "tcp_or": design.clock_period,
                "tcp_inv": design.clock_period,
                "macros": len(design.macro_instances()),
            }
        )
    return rows
