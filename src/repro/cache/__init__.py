"""Content-addressed, disk-backed V-P&R evaluation cache.

Every (cluster, shape candidate) V-P&R evaluation is a pure function
of the induced sub-netlist, the shape and the evaluation-relevant
:class:`~repro.core.vpr.VPRConfig` knobs — so repeat runs (CI gates,
parameter sweeps, GNN-training data harvests) can serve identical
:class:`~repro.core.vpr.CandidateEvaluation` results from disk instead
of re-running place + route.

* :mod:`repro.cache.keys` — the content address: a SHA-256 over the
  canonical sub-netlist form, the shape, the config fingerprint and
  the cache schema version.
* :mod:`repro.cache.store` — :class:`EvaluationCache`, the sharded
  on-disk store: atomic rename writes, corruption-tolerant reads (a
  bad entry is a miss, never a crash), a size-bounded LRU garbage
  collector, and ``vpr.cache.*`` perf counters.

Concurrency contract (see ``docs/performance.md``): pool **workers
only read**; the parent process is the only writer, so the hot path
takes no locks.  Warm results are byte-identical to cold ones.
"""

from repro.cache.keys import (
    SCHEMA,
    cache_key,
    config_fingerprint,
    netlist_digest,
)
from repro.cache.store import (
    CacheStats,
    EvaluationCache,
    derive_cache_summary,
)

__all__ = [
    "SCHEMA",
    "CacheStats",
    "EvaluationCache",
    "cache_key",
    "config_fingerprint",
    "derive_cache_summary",
    "netlist_digest",
]
