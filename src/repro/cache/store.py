"""The on-disk evaluation store.

Layout of a cache directory::

    CACHE.json                  # schema marker (written on first put)
    objects/ab/abcdef....json   # one entry per key, sharded by prefix

Each entry is a small JSON record carrying the exact
``CandidateEvaluation`` payload (hpwl/congestion costs) plus the
seconds the original evaluation took.  Writes go through the shared
atomic temp + rename primitive (:func:`repro.ioutil.atomic_write_bytes`,
``durable=False`` — rename atomicity without per-item fsyncs; a torn
entry is detected on read and treated as a miss).

Design points:

* **Reads never raise.**  Unparseable, truncated, or wrong-schema
  entries count as misses (``vpr.cache.corrupt``) and are unlinked
  best-effort.  A cache can therefore be shared, copied, or bit-rotted
  without ever crashing a run.
* **LRU garbage collection.**  Entry mtimes are bumped on hit, so
  eviction (oldest-first) approximates LRU.  ``max_entries`` /
  ``max_bytes`` bound the store; the parent-side writer triggers a GC
  sweep opportunistically every :data:`GC_WRITE_INTERVAL` puts, and
  ``repro cache gc`` runs one on demand.
* **Multi-writer tolerant.**  Within one run, pool workers only call
  :meth:`get` and all :meth:`put`/:meth:`gc` calls happen in the
  parent, so the hot path has no file locks.  Across runs there is no
  single parent: every concurrent flow (e.g. each job of a
  ``repro serve`` daemon) is a parent-side writer on the shared
  directory.  Writes are safe by construction (atomic rename of
  content-addressed entries — two writers racing on one key write the
  same bytes), and :meth:`gc`/:meth:`stats` treat entries that vanish
  mid-sweep (``FileNotFoundError`` on stat or unlink) as already
  collected by the concurrent writer: never an error, never an extra
  eviction.  The per-instance opportunistic GC trigger fires every
  :data:`GC_WRITE_INTERVAL` of *this* writer's puts, so a long-lived
  daemon sharing the store among many short-lived writers should run
  its own periodic :meth:`gc` (the serve worker pool does).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import perf
from repro.cache.keys import SCHEMA
from repro.ioutil import atomic_write_bytes
from repro.recovery import faults

#: Entry-count bound applied when the cache is opened without explicit
#: limits (~40 designs' worth of full sweeps; entries are ~200 bytes).
DEFAULT_MAX_ENTRIES = 200_000

#: Parent-side puts between opportunistic GC sweeps.
GC_WRITE_INTERVAL = 512

#: Fields a stored record must carry to be served as a hit.
_REQUIRED = ("hpwl_cost", "congestion_cost")


@dataclass
class CacheStats:
    """Size summary of a cache directory."""

    entries: int
    total_bytes: int

    def to_dict(self) -> Dict[str, int]:
        return {"entries": self.entries, "total_bytes": self.total_bytes}


def derive_cache_summary(
    hits: int, misses: int, stores: int, stats: CacheStats
) -> Dict[str, Any]:
    """Raw counters + size → the shared cache-summary dict.

    One derivation used everywhere a cache is summarised — the sweep
    parent's end-of-sweep ``vpr.cache.summary`` event, ``repro cache
    stats``, and the serve daemon's ``GET /stats`` — so ``hit_ratio``
    and ``bytes_on_disk`` mean the same thing in all three places.
    ``hit_ratio`` is hits over *lookups* (hits + misses), 0.0 when
    nothing was looked up.
    """
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "stores": stores,
        "hit_ratio": (hits / lookups) if lookups else 0.0,
        "entries": stats.entries,
        "bytes_on_disk": stats.total_bytes,
    }


class EvaluationCache:
    """Content-addressed store of V-P&R candidate evaluations."""

    MARKER = "CACHE.json"
    OBJECT_DIR = "objects"
    TOTALS = "TOTALS.json"

    def __init__(
        self,
        directory: str,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._writes_since_gc = 0
        self._marker_written = False
        # In-process traffic counters for this store handle ("session"
        # scope).  Parent-side get/put bump them directly; worker-side
        # lookups (other processes) are folded in via
        # :meth:`note_lookup` when their results come back.
        self.session_hits = 0
        self.session_misses = 0
        self.session_stores = 0

    # -- paths ---------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.directory / self.OBJECT_DIR / key[:2] / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        root = self.directory / self.OBJECT_DIR
        try:
            shards = sorted(root.iterdir())
        except (FileNotFoundError, NotADirectoryError):
            return
        for shard in shards:
            if not shard.is_dir():
                continue
            try:
                yield from sorted(shard.glob("*.json"))
            except OSError:  # pragma: no cover - shard raced away
                continue

    # -- read path (workers and parent) --------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record for ``key``, or None on miss.

        Corruption-tolerant: any failure to read or validate the entry
        is a miss, and the offending file is removed best-effort.  A
        hit bumps the entry's mtime (the LRU recency signal).
        """
        path = self._entry_path(key)
        # Fault site: a worker can be killed while reading an entry to
        # prove the sweep degrades to the parent-side retry path.
        faults.check("cache.read", key=key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            perf.count("vpr.cache.miss")
            self.session_misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            perf.count("vpr.cache.corrupt")
            perf.count("vpr.cache.miss")
            self.session_misses += 1
            self._discard(path)
            return None
        if record.get("schema") != SCHEMA or not all(
            k in record for k in _REQUIRED
        ):
            perf.count("vpr.cache.corrupt")
            perf.count("vpr.cache.miss")
            self.session_misses += 1
            self._discard(path)
            return None
        perf.count("vpr.cache.hit")
        self.session_hits += 1
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away
            pass
        return record

    def touch(self, key: str) -> bool:
        """Refresh ``key``'s mtime without reading it; True when present.

        The LRU recency bump that :meth:`get` performs implicitly, as a
        standalone operation: the ECO engine calls this for every
        (cluster, shape) evaluation it *reuses from a checkpoint* — a
        reuse that never issues a :meth:`get` — so hot entries backing
        an interactive editing session stay at the warm end of the
        mtime order and survive concurrent :meth:`gc` passes that evict
        colder entries.
        """
        try:
            os.utime(self._entry_path(key))
        except OSError:
            return False
        perf.count("vpr.cache.touch")
        return True

    def note_lookup(self, hit: bool) -> None:
        """Fold one *remote* lookup into the session counters.

        Pool and fleet workers read the store from their own
        processes; the parent calls this once per returned work item
        (with the worker's cached flag) so its session counters — and
        therefore the end-of-sweep summary and the persisted lifetime
        totals — cover the whole fleet's traffic, not just the
        parent's own probes.
        """
        if hit:
            self.session_hits += 1
        else:
            self.session_misses += 1

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - permission races
            pass

    # -- write path (parent only) --------------------------------------
    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store one evaluation record under its content address."""
        payload = {"schema": SCHEMA, "key": key}
        payload.update(record)
        atomic_write_bytes(
            self._entry_path(key),
            json.dumps(payload, sort_keys=True).encode(),
            durable=False,
        )
        perf.count("vpr.cache.store")
        self.session_stores += 1
        if not self._marker_written:
            self._write_marker()
        self._writes_since_gc += 1
        if self._writes_since_gc >= GC_WRITE_INTERVAL:
            self._writes_since_gc = 0
            self.gc()

    def _write_marker(self) -> None:
        marker = self.directory / self.MARKER
        if not marker.is_file():
            atomic_write_bytes(
                marker,
                json.dumps({"schema": SCHEMA}, sort_keys=True).encode(),
                durable=False,
            )
        self._marker_written = True

    # -- lifetime traffic totals ---------------------------------------
    def read_totals(self) -> Dict[str, int]:
        """Cumulative hit/miss/store counters persisted in the store.

        Every sweep parent folds its session traffic in at the end of
        the sweep (:meth:`bump_totals`), so ``repro cache stats`` can
        derive a lifetime hit ratio for a cold directory.  Shares the
        read path's corruption tolerance: an unreadable or torn totals
        file reads as all-zero.
        """
        try:
            record = json.loads((self.directory / self.TOTALS).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {"hits": 0, "misses": 0, "stores": 0}
        if not isinstance(record, dict):
            return {"hits": 0, "misses": 0, "stores": 0}
        totals = {}
        for field in ("hits", "misses", "stores"):
            try:
                totals[field] = max(0, int(record.get(field, 0)))
            except (TypeError, ValueError):
                totals[field] = 0
        return totals

    def bump_totals(
        self, hits: int = 0, misses: int = 0, stores: int = 0
    ) -> Dict[str, int]:
        """Add one session's traffic to the persisted lifetime totals.

        Best-effort read-modify-write through the atomic rename
        primitive: two parents finishing simultaneously can lose one
        increment (the counters are observability, not accounting —
        the same trade the mtime-based LRU already makes), but a
        reader never sees a torn record.  Returns the new totals.
        """
        totals = self.read_totals()
        totals["hits"] += max(0, int(hits))
        totals["misses"] += max(0, int(misses))
        totals["stores"] += max(0, int(stores))
        payload = {"schema": SCHEMA}
        payload.update(totals)
        atomic_write_bytes(
            self.directory / self.TOTALS,
            json.dumps(payload, sort_keys=True).encode(),
            durable=False,
        )
        return totals

    # -- maintenance ---------------------------------------------------
    def stats(self) -> CacheStats:
        """Entry count and total payload bytes currently stored."""
        entries = 0
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - entry raced away
                continue
            entries += 1
        return CacheStats(entries=entries, total_bytes=total)

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict least-recently-used entries past the size bounds.

        Bounds default to the store's configured limits; returns the
        number of entries evicted (``vpr.cache.evict`` counts them
        too).  A bound of None is unlimited.

        Safe under concurrent writers: an entry another process
        removed between our directory walk and our unlink counts as
        already collected — it still reduces the store towards the
        bound, but is not reported (or counted) as one of our
        evictions, so two racing sweeps never evict more live entries
        than one sweep would.
        """
        if max_entries is None:
            max_entries = self.max_entries
        if max_bytes is None:
            max_bytes = self.max_bytes
        if max_entries is None and max_bytes is None:
            return 0
        aged: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:  # entry raced away under a concurrent writer
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        aged.sort()  # oldest mtime first = least recently used
        evicted = 0
        count = len(aged)
        for mtime, size, path in aged:
            over_count = max_entries is not None and count > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_count or over_bytes):
                break
            try:
                path.unlink()
                evicted += 1
            except FileNotFoundError:
                pass  # a concurrent gc/corruption-discard beat us to it
            except OSError:  # pragma: no cover - permission races
                continue  # undeletable: leave it out of the accounting
            count -= 1
            total -= size
        if evicted:
            perf.count("vpr.cache.evict", evicted)
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            self._discard(path)
            removed += 1
        return removed
