"""Content addresses for V-P&R evaluation results.

A cache key must change whenever anything that can change the
evaluation result changes, and for nothing else.  The inputs of one
(cluster, candidate) evaluation are exactly:

* the induced **sub-netlist** (instances, masters, net connectivity,
  net weights, ports) — canonicalised and hashed by
  :func:`netlist_digest`;
* the **shape candidate** (aspect ratio, utilization);
* the **evaluation-relevant config knobs** — collected by
  :func:`config_fingerprint`.  ``delta`` is deliberately excluded: it
  weighs the two cost components at *selection* time and never enters
  the evaluation itself, so sweeping delta re-uses cached costs;
* the cache **schema version**, so a change to what is stored (or how
  keys are derived) invalidates every old entry at once.

Canonical netlist form: instance/net records in dense index order,
pin references as ``(vertex, pin_name)`` with the same vertex
convention as :class:`~repro.place.problem.PlacementProblem`
(instances first, then sorted ports), master geometry and pin
electrical data included.  Coordinates are *not* included — the
evaluation re-places from scratch — but the floorplan is derived from
(cell area, candidate), both of which are covered.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.ioutil import sha256_hex
from repro.netlist.design import Design

#: Schema tag: bump to invalidate every existing cache entry.
SCHEMA = "repro.cache/1"


def netlist_digest(sub: Design) -> str:
    """SHA-256 of the canonical form of an induced sub-netlist.

    Two structurally identical sub-netlists (same masters, instances,
    connectivity, weights, ports — names included, since port names
    fix the periphery ring order) produce the same digest regardless
    of which run, process, or parent design induced them.
    """
    masters = {}
    for name in sorted(sub.masters):
        m = sub.masters[name]
        masters[name] = [
            m.width,
            m.height,
            m.is_sequential,
            m.is_macro,
            sorted(
                (p.name, p.direction.value, p.capacitance, p.is_clock)
                for p in m.pins.values()
            ),
        ]
    port_names = sorted(sub.ports)
    port_vertex = {name: sub.num_instances + i for i, name in enumerate(port_names)}

    def _ref(ref) -> list:
        if ref.instance is not None:
            return [ref.instance.index, ref.pin_name]
        return [port_vertex[ref.pin_name], ref.pin_name]

    nets = []
    for net in sub.nets:
        nets.append(
            [
                net.name,
                net.weight,
                net.is_clock,
                _ref(net.driver) if net.driver is not None else None,
                [_ref(ref) for ref in net.sinks],
            ]
        )
    canonical = {
        "masters": masters,
        "instances": [[i.name, i.master.name] for i in sub.instances],
        "ports": [
            [name, sub.ports[name].direction.value] for name in port_names
        ],
        "nets": nets,
    }
    return sha256_hex(
        json.dumps(canonical, sort_keys=True, separators=(",", ":")).encode()
    )


def config_fingerprint(config) -> Dict[str, object]:
    """The ``VPRConfig`` fields that influence one evaluation's result.

    Scheduling and fault-tolerance knobs (jobs, chunk_size, retries,
    timeouts) and the selection-only ``delta`` are excluded: they may
    change wall-clock or failure handling, never a successful
    evaluation's costs.
    """
    return {
        "top_x_percent": config.top_x_percent,
        "placer_iterations": config.placer_iterations,
        "route_target_cells": config.route_target_cells,
        "die_margin": config.die_margin,
        "seed": config.seed,
    }


def cache_key(
    digest: str,
    candidate,
    config,
    cell_area: Optional[float] = None,
) -> str:
    """The content address of one (sub-netlist, candidate, config) item.

    ``cell_area`` sizes the virtual die; it is derived from the parent
    design's instances (not the sub-netlist's masters alone), so it is
    hashed explicitly.
    """
    payload = {
        "schema": SCHEMA,
        "netlist": digest,
        "ar": candidate.aspect_ratio,
        "util": candidate.utilization,
        "cell_area": cell_area,
        "config": config_fingerprint(config),
    }
    return sha256_hex(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
