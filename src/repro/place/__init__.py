"""Global placement substrate (RePlAce/OpenROAD-gpl substitute).

A bound-to-bound (B2B) quadratic analytical placer with bin-based
density spreading, net weighting, region constraints, incremental mode
and greedy row legalization — the knobs Algorithm 1's seeded placement
needs (seed starts, ``-incremental`` runs, IO-net weight scaling,
Innovus-style region constraints).
"""

from repro.place.hpwl import hpwl, net_hpwl
from repro.place.problem import PlacementProblem
from repro.place.placer import GlobalPlacer, PlacerConfig, PlacementResult
from repro.place.regions import RegionConstraint
from repro.place.legalize import legalize
from repro.place.detailed import DetailedPlacementResult, detailed_placement
from repro.place.routability import (
    RoutabilityConfig,
    RoutabilityResult,
    routability_driven_refinement,
)

__all__ = [
    "hpwl",
    "net_hpwl",
    "PlacementProblem",
    "GlobalPlacer",
    "PlacerConfig",
    "PlacementResult",
    "RegionConstraint",
    "legalize",
    "DetailedPlacementResult",
    "detailed_placement",
    "RoutabilityConfig",
    "RoutabilityResult",
    "routability_driven_refinement",
]
