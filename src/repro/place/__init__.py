"""Global placement substrate (RePlAce/OpenROAD-gpl substitute).

A bound-to-bound (B2B) quadratic analytical placer with bin-based
density spreading, net weighting, region constraints, incremental mode
and greedy row legalization — the knobs Algorithm 1's seeded placement
needs (seed starts, ``-incremental`` runs, IO-net weight scaling,
Innovus-style region constraints).

The ``hpwl`` *function* shadows the ``repro.place.hpwl`` *submodule*
on attribute access (``repro.place.hpwl`` is the function once this
package is imported).  ``from repro.place.hpwl import ...`` still works
— import-from consults ``sys.modules`` before attributes — and the
submodule stays importable under the stable :data:`hpwl_module` alias.
"""

# Bind the submodule under an unshadowed name BEFORE the function
# import below rebinds the ``hpwl`` attribute to the function.
from repro.place import hpwl as hpwl_module
from repro.place.hpwl import hpwl, net_hpwl
from repro.place.problem import PlacementProblem
from repro.place.placer import GlobalPlacer, PlacerConfig, PlacementResult
from repro.place.regions import RegionConstraint
from repro.place.legalize import legalize
from repro.place.detailed import DetailedPlacementResult, detailed_placement
from repro.place.routability import (
    RoutabilityConfig,
    RoutabilityResult,
    routability_driven_refinement,
)

__all__ = [
    "hpwl",
    "hpwl_module",
    "net_hpwl",
    "PlacementProblem",
    "GlobalPlacer",
    "PlacerConfig",
    "PlacementResult",
    "RegionConstraint",
    "legalize",
    "DetailedPlacementResult",
    "detailed_placement",
    "RoutabilityConfig",
    "RoutabilityResult",
    "routability_driven_refinement",
]
