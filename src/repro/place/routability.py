"""Routability-driven placement refinement.

The RePlAce routability mode the paper's OpenROAD flow can enable:
route the current placement, inflate the areas of cells sitting in
over-congested GCells, and re-run incremental placement so the density
engine pushes cells out of routing hot spots.  Iterates until the
overflowed-GCell fraction meets the target or the round limit hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.netlist.design import Design
from repro.place.placer import GlobalPlacer, PlacerConfig
from repro.place.problem import PlacementProblem
from repro.route.global_route import GlobalRouter


@dataclass
class RoutabilityConfig:
    """Refinement knobs.

    Attributes:
        max_rounds: Route/inflate/replace rounds.
        target_overflow: Stop when the fraction of over-capacity GCells
            falls below this.
        congestion_threshold: GCells above this demand/capacity ratio
            trigger inflation of their cells.
        inflation_factor: Area multiplier applied per round to cells in
            hot GCells (compounding, capped by max_inflation).
        max_inflation: Ceiling on the cumulative per-cell inflation.
    """

    max_rounds: int = 3
    target_overflow: float = 0.02
    congestion_threshold: float = 1.0
    inflation_factor: float = 1.6
    max_inflation: float = 4.0


@dataclass
class RoutabilityResult:
    """Outcome of the refinement.

    Attributes:
        rounds: Rounds executed.
        overflow_trace: Over-capacity GCell fraction after each route.
        hpwl_trace: HPWL after each incremental placement.
        inflated_cells: Cells carrying inflation at the end.
    """

    rounds: int
    overflow_trace: List[float] = field(default_factory=list)
    hpwl_trace: List[float] = field(default_factory=list)
    inflated_cells: int = 0

    @property
    def converged(self) -> bool:
        """Whether the final overflow met the target."""
        return bool(self.overflow_trace) and self.overflow_trace[-1] <= 0.02


def routability_driven_refinement(
    design: Design,
    config: Optional[RoutabilityConfig] = None,
) -> RoutabilityResult:
    """Refine a placed design for routability.

    The design must already be globally placed; coordinates are updated
    in place.  Inflation only affects the density model (the placer's
    area array), never the real cell sizes.
    """
    config = config or RoutabilityConfig()
    inflation = np.ones(design.num_instances)
    overflow_trace: List[float] = []
    hpwl_trace: List[float] = []

    rounds = 0
    for rounds in range(1, config.max_rounds + 1):
        routing = GlobalRouter(design).run()
        overflow_trace.append(routing.overflow_fraction)
        if routing.overflow_fraction <= config.target_overflow:
            break

        grid = routing.grid
        ratios = grid.congestion_ratios().reshape(grid.ny, grid.nx)
        # Inflate cells in hot GCells.
        hot_cells = 0
        for inst in design.instances:
            if inst.fixed:
                continue
            cx, cy = grid.cell_of(inst.x, inst.y)
            if ratios[cy, cx] > config.congestion_threshold:
                inflation[inst.index] = min(
                    inflation[inst.index] * config.inflation_factor,
                    config.max_inflation,
                )
                hot_cells += 1
        if hot_cells == 0:
            break

        problem = PlacementProblem(design)
        problem.areas[: design.num_instances] *= inflation
        placer = GlobalPlacer(
            problem, PlacerConfig(incremental=True, incremental_iterations=8)
        )
        result = placer.run()
        hpwl_trace.append(result.hpwl)

    return RoutabilityResult(
        rounds=rounds,
        overflow_trace=overflow_trace,
        hpwl_trace=hpwl_trace,
        inflated_cells=int((inflation > 1.0).sum()),
    )
