"""Flat array representation of a placement problem.

The placer works on dense arrays rather than the object model: vertex
``i < design.num_instances`` is instance ``i``; ports are appended as
fixed vertices.  Nets are flattened into ``pin_vertex`` /
``net_offsets`` CSR-style arrays, which makes HPWL and the B2B model
vectorizable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.netlist.design import Design
from repro.place.hpwl import hpwl_arrays


class PlacementProblem:
    """Array-form snapshot of a design for global placement.

    Attributes:
        design: Source design (written back to by :meth:`commit`).
        num_movable_instances: Instances come first in vertex order.
        x, y: Working coordinates (mutated by the placer).
        areas: Vertex areas (ports get area 0).
        fixed: Boolean mask of vertices the placer must not move.
        pin_vertex, net_offsets: CSR-style net membership.
        net_weights: Per-net placement weights.
        net_indices: Original design net index per problem net.
    """

    def __init__(
        self, design: Design, include_clock: bool = False, use_arrays: bool = True
    ) -> None:
        self.design = design
        n_inst = design.num_instances
        port_names = sorted(design.ports)
        self._port_vertex: Dict[str, int] = {
            name: n_inst + i for i, name in enumerate(port_names)
        }
        n_total = n_inst + len(port_names)

        self.x = np.zeros(n_total)
        self.y = np.zeros(n_total)
        self.areas = np.zeros(n_total)
        self.fixed = np.zeros(n_total, dtype=bool)
        if use_arrays:
            arrays = design.arrays()
            xs, ys = arrays.current_positions()
            self.x[:n_inst] = xs
            self.y[:n_inst] = ys
            self.areas[:n_inst] = arrays.current_inst_areas()
            instances = design.instances
            self.fixed[:n_inst] = np.fromiter(
                (i.fixed for i in instances), dtype=bool, count=n_inst
            )
            px, py = arrays.current_port_xy()
            self.x[n_inst + arrays.port_sorted_rank] = px
            self.y[n_inst + arrays.port_sorted_rank] = py
            self.fixed[n_inst:] = True
            pin_vertex, offsets, sel_nets = arrays.placement_csr(include_clock)
            self.pin_vertex = pin_vertex
            self.net_offsets = offsets
            self.net_weights = arrays.current_net_weights()[sel_nets]
            self.net_indices = sel_nets
        else:
            self._build_reference(design, include_clock)
        self.num_movable_instances = n_inst

    def _build_reference(self, design: Design, include_clock: bool) -> None:
        """Object-graph construction (kept as the equivalence oracle)."""
        for inst in design.instances:
            self.x[inst.index] = inst.x
            self.y[inst.index] = inst.y
            self.areas[inst.index] = inst.area
            self.fixed[inst.index] = inst.fixed
        for name, vid in self._port_vertex.items():
            port = design.ports[name]
            self.x[vid] = port.x
            self.y[vid] = port.y
            self.fixed[vid] = True

        pins: List[int] = []
        offsets: List[int] = [0]
        weights: List[float] = []
        net_indices: List[int] = []
        for net in design.nets:
            if net.is_clock and not include_clock:
                continue
            vertex_ids = set()
            for ref in net.pins():
                if ref.instance is not None:
                    vertex_ids.add(ref.instance.index)
                else:
                    vertex_ids.add(self._port_vertex[ref.pin_name])
            if len(vertex_ids) < 2:
                continue
            pins.extend(sorted(vertex_ids))
            offsets.append(len(pins))
            weights.append(net.weight)
            net_indices.append(net.index)

        self.pin_vertex = np.asarray(pins, dtype=np.int64)
        self.net_offsets = np.asarray(offsets, dtype=np.int64)
        self.net_weights = np.asarray(weights)
        self.net_indices = np.asarray(net_indices, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Total vertices (instances + ports)."""
        return len(self.x)

    @property
    def num_nets(self) -> int:
        """Number of placeable nets."""
        return len(self.net_weights)

    @property
    def movable(self) -> np.ndarray:
        """Boolean mask of movable vertices."""
        return ~self.fixed

    def port_vertex(self, name: str) -> int:
        """Vertex id of a port."""
        return self._port_vertex[name]

    def refresh_port_positions(self) -> None:
        """Re-read port coordinates from the design.

        Lets a problem instance be reused across V-P&R shape candidates
        (pin/offset arrays are shape-independent; only the virtual die's
        port ring moves between candidates).
        """
        ports = self.design.ports
        for name, vid in self._port_vertex.items():
            port = ports[name]
            self.x[vid] = port.x
            self.y[vid] = port.y

    def hpwl(self, weighted: bool = False) -> float:
        """HPWL of the working coordinates (microns)."""
        return hpwl_arrays(
            self.pin_vertex,
            self.net_offsets,
            self.x,
            self.y,
            self.net_weights if weighted else None,
        )

    def set_positions(
        self, x: Sequence[float], y: Sequence[float], only_movable: bool = True
    ) -> None:
        """Overwrite working coordinates (fixed vertices kept by default)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if only_movable:
            mask = self.movable
            self.x[mask] = x[mask]
            self.y[mask] = y[mask]
        else:
            self.x[:] = x
            self.y[:] = y

    def commit(self) -> None:
        """Write working coordinates back to the design's instances."""
        for inst in self.design.instances:
            if not inst.fixed:
                inst.x = float(self.x[inst.index])
                inst.y = float(self.y[inst.index])

    def clip_to_core(self) -> None:
        """Clamp movable vertices into the core box."""
        fp = self.design.floorplan
        mask = self.movable
        self.x[mask] = np.clip(self.x[mask], fp.core_llx, fp.core_urx)
        self.y[mask] = np.clip(self.y[mask], fp.core_lly, fp.core_ury)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlacementProblem(V={self.num_vertices}, nets={self.num_nets}, "
            f"movable={int(self.movable.sum())})"
        )
