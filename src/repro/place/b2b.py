"""Bound-to-bound (B2B) quadratic net model.

Implements the Spindler-Schlichtmann-Johannes B2B model: for each net,
the extreme pins on an axis connect to every other pin with weight
``w_net * 2 / ((p - 1) * distance)``, which makes the quadratic
objective equal HPWL at the linearisation point.  The resulting sparse
SPD system is solved per axis with conjugate gradients.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro import perf

try:  # pragma: no cover - exercised whenever scipy provides the kernel
    from scipy.sparse import _sparsetools as _spt

    _CSR_MATVEC = _spt.csr_matvec
except ImportError:  # pragma: no cover - older/newer scipy layout
    _CSR_MATVEC = None

#: Minimum pin separation (microns) used in B2B weights.  Clamping at
#: roughly one cell pitch keeps coincident pins (e.g. seeded starts
#: where a whole cluster sits at one point) from creating near-rigid
#: springs that spreading cannot pull apart.
MIN_SEPARATION = 1.0


def b2b_edges(
    pin_vertex: np.ndarray,
    net_offsets: np.ndarray,
    net_weights: np.ndarray,
    coords: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build B2B edges for one axis at the current linearisation point.

    Returns ``(u, v, w)`` arrays of graph edges.  Vectorized: pins are
    sorted per net by coordinate; the first/last pin of each net is the
    boundary pin.
    """
    num_nets = len(net_offsets) - 1
    if num_nets == 0:
        empty = np.zeros(0)
        return empty.astype(np.int64), empty.astype(np.int64), empty

    pin_net = np.repeat(np.arange(num_nets, dtype=np.int64), np.diff(net_offsets))
    pin_coord = coords[pin_vertex]
    order = np.lexsort((pin_coord, pin_net))
    sv = pin_vertex[order]  # vertices sorted by (net, coord)
    pno = pin_net[order]

    starts = net_offsets[:-1]
    ends = net_offsets[1:] - 1
    degrees = np.diff(net_offsets)

    min_vertex = sv[starts]
    max_vertex = sv[ends]

    # Edge set: (min, p) for p != min, and (max, p) for p != max, over
    # the sorted pin order; plus the direct (min, max) edge counted once.
    u_list = []
    v_list = []
    w_list = []

    inv_deg = 2.0 / np.maximum(degrees - 1, 1)
    pin_weight = (net_weights * inv_deg)[pno]
    pin_min = min_vertex[pno]
    pin_max = max_vertex[pno]
    coord_sorted = pin_coord[order]
    min_coord = coord_sorted[starts][pno]
    max_coord = coord_sorted[ends][pno]

    # Connect every non-boundary pin to both boundary pins.
    is_first = np.zeros(len(sv), dtype=bool)
    is_first[starts] = True
    is_last = np.zeros(len(sv), dtype=bool)
    is_last[ends] = True
    inner = ~(is_first | is_last)

    # inner -> min
    d = np.maximum(np.abs(coord_sorted - min_coord), MIN_SEPARATION)
    u_list.append(sv[inner])
    v_list.append(pin_min[inner])
    w_list.append((pin_weight / d)[inner])
    # inner -> max
    d = np.maximum(np.abs(max_coord - coord_sorted), MIN_SEPARATION)
    u_list.append(sv[inner])
    v_list.append(pin_max[inner])
    w_list.append((pin_weight / d)[inner])
    # min -> max, once per net
    span = np.maximum(np.abs(coord_sorted[ends] - coord_sorted[starts]), MIN_SEPARATION)
    u_list.append(min_vertex)
    v_list.append(max_vertex)
    w_list.append(net_weights * inv_deg / span)

    u = np.concatenate(u_list)
    v = np.concatenate(v_list)
    w = np.concatenate(w_list)
    keep = u != v
    return u[keep], v[keep], w[keep]


def solve_axis(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    coords: np.ndarray,
    fixed: np.ndarray,
    anchor_targets: Optional[np.ndarray] = None,
    anchor_weights: Optional[np.ndarray] = None,
    cg_tol: float = 1e-6,
    cg_maxiter: int = 300,
) -> np.ndarray:
    """Solve the quadratic system for one axis.

    Args:
        u, v, w: B2B edges.
        coords: Current coordinates (used as the CG starting point and
            as the value of fixed vertices).
        fixed: Fixed-vertex mask.
        anchor_targets: Optional per-vertex pseudo-net anchor targets.
        anchor_weights: Per-vertex anchor weights (0 disables).

    Returns:
        New coordinate array (fixed entries unchanged).
    """
    n = len(coords)
    movable = ~fixed
    m_index = np.full(n, -1, dtype=np.int64)
    m_ids = np.nonzero(movable)[0]
    m_index[m_ids] = np.arange(len(m_ids))
    nm = len(m_ids)
    if nm == 0:
        return coords.copy()

    mu = movable[u]
    mv = movable[v]

    # movable-movable edges
    both = mu & mv
    iu = m_index[u[both]]
    iv = m_index[v[both]]
    ww = w[both]
    rows = [iu, iv]
    cols = [iv, iu]
    vals = [-ww, -ww]

    # movable-fixed edges contribute to diagonal and RHS.
    mask_uf = mu & ~mv
    mask_fu = mv & ~mu
    ii_uf = m_index[u[mask_uf]]
    ii_fu = m_index[v[mask_fu]]
    ww_uf = w[mask_uf]
    ww_fu = w[mask_fu]

    # One bincount accumulates each bin sequentially in element order,
    # matching the historical np.add.at call sequence bit for bit.
    diag = np.bincount(
        np.concatenate([iu, iv, ii_uf, ii_fu]),
        weights=np.concatenate([ww, ww, ww_uf, ww_fu]),
        minlength=nm,
    )
    b = np.bincount(
        np.concatenate([ii_uf, ii_fu]),
        weights=np.concatenate(
            [ww_uf * coords[v[mask_uf]], ww_fu * coords[u[mask_fu]]]
        ),
        minlength=nm,
    )

    # anchors (pseudo nets to spreading targets / seed positions)
    if anchor_targets is not None and anchor_weights is not None:
        aw = anchor_weights[m_ids]
        diag += aw
        b += aw * anchor_targets[m_ids]

    # Guard isolated vertices (no edges, no anchors).
    isolated = diag <= 0
    if isolated.any():
        diag = diag.copy()
        diag[isolated] = 1.0
        b[isolated] = coords[m_ids][isolated]

    rows_arr = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
    cols_arr = np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64)
    vals_arr = np.concatenate(vals) if vals else np.zeros(0)
    data, indices, indptr = _assemble_csr(
        np.concatenate([rows_arr, np.arange(nm)]),
        np.concatenate([cols_arr, np.arange(nm)]),
        np.concatenate([vals_arr, diag]),
        nm,
    )

    solution = _jacobi_pcg(
        data,
        indices,
        indptr,
        diag,
        b,
        coords[m_ids],
        rtol=cg_tol,
        maxiter=cg_maxiter,
    )
    out = coords.copy()
    out[m_ids] = solution
    return out


def _assemble_csr(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets -> deduplicated CSR arrays.

    Matches ``sp.coo_matrix(...).tocsr()`` bit-for-bit: entries are
    stable-sorted by (row, col) — the order scipy's row bucketing plus
    stable column sort produces — and duplicates summed left-to-right
    in that order (``np.add.reduceat`` over the tiny duplicate groups
    reduces sequentially, like ``csr_sum_duplicates``).  Skipping the
    coo_matrix construction avoids per-solve scipy validation overhead
    that rivals the solve itself on small systems.
    """
    # One stable argsort on the fused (row, col) key replaces the
    # two-pass lexsort; same order (row-major, column-minor, ties in
    # input order), about half the sorting cost.
    key = rows * np.int64(n) + cols
    order = np.argsort(key, kind="stable")
    k_sorted = key[order]
    v_sorted = vals[order]
    first = np.empty(len(k_sorted), dtype=bool)
    first[0] = True
    np.not_equal(k_sorted[1:], k_sorted[:-1], out=first[1:])
    starts = np.nonzero(first)[0]
    data = np.add.reduceat(v_sorted, starts)
    keys = k_sorted[starts]
    indices = keys % n
    counts = np.bincount(keys // n, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return data, indices, indptr


def _jacobi_pcg(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    diag: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    rtol: float = 1e-6,
    maxiter: int = 300,
) -> np.ndarray:
    """Jacobi-preconditioned conjugate gradients on a CSR SPD system.

    Same recurrence and stopping rule as ``scipy.sparse.linalg.cg``
    (residual norm <= rtol * ||b||), but bypassing scipy's per-call
    dispatch: the matvec goes straight to the ``csr_matvec`` kernel
    (identical arithmetic to ``A.dot``) into a reused buffer, and norms
    are ``sqrt(v . v)`` — exactly what ``np.linalg.norm`` computes for
    1-D input, minus the wrapper.  On the small virtual-die systems the
    V-P&R sweep solves by the hundreds, that dispatch dominated solve
    time.

    ``diag`` is the matrix diagonal (the B2B Laplacian keeps every
    diagonal entry strictly positive).
    """
    n = len(diag)
    if not b.any():
        # scipy.cg's zero-RHS special case: the solution is zero.
        return np.zeros_like(b)
    inv_diag = 1.0 / diag
    x = x0.astype(float, copy=True)
    if _CSR_MATVEC is not None:
        buffer = np.zeros(n)

        def matvec(vec: np.ndarray) -> np.ndarray:
            buffer[:] = 0.0
            _CSR_MATVEC(n, n, indptr, indices, data, vec, buffer)
            return buffer

    else:  # pragma: no cover - fallback for exotic scipy builds
        matvec = sp.csr_matrix((data, indices, indptr), shape=(n, n)).dot
    r = b - matvec(x)
    atol = rtol * math.sqrt(float(b @ b))
    rho_prev = 0.0
    p = None
    iterations = 0
    for _ in range(maxiter):
        if math.sqrt(float(r @ r)) < atol:
            break
        z = inv_diag * r
        rho = float(r @ z)
        if rho == 0.0:
            # Exact-zero residual with atol == 0: converged.
            break
        if p is None:
            p = z.copy()
        else:
            p = z + (rho / rho_prev) * p
        Ap = matvec(p)
        alpha = rho / float(p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rho_prev = rho
        iterations += 1
    # Solver-effort counters for the perf/telemetry layers (no-ops
    # while disabled); a CG iteration blow-up is the first symptom of
    # an ill-conditioned B2B system (coincident pins, bad anchors).
    perf.count("b2b.solves")
    perf.count("b2b.cg_iterations", iterations)
    return x
