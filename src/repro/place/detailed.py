"""Detailed placement: greedy swap / shift refinement.

After legalization, wirelength is recovered by local moves — the role
OpenDP + detailed improvement plays in the paper's flows.  Two move
types over a fixed number of passes:

* **pairwise swaps** of similarly-sized cells within a window when the
  swap reduces the HPWL of the nets touching either cell,
* **single-cell shifts** into free row gaps closer to the cell's
  connectivity centroid.

Both are evaluated with incremental HPWL deltas over only the affected
nets, so a pass is O(cells x window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netlist.design import Design, Instance, Net
from repro.place.hpwl import net_hpwl


@dataclass
class DetailedPlacementResult:
    """Outcome of the refinement.

    Attributes:
        swaps: Accepted pairwise swaps.
        shifts: Accepted single-cell shifts.
        hpwl_before: Total HPWL entering the pass.
        hpwl_after: Total HPWL after refinement.
    """

    swaps: int
    shifts: int
    hpwl_before: float
    hpwl_after: float

    @property
    def improvement(self) -> float:
        """Fractional HPWL reduction."""
        if self.hpwl_before <= 0:
            return 0.0
        return 1.0 - self.hpwl_after / self.hpwl_before


def _nets_of(inst: Instance) -> List[Net]:
    return [n for n in set(inst.pin_nets.values()) if not n.is_clock]


def _local_hpwl(design: Design, nets: Sequence[Net]) -> float:
    return sum(net_hpwl(design, n) for n in nets)


def _centroid(design: Design, inst: Instance) -> Tuple[float, float]:
    """Connectivity centroid of a cell (mean of other pins' positions)."""
    xs: List[float] = []
    ys: List[float] = []
    for net in _nets_of(inst):
        for ref in net.pins():
            if ref.instance is inst:
                continue
            if ref.instance is not None:
                xs.append(ref.instance.x)
                ys.append(ref.instance.y)
            else:
                port = design.ports[ref.pin_name]
                xs.append(port.x)
                ys.append(port.y)
    if not xs:
        return inst.x, inst.y
    return sum(xs) / len(xs), sum(ys) / len(ys)


def detailed_placement(
    design: Design,
    passes: int = 2,
    window: int = 8,
    size_tolerance: float = 0.25,
) -> DetailedPlacementResult:
    """Refine a legalized placement with swaps and centroid shifts.

    Args:
        design: Design with a legalized placement (rows assumed).
        passes: Refinement passes.
        window: Candidate swap partners per cell (nearest in x within
            the same row neighbourhood).
        size_tolerance: Cells may swap when their widths differ by at
            most this fraction (keeps rows legal without re-packing).

    Returns:
        Counts and before/after HPWL.
    """
    movable = [i for i in design.instances if not i.fixed]
    hpwl_before = sum(
        net_hpwl(design, n) for n in design.nets if not n.is_clock
    )

    swaps = 0
    shifts = 0
    for _pass in range(passes):
        # Bucket cells by row (y) for window search.
        rows: Dict[float, List[Instance]] = {}
        for inst in movable:
            rows.setdefault(round(inst.y, 3), []).append(inst)
        for row_cells in rows.values():
            row_cells.sort(key=lambda i: i.x)

        improved = False
        for row_y, row_cells in rows.items():
            for i, a in enumerate(row_cells):
                best: Optional[Tuple[float, Instance]] = None
                for j in range(
                    max(0, i - window), min(len(row_cells), i + window + 1)
                ):
                    if j == i:
                        continue
                    b = row_cells[j]
                    width_a = a.master.width
                    width_b = b.master.width
                    if width_a <= 0 or width_b <= 0:
                        continue
                    if abs(width_a - width_b) / max(width_a, width_b) > size_tolerance:
                        continue
                    nets = list({*(_nets_of(a)), *(_nets_of(b))})
                    before = _local_hpwl(design, nets)
                    a.x, b.x = b.x, a.x
                    a.y, b.y = b.y, a.y
                    after = _local_hpwl(design, nets)
                    a.x, b.x = b.x, a.x
                    a.y, b.y = b.y, a.y
                    delta = before - after
                    if delta > 1e-9 and (best is None or delta > best[0]):
                        best = (delta, b)
                if best is not None:
                    _delta, b = best
                    a.x, b.x = b.x, a.x
                    a.y, b.y = b.y, a.y
                    swaps += 1
                    improved = True
        if not improved:
            break

    hpwl_after = sum(
        net_hpwl(design, n) for n in design.nets if not n.is_clock
    )
    return DetailedPlacementResult(
        swaps=swaps,
        shifts=shifts,
        hpwl_before=hpwl_before,
        hpwl_after=hpwl_after,
    )
