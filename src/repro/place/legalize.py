"""Greedy row legalization (Tetris-style).

Snaps the global placement to standard-cell rows without overlaps:
cells are processed in x order and appended to per-row free segments
(macro footprints are blocked out), choosing the row that minimises
displacement.  Quality is adequate for the relative post-route
comparisons this reproduction makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro import telemetry
from repro.netlist.design import Design


@dataclass
class _Segment:
    """A free interval of one row with a fill cursor."""

    start: float
    end: float
    cursor: float


def _row_segments(design: Design, num_rows: int) -> List[List[_Segment]]:
    """Free segments per row after blocking out fixed instances."""
    fp = design.floorplan
    segments: List[List[_Segment]] = [
        [_Segment(fp.core_llx, fp.core_urx, fp.core_llx)] for _ in range(num_rows)
    ]
    for inst in design.instances:
        if not inst.fixed:
            continue
        half_w = inst.master.width / 2
        half_h = inst.master.height / 2
        lo_row = int((inst.y - half_h - fp.core_lly) / fp.row_height)
        hi_row = int((inst.y + half_h - fp.core_lly) / fp.row_height)
        for row in range(max(0, lo_row), min(num_rows - 1, hi_row) + 1):
            new_segments: List[_Segment] = []
            for seg in segments[row]:
                block_lo = inst.x - half_w
                block_hi = inst.x + half_w
                if block_hi <= seg.start or block_lo >= seg.end:
                    new_segments.append(seg)
                    continue
                if block_lo > seg.start:
                    new_segments.append(_Segment(seg.start, block_lo, seg.start))
                if block_hi < seg.end:
                    new_segments.append(_Segment(block_hi, seg.end, block_hi))
            segments[row] = new_segments
    return segments


def legalize(design: Design, row_search_window: int = 12) -> float:
    """Legalize movable instances onto rows; returns total displacement.

    Args:
        design: Design with a committed global placement.
        row_search_window: Rows examined above/below the target row
            (widened automatically when nothing fits).

    Returns:
        Sum of Manhattan displacements (microns).
    """
    fp = design.floorplan
    num_rows = max(1, int(fp.core_height / fp.row_height))
    with telemetry.span("place.legalize", instances=design.num_instances):
        total_disp, unplaced = _legalize_rows(
            design, fp, num_rows, row_search_window
        )
    telemetry.observe("legalize.displacement", total_disp)
    if unplaced:
        telemetry.event(
            "legalize.unplaced", count=unplaced, design=design.name
        )
    return total_disp


def _legalize_rows(design, fp, num_rows, row_search_window):
    segments = _row_segments(design, num_rows)

    movable = [inst for inst in design.instances if not inst.fixed]
    movable.sort(key=lambda inst: inst.x)

    total_disp = 0.0
    unplaced = 0
    for inst in movable:
        width = inst.master.width
        target_row = int((inst.y - fp.core_lly) / fp.row_height)
        target_row = int(np.clip(target_row, 0, num_rows - 1))

        best = None  # (cost, row, segment, position)
        window = row_search_window
        while best is None and window <= 4 * num_rows:
            lo = max(0, target_row - window)
            hi = min(num_rows - 1, target_row + window)
            for row in range(lo, hi + 1):
                row_y = fp.core_lly + (row + 0.5) * fp.row_height
                dy = abs(row_y - inst.y)
                if best is not None and dy >= best[0]:
                    continue
                for seg in segments[row]:
                    position = max(seg.cursor, min(inst.x - width / 2, seg.end - width))
                    if position < seg.cursor or position + width > seg.end:
                        continue
                    cost = abs(position + width / 2 - inst.x) + dy
                    if best is None or cost < best[0]:
                        best = (cost, row, seg, position)
            window *= 2
        if best is None:
            # Core is over-full around this cell; leave it in place.
            unplaced += 1
            continue
        cost, row, seg, position = best
        row_y = fp.core_lly + (row + 0.5) * fp.row_height
        total_disp += abs(position + width / 2 - inst.x) + abs(row_y - inst.y)
        inst.x = position + width / 2
        inst.y = row_y
        seg.cursor = position + width
    return total_disp, unplaced
