"""The global placer: B2B quadratic solves + density spreading.

Supports the three modes Algorithm 1 needs:

* full global placement (the "default flow" baseline),
* seeded + incremental placement (instances pre-seeded at their cluster
  centres, anchored to the seed, few refinement iterations),
* region-constrained placement (Innovus mode).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import monitor, telemetry
from repro.place.b2b import b2b_edges, solve_axis
from repro.place.problem import PlacementProblem
from repro.place.regions import RegionConstraint, clamp_regions
from repro.place.spreading import DensityGrid, spread_displacement, spreading_targets


@dataclass
class PlacerConfig:
    """Placer knobs.

    Attributes:
        max_iterations: Upper bound on solve/spread rounds.
        min_iterations: Rounds run before the overflow exit can fire.
        target_overflow: Stop once bin overflow falls below this.
        target_density: Bin density ceiling used by the overflow metric.
        anchor_base: Initial pseudo-net anchor weight.
        anchor_growth: Multiplicative anchor ramp per iteration.
        spread_strength: Damping of the per-round spreading move.
        incremental: Start from the problem's current coordinates and
            anchor to them instead of running from scratch.
        incremental_anchor: Seed anchor weight in incremental mode.
        seed_decay: Per-iteration decay of the seed anchor.
        region_iterations: Enforce region constraints only for this
            many leading iterations (None = all iterations).  The
            Innovus-mode flow steers the early incremental rounds with
            the cluster regions, then releases them (Algorithm 1,
            line 20) so density resolution is unconstrained.
        soft_regions: Apply regions by clamping the anchor *targets*
            into the region (a soft spring toward the region interior,
            approximating how commercial placers treat region guides)
            instead of hard-clamping positions after every solve.
        telemetry: Prefix of the QoR streams this run emits per
            iteration (``<prefix>.hpwl``, ``<prefix>.overflow``,
            ``<prefix>.spread_move``) when :mod:`repro.telemetry` is
            enabled.  None mutes the run — the V-P&R engine mutes its
            hundreds of virtual-die placements so the flow-level
            ``gp.*`` convergence streams stay clean.
        seed: RNG seed for the initial jitter.
    """

    max_iterations: int = 44
    min_iterations: int = 6
    target_overflow: float = 0.08
    target_density: float = 1.0
    anchor_base: float = 2e-4
    anchor_growth: float = 1.30
    spread_strength: float = 0.8
    incremental: bool = False
    incremental_iterations: int = 18
    incremental_anchor: float = 2e-3
    incremental_growth: float = 1.5
    seed_decay: float = 0.6
    region_iterations: Optional[int] = None
    soft_regions: bool = True
    telemetry: Optional[str] = "gp"
    seed: int = 0


@dataclass
class PlacementResult:
    """Outcome of one placement run.

    Attributes:
        hpwl: Final unweighted HPWL (microns).
        iterations: Rounds executed.
        overflow: Final bin overflow.
        runtime: Wall-clock seconds.
        hpwl_trace: HPWL after every round (for convergence tests).
    """

    hpwl: float
    iterations: int
    overflow: float
    runtime: float
    hpwl_trace: List[float] = field(default_factory=list)


class GlobalPlacer:
    """Analytical global placer over a :class:`PlacementProblem`."""

    def __init__(
        self,
        problem: PlacementProblem,
        config: Optional[PlacerConfig] = None,
        regions: Optional[Sequence[RegionConstraint]] = None,
    ) -> None:
        self.problem = problem
        self.config = config or PlacerConfig()
        self.regions = list(regions or [])
        self.grid = DensityGrid.for_problem(
            problem.design.floorplan, int(problem.movable.sum())
        )

    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        """Start all movables near the core centre with tiny jitter."""
        problem = self.problem
        fp = problem.design.floorplan
        rng = np.random.default_rng(self.config.seed)
        mask = problem.movable
        n = int(mask.sum())
        cx = 0.5 * (fp.core_llx + fp.core_urx)
        cy = 0.5 * (fp.core_lly + fp.core_ury)
        problem.x[mask] = cx + rng.normal(0.0, 0.02 * fp.core_width, n)
        problem.y[mask] = cy + rng.normal(0.0, 0.02 * fp.core_height, n)
        # Seed region members inside their regions.
        for region in self.regions:
            ids = np.asarray(region.vertex_ids, dtype=np.int64)
            if len(ids) == 0:
                continue
            rcx, rcy = region.center
            problem.x[ids] = rcx + rng.normal(0.0, 0.1 * max(region.width, 1e-3), len(ids))
            problem.y[ids] = rcy + rng.normal(0.0, 0.1 * max(region.height, 1e-3), len(ids))
        problem.clip_to_core()

    def _solve_round(
        self,
        anchor_x: Optional[np.ndarray],
        anchor_y: Optional[np.ndarray],
        anchor_w: Optional[np.ndarray],
        apply_regions: bool = True,
    ) -> None:
        """One x/y pair of B2B linearized quadratic solves."""
        problem = self.problem
        ux, vx, wx = b2b_edges(
            problem.pin_vertex, problem.net_offsets, problem.net_weights, problem.x
        )
        problem.x = solve_axis(
            ux, vx, wx, problem.x, problem.fixed, anchor_x, anchor_w
        )
        uy, vy, wy = b2b_edges(
            problem.pin_vertex, problem.net_offsets, problem.net_weights, problem.y
        )
        problem.y = solve_axis(
            uy, vy, wy, problem.y, problem.fixed, anchor_y, anchor_w
        )
        problem.clip_to_core()
        if apply_regions:
            clamp_regions(self.regions, problem.x, problem.y)

    # ------------------------------------------------------------------
    def run(self) -> PlacementResult:
        """Run global placement; commits coordinates to the design."""
        start = time.perf_counter()
        problem = self.problem
        config = self.config
        mode = "incremental" if config.incremental else "full"

        # Progress mirrors the QoR-stream muting: the V-P&R engine's
        # hundreds of virtual-die placements (telemetry=None) stay
        # invisible; only the flow-level gp/gp.cluster runs report.
        # Rounds count the initial solve plus the bounded loop; an
        # early convergence exit clamps the total on complete().
        if config.telemetry is not None:
            bound = (
                config.incremental_iterations
                if config.incremental
                else config.max_iterations
            )
            monitor.start_task(
                f"{config.telemetry}.iters", bound + 1, unit="rounds"
            )
        try:
            with telemetry.span(
                "place.global",
                mode=mode,
                movable=int(problem.movable.sum()),
            ):
                if config.incremental:
                    result = self._run_incremental()
                else:
                    result = self._run_full()
        finally:
            if config.telemetry is not None:
                monitor.complete(f"{config.telemetry}.iters")

        if config.telemetry is not None:
            converged = result.overflow < config.target_overflow
            telemetry.event(
                "placement.converged" if converged else "placement.diverged",
                mode=mode,
                iterations=result.iterations,
                overflow=result.overflow,
                hpwl=result.hpwl,
            )

        problem.commit()
        result.runtime = time.perf_counter() - start
        return result

    def _telemetry_on(self) -> bool:
        return self.config.telemetry is not None and telemetry.is_enabled()

    def _observe_round(
        self,
        iteration: int,
        hpwl_value: float,
        overflow: Optional[float],
        spread_move: Optional[float],
    ) -> None:
        """Emit one iteration's QoR stream points (muted when
        ``config.telemetry`` is None or telemetry is disabled)."""
        prefix = self.config.telemetry
        if prefix is not None:
            monitor.set_done(f"{prefix}.iters", iteration + 1)
        if not self._telemetry_on():
            return
        telemetry.observe(f"{prefix}.hpwl", hpwl_value, step=iteration)
        if overflow is not None:
            telemetry.observe(f"{prefix}.overflow", overflow, step=iteration)
        if spread_move is not None:
            telemetry.observe(f"{prefix}.spread_move", spread_move, step=iteration)

    def _run_full(self) -> PlacementResult:
        problem = self.problem
        config = self.config
        self._initialize()

        # Round 0: pure wirelength solve (no anchors).
        self._solve_round(None, None, None)
        trace = [problem.hpwl()]
        self._observe_round(0, trace[0], None, None)

        anchor_w_scalar = config.anchor_base
        overflow = 1.0
        iteration = 0
        for iteration in range(1, config.max_iterations + 1):
            target_x, target_y = spreading_targets(
                self.grid,
                problem.x,
                problem.y,
                problem.areas,
                problem.movable,
                strength=config.spread_strength,
            )
            spread_move = (
                spread_displacement(
                    target_x, target_y, problem.x, problem.y, problem.movable
                )
                if self._telemetry_on()
                else None
            )
            weights = np.full(problem.num_vertices, anchor_w_scalar)
            self._solve_round(target_x, target_y, weights)
            trace.append(problem.hpwl())
            overflow = self.grid.overflow(
                problem.x,
                problem.y,
                problem.areas,
                problem.movable,
                config.target_density,
            )
            self._observe_round(iteration, trace[-1], overflow, spread_move)
            if overflow < config.target_overflow and iteration >= config.min_iterations:
                break
            anchor_w_scalar *= config.anchor_growth

        return PlacementResult(
            hpwl=trace[-1],
            iterations=iteration,
            overflow=overflow,
            runtime=0.0,
            hpwl_trace=trace,
        )

    def _run_incremental(self) -> PlacementResult:
        """Refine from the problem's current (seeded) coordinates.

        Same solve/spread loop as the full run, but (i) the initial
        free solve is skipped (the seed already encodes the global
        structure), (ii) a decaying anchor to the seed positions keeps
        that structure while density resolves, and (iii) the spreading
        anchor starts strong so the run converges to the same overflow
        target in fewer rounds than a from-scratch placement.
        """
        problem = self.problem
        config = self.config
        problem.clip_to_core()
        clamp_regions(self.regions, problem.x, problem.y)
        seed_x = problem.x.copy()
        seed_y = problem.y.copy()
        seed_w = config.incremental_anchor

        trace = [problem.hpwl()]
        self._observe_round(0, trace[0], None, None)
        anchor_w_scalar = config.anchor_base * 32
        overflow = 1.0
        iteration = 0
        for iteration in range(1, config.incremental_iterations + 1):
            target_x, target_y = spreading_targets(
                self.grid,
                problem.x,
                problem.y,
                problem.areas,
                problem.movable,
                strength=config.spread_strength,
            )
            spread_move = (
                spread_displacement(
                    target_x, target_y, problem.x, problem.y, problem.movable
                )
                if self._telemetry_on()
                else None
            )
            # Blend the (decaying) seed anchor with the (growing)
            # spreading anchor.
            total_w = anchor_w_scalar + seed_w
            blend = anchor_w_scalar / total_w
            anchor_x = blend * target_x + (1 - blend) * seed_x
            anchor_y = blend * target_y + (1 - blend) * seed_y
            weights = np.full(problem.num_vertices, total_w)
            regions_active = (
                config.region_iterations is None
                or iteration <= config.region_iterations
            )
            if regions_active and config.soft_regions:
                clamp_regions(self.regions, anchor_x, anchor_y)
            self._solve_round(
                anchor_x,
                anchor_y,
                weights,
                apply_regions=regions_active and not config.soft_regions,
            )
            trace.append(problem.hpwl())
            overflow = self.grid.overflow(
                problem.x,
                problem.y,
                problem.areas,
                problem.movable,
                config.target_density,
            )
            self._observe_round(iteration, trace[-1], overflow, spread_move)
            if overflow < config.target_overflow and iteration >= 2:
                break
            anchor_w_scalar *= config.incremental_growth
            seed_w *= config.seed_decay

        return PlacementResult(
            hpwl=trace[-1],
            iterations=iteration,
            overflow=overflow,
            runtime=0.0,
            hpwl_trace=trace,
        )
