"""Bin-based density spreading (FastPlace-style cell shifting).

After each quadratic solve the placement is strongly clumped; the
spreader computes per-bin utilization and produces per-cell *target*
positions that equalise density along each axis.  The placer turns the
targets into pseudo-net anchors whose weight grows over iterations,
which is the classic quadratic-placement spreading loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.netlist.design import Floorplan


@dataclass
class DensityGrid:
    """Regular bin grid over the core area."""

    floorplan: Floorplan
    bins_x: int
    bins_y: int

    @classmethod
    def for_problem(cls, floorplan: Floorplan, num_movable: int) -> "DensityGrid":
        """Grid sized so an average bin holds ~16 cells, within [8, 64]."""
        bins = int(np.sqrt(max(1, num_movable) / 16.0))
        bins = int(np.clip(bins, 8, 64))
        return cls(floorplan=floorplan, bins_x=bins, bins_y=bins)

    def bin_of(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Bin indices of coordinates (clipped to the grid)."""
        fp = self.floorplan
        bx = ((x - fp.core_llx) / fp.core_width * self.bins_x).astype(np.int64)
        by = ((y - fp.core_lly) / fp.core_height * self.bins_y).astype(np.int64)
        return (
            np.clip(bx, 0, self.bins_x - 1),
            np.clip(by, 0, self.bins_y - 1),
        )

    def utilization(
        self,
        x: np.ndarray,
        y: np.ndarray,
        areas: np.ndarray,
        movable: np.ndarray,
    ) -> np.ndarray:
        """Per-bin movable-area utilization (bins_y x bins_x)."""
        fp = self.floorplan
        bin_area = (fp.core_width / self.bins_x) * (fp.core_height / self.bins_y)
        bx, by = self.bin_of(x[movable], y[movable])
        usage = np.zeros((self.bins_y, self.bins_x))
        np.add.at(usage, (by, bx), areas[movable])
        return usage / bin_area

    def overflow(
        self,
        x: np.ndarray,
        y: np.ndarray,
        areas: np.ndarray,
        movable: np.ndarray,
        target_density: float,
    ) -> float:
        """Total overflowing area fraction (0 = fully spread)."""
        fp = self.floorplan
        bin_area = (fp.core_width / self.bins_x) * (fp.core_height / self.bins_y)
        util = self.utilization(x, y, areas, movable)
        over = np.maximum(util - target_density, 0.0) * bin_area
        total_area = float(areas[movable].sum())
        if total_area <= 0:
            return 0.0
        return float(over.sum() / total_area)


def spreading_targets(
    grid: DensityGrid,
    x: np.ndarray,
    y: np.ndarray,
    areas: np.ndarray,
    movable: np.ndarray,
    strength: float = 0.8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute spread target positions via per-band 1-D equalization.

    Within each horizontal band of bins, cells are re-mapped along x so
    cumulative cell area tracks cumulative capacity (and symmetrically
    along y within vertical bands).  ``strength`` in (0, 1] damps the
    move toward the fully-equalized position.

    Returns:
        (target_x, target_y) arrays over all vertices (fixed vertices
        keep their coordinates).
    """
    fp = grid.floorplan
    target_x = x.copy()
    target_y = y.copy()
    ids = np.nonzero(movable)[0]
    if len(ids) == 0:
        return target_x, target_y

    _equalize_axis(
        ids, x, y, areas, target_x,
        lo=fp.core_llx, span=fp.core_width,
        band_lo=fp.core_lly, band_span=fp.core_height,
        bands=grid.bins_y, strength=strength,
    )
    _equalize_axis(
        ids, y, x, areas, target_y,
        lo=fp.core_lly, span=fp.core_height,
        band_lo=fp.core_llx, band_span=fp.core_width,
        bands=grid.bins_x, strength=strength,
    )
    return target_x, target_y


def spread_displacement(
    target_x: np.ndarray,
    target_y: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    movable: np.ndarray,
) -> float:
    """Mean Manhattan distance the spreader asks movable cells to move.

    A convergence signal for the telemetry ``*.spread_move`` streams:
    it decays toward zero as density equalises, and a plateau at a high
    value flags a placement that is fighting its density target.
    """
    ids = np.nonzero(movable)[0]
    if len(ids) == 0:
        return 0.0
    dx = np.abs(target_x[ids] - x[ids])
    dy = np.abs(target_y[ids] - y[ids])
    return float((dx + dy).mean())


def _equalize_axis(
    ids: np.ndarray,
    primary: np.ndarray,
    secondary: np.ndarray,
    areas: np.ndarray,
    out: np.ndarray,
    lo: float,
    span: float,
    band_lo: float,
    band_span: float,
    bands: int,
    strength: float,
) -> None:
    """Equalize cumulative area along ``primary`` within secondary bands."""
    band = ((secondary[ids] - band_lo) / band_span * bands).astype(np.int64)
    band = np.clip(band, 0, bands - 1)
    order = np.lexsort((primary[ids], band))
    sorted_ids = ids[order]
    sorted_band = band[order]
    sorted_area = areas[sorted_ids]

    # Band boundaries in the sorted order.
    boundaries = np.nonzero(np.diff(sorted_band))[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_ids)]))

    cum = np.cumsum(sorted_area)
    for s, e in zip(starts, ends):
        total = cum[e - 1] - (cum[s - 1] if s > 0 else 0.0)
        if total <= 0:
            continue
        base = cum[s - 1] if s > 0 else 0.0
        centred = (cum[s:e] - base) - sorted_area[s:e] * 0.5
        equalized = lo + centred / total * span
        segment = sorted_ids[s:e]
        out[segment] = primary[segment] + strength * (equalized - primary[segment])
