"""Region constraints for seeded placement (Innovus mode).

Algorithm 1 (lines 16-20) builds region constraints from the cluster
placement and the V-P&R shapes before running incremental placement in
Innovus.  A region constrains a set of instances to a rectangle; the
placer enforces it by clamping after every iteration and anchoring the
instances to the region interior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass
class RegionConstraint:
    """A rectangular placement region over a set of vertices.

    Attributes:
        name: Region name (e.g. ``"cluster_12"``).
        llx, lly, urx, ury: Rectangle bounds (microns).
        vertex_ids: Problem vertex ids constrained to the rectangle.
    """

    name: str
    llx: float
    lly: float
    urx: float
    ury: float
    vertex_ids: List[int] = field(default_factory=list)

    @property
    def center(self) -> tuple:
        """Rectangle centre."""
        return (0.5 * (self.llx + self.urx), 0.5 * (self.lly + self.ury))

    @property
    def width(self) -> float:
        """Rectangle width."""
        return self.urx - self.llx

    @property
    def height(self) -> float:
        """Rectangle height."""
        return self.ury - self.lly

    def contains(self, x: float, y: float) -> bool:
        """Point-in-rectangle test."""
        return self.llx <= x <= self.urx and self.lly <= y <= self.ury

    def clamp(self, x: np.ndarray, y: np.ndarray) -> None:
        """Clamp the region's vertices into the rectangle, in place."""
        ids = np.asarray(self.vertex_ids, dtype=np.int64)
        if len(ids) == 0:
            return
        x[ids] = np.clip(x[ids], self.llx, self.urx)
        y[ids] = np.clip(y[ids], self.lly, self.ury)


def clamp_regions(
    regions: Sequence[RegionConstraint], x: np.ndarray, y: np.ndarray
) -> None:
    """Apply every region's clamp."""
    for region in regions:
        region.clamp(x, y)
