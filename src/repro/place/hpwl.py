"""Half-perimeter wirelength metrics.

HPWL is the paper's post-place quality metric (Table 2) and the
denominator of the V-P&R HPWL cost (Eq. 4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netlist.design import Design, Net


def net_hpwl(design: Design, net: Net) -> float:
    """HPWL of one net over current instance/port locations (microns)."""
    xs = []
    ys = []
    for ref in net.pins():
        if ref.instance is not None:
            xs.append(ref.instance.x)
            ys.append(ref.instance.y)
        else:
            port = design.ports[ref.pin_name]
            xs.append(port.x)
            ys.append(port.y)
    if len(xs) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def hpwl(design: Design, weighted: bool = False, include_clock: bool = False) -> float:
    """Total design HPWL (microns).

    Args:
        design: Design with a current placement.
        weighted: Multiply each net by its placement weight (the
            placer's objective); reporting uses unweighted HPWL.
        include_clock: Include clock nets (excluded by default, as the
            clock is routed by CTS, not signal routing).
    """
    total = 0.0
    for net in design.nets:
        if net.is_clock and not include_clock:
            continue
        value = net_hpwl(design, net)
        if weighted:
            value *= net.weight
        total += value
    return total


def hpwl_arrays(
    pin_vertex: np.ndarray,
    net_offsets: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """HPWL over the flat array representation used by the placer.

    Args:
        pin_vertex: Concatenated per-net vertex ids.
        net_offsets: Offsets into ``pin_vertex`` (len = num_nets + 1).
        x, y: Vertex coordinates.
        weights: Optional per-net weights.
    """
    if len(net_offsets) <= 1:
        return 0.0
    px = x[pin_vertex]
    py = y[pin_vertex]
    starts = net_offsets[:-1]
    ends = net_offsets[1:] - 1
    max_x = np.maximum.reduceat(px, starts)
    min_x = np.minimum.reduceat(px, starts)
    max_y = np.maximum.reduceat(py, starts)
    min_y = np.minimum.reduceat(py, starts)
    spans = (max_x - min_x) + (max_y - min_y)
    # reduceat on empty slices can't occur: every net has >= 2 pins.
    del ends
    if weights is not None:
        spans = spans * weights
    return float(spans.sum())
