"""Half-perimeter wirelength metrics.

HPWL is the paper's post-place quality metric (Table 2) and the
denominator of the V-P&R HPWL cost (Eq. 4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netlist.design import Design, Net


def net_hpwl(design: Design, net: Net) -> float:
    """HPWL of one net over current instance/port locations (microns)."""
    xs = []
    ys = []
    for ref in net.pins():
        if ref.instance is not None:
            xs.append(ref.instance.x)
            ys.append(ref.instance.y)
        else:
            port = design.ports[ref.pin_name]
            xs.append(port.x)
            ys.append(port.y)
    if len(xs) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


class _DesignNetArrays:
    """Flat per-pin arrays for one design, built once and reused.

    ``hpwl()`` on a MemPool-scale design used to walk every net's pin
    list in Python on each call; the structure (which pin belongs to
    which net) never changes between calls, only coordinates and
    weights do.  This cache snapshots the structure as CSR-style
    arrays; per call only the coordinate vector (and, when requested,
    the weight vector) is refreshed.

    Pin vertex convention matches :class:`repro.place.problem.PlacementProblem`:
    instances occupy ids ``[0, num_instances)``, ports follow in sorted
    name order.  Nets keep per-pin entries (duplicates included), so
    spans equal :func:`net_hpwl` exactly.
    """

    __slots__ = (
        "fingerprint",
        "pin_vertex",
        "net_offsets",
        "net_list",
        "port_names",
    )

    def __init__(self, design: Design, include_clock: bool) -> None:
        self.fingerprint = _structure_fingerprint(design, include_clock)
        arrays = design.arrays()
        self.port_names = sorted(design.ports)
        pin_vertex, offsets, sel_nets = arrays.pin_vertex_csr(include_clock)
        self.pin_vertex = pin_vertex
        self.net_offsets = offsets
        nets = design.nets
        self.net_list = [nets[i] for i in sel_nets.tolist()]

    def coordinates(self, design: Design):
        """Fresh (x, y) vertex coordinate vectors."""
        arrays = design.arrays()
        n_inst = arrays.num_instances
        n_total = n_inst + arrays.num_ports
        x = np.empty(n_total)
        y = np.empty(n_total)
        xs, ys = arrays.current_positions()
        x[:n_inst] = xs
        y[:n_inst] = ys
        px, py = arrays.current_port_xy()
        x[n_inst + arrays.port_sorted_rank] = px
        y[n_inst + arrays.port_sorted_rank] = py
        return x, y

    def weights(self) -> np.ndarray:
        """Fresh per-net weight vector (weights mutate between calls)."""
        return np.asarray([net.weight for net in self.net_list])


def _structure_fingerprint(design: Design, include_clock: bool):
    """Cheap invalidation key: changes when nets/instances/ports are
    added or clock marking flips (pin membership of an existing net is
    assumed stable, which holds for every transform in this repo)."""
    clock_nets = sum(1 for n in design.nets if n.is_clock)
    return (
        design.num_instances,
        design.num_nets,
        len(design.ports),
        clock_nets,
        bool(include_clock),
    )


def _net_arrays(design: Design, include_clock: bool) -> _DesignNetArrays:
    """Fetch (or rebuild) the cached flat arrays for a design."""
    cache = getattr(design, "_hpwl_net_arrays", None)
    fingerprint = _structure_fingerprint(design, include_clock)
    entry = cache.get(include_clock) if cache else None
    if entry is not None and entry.fingerprint == fingerprint:
        return entry
    entry = _DesignNetArrays(design, include_clock)
    if cache is None:
        cache = {}
        design._hpwl_net_arrays = cache
    cache[include_clock] = entry
    return entry


def hpwl(design: Design, weighted: bool = False, include_clock: bool = False) -> float:
    """Total design HPWL (microns).

    Vectorized: the per-design pin/offset arrays are built once (see
    :class:`_DesignNetArrays`) and every call reduces spans with
    :func:`hpwl_arrays` instead of a per-net Python loop.

    Args:
        design: Design with a current placement.
        weighted: Multiply each net by its placement weight (the
            placer's objective); reporting uses unweighted HPWL.
        include_clock: Include clock nets (excluded by default, as the
            clock is routed by CTS, not signal routing).
    """
    arrays = _net_arrays(design, include_clock)
    if len(arrays.net_offsets) <= 1:
        return 0.0
    x, y = arrays.coordinates(design)
    return hpwl_arrays(
        arrays.pin_vertex,
        arrays.net_offsets,
        x,
        y,
        arrays.weights() if weighted else None,
    )


def hpwl_arrays(
    pin_vertex: np.ndarray,
    net_offsets: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """HPWL over the flat array representation used by the placer.

    Args:
        pin_vertex: Concatenated per-net vertex ids.
        net_offsets: Offsets into ``pin_vertex`` (len = num_nets + 1).
        x, y: Vertex coordinates.
        weights: Optional per-net weights.
    """
    if len(net_offsets) <= 1:
        return 0.0
    px = x[pin_vertex]
    py = y[pin_vertex]
    starts = net_offsets[:-1]
    ends = net_offsets[1:] - 1
    max_x = np.maximum.reduceat(px, starts)
    min_x = np.minimum.reduceat(px, starts)
    max_y = np.maximum.reduceat(py, starts)
    min_y = np.minimum.reduceat(py, starts)
    spans = (max_x - min_x) + (max_y - min_y)
    # reduceat on empty slices can't occur: every net has >= 2 pins.
    del ends
    if weights is not None:
        spans = spans * weights
    return float(spans.sum())
