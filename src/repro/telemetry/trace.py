"""Tracing spans: a nested wall-clock trace of what the flow did.

A :class:`Tracer` records *spans* — named intervals with attributes and
parent/child links — into a flat list of records; the run report folds
them back into a tree.  Spans complement :mod:`repro.perf` stage
timers: a stage aggregates all calls under one name, a span is one
concrete interval ("V-P&R candidate AR=1.5 on cluster 3 took 80 ms")
with its own attributes.

The active span is tracked per thread, so spans opened on worker
threads nest correctly.  Fork-pool workers carry their own tracer;
their finished records travel back with the results and are re-parented
under the parent process's active span via :meth:`Tracer.merge`
(fresh span ids are allocated, so merged ids never collide).

``time.perf_counter`` is CLOCK_MONOTONIC on Linux and therefore
comparable across forked processes, which keeps worker span timestamps
on the same axis as the parent's.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One open interval; use as a context manager.

    The span records its wall-clock bounds on exit and notes whether
    the block raised (``error`` attribute on the record).
    """

    __slots__ = ("_tracer", "name", "span_id", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = -1
        self.attrs = attrs

    def set_attr(self, key: str, value: Any) -> None:
        """Attach an attribute discovered mid-span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.span_id = self._tracer._enter(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._exit(self, self._start, end)
        return None


class NullSpan:
    """Shared no-op span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Thread-safe store of finished span records.

    A *record* is a plain dict (JSON-ready)::

        {"id": 7, "parent": 3, "name": "vpr.candidate",
         "t0": 12.031, "dur": 0.080, "attrs": {"cluster": 3, "ar": 1.5}}

    ``t0`` is seconds since the tracer's epoch (session start).
    """

    def __init__(self, epoch: Optional[float] = None) -> None:
        self.epoch = time.perf_counter() if epoch is None else epoch
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._next_id = 0
        self._local = threading.local()

    # -- span stack (per thread) ---------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span on this thread (None at top)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _alloc_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _enter(self, name: str) -> int:
        span_id = self._alloc_id()
        self._stack().append(span_id)
        return span_id

    def _exit(self, span: Span, start: float, end: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        parent = stack[-1] if stack else None
        record = {
            "id": span.span_id,
            "parent": parent,
            "name": span.name,
            "t0": start - self.epoch,
            "dur": end - start,
            "attrs": span.attrs,
        }
        with self._lock:
            self._records.append(record)

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span (``with tracer.span("vpr.candidate", ar=1.5):``)."""
        return Span(self, name, attrs)

    def export(self) -> List[Dict[str, Any]]:
        """Copy of the finished records (completion order)."""
        with self._lock:
            return [dict(r, attrs=dict(r["attrs"])) for r in self._records]

    def merge(
        self,
        records: List[Dict[str, Any]],
        parent_id: Optional[int] = None,
        extra_attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fold another tracer's exported records into this one.

        Every record gets a fresh id (two workers can both have span 0);
        internal parent links are remapped, and records whose parent is
        unknown (a worker's root spans) are re-parented under
        ``parent_id`` — typically the parent process's span that was
        active when the worker results were gathered.
        """
        if not records:
            return
        id_map = {r["id"]: self._alloc_id() for r in records}
        remapped = []
        for r in records:
            attrs = dict(r.get("attrs") or {})
            if extra_attrs:
                attrs.update(extra_attrs)
            remapped.append(
                {
                    "id": id_map[r["id"]],
                    "parent": id_map.get(r.get("parent"), parent_id),
                    "name": r["name"],
                    "t0": r["t0"],
                    "dur": r["dur"],
                    "attrs": attrs,
                }
            )
        with self._lock:
            self._records.extend(remapped)

    def reset(self) -> None:
        """Drop all records (open spans on other threads are orphaned)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def span_tree(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fold flat records into a forest of ``{**record, children: []}``.

    Children are ordered by start time; records referencing a missing
    parent (e.g. after a mid-run reset) surface as roots.
    """
    nodes = {r["id"]: dict(r, children=[]) for r in records}
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node["parent"])
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["t0"])
    roots.sort(key=lambda n: n["t0"])
    return roots


def traced(name: str, tracer_getter: Callable[[], Optional[Tracer]], **attrs: Any):
    """Decorator form: wrap every call of ``fn`` in a span.

    The tracer is looked up per call (not at decoration time), so
    functions decorated at import keep working when telemetry is
    enabled later.  Used by :func:`repro.telemetry.traced`.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = tracer_getter()
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
