"""Flow-wide telemetry: tracing spans, QoR metric streams, run reports.

Three recording surfaces behind one process-wide session (off by
default, near-zero overhead while disabled — see ``tests/telemetry``):

* **spans** — nested wall-clock intervals with attributes
  (``with telemetry.span("vpr.candidate", cluster=3, ar=1.5): ...``),
  surviving the V-P&R fork-pool (worker spans are re-parented on
  merge).
* **metric streams** — named time-series of QoR observations
  (``telemetry.observe("gp.hpwl", value, step=i)``) recording how
  quality *evolved*, not just where it ended.
* **events** — JSON-lines decision log (cluster formed, shape
  selected, placement converged, worker error) streamed to
  ``events.jsonl`` when an output directory is configured.

A run's records serialise to a :class:`RunReport` (``run.json``),
which :func:`diff_runs` compares against another run's — the
``repro report diff`` regression gate.  Typical use::

    from repro import telemetry

    telemetry.enable("/tmp/run0")
    ...  # run the flow
    report = telemetry.run_report(meta={"design": "jpeg"})
    report.write("/tmp/run0/run.json")
"""

from repro.telemetry.events import EVENT_SCHEMA, EventLog
from repro.telemetry.metrics import MetricRegistry, MetricStream
from repro.telemetry.report import (
    SCHEMA,
    RunDiff,
    RunReport,
    StreamDelta,
    diff_runs,
    render_html,
)
from repro.telemetry.session import (
    TelemetrySession,
    disable,
    enable,
    event,
    get_session,
    is_enabled,
    merge_worker,
    observe,
    reset,
    span,
    stream,
    traced,
    worker_snapshot,
)
from repro.telemetry.trace import Span, Tracer, span_tree


def run_report(meta=None, qor=None, perf=None, monitor=None) -> RunReport:
    """Snapshot the default session into a :class:`RunReport`."""
    return RunReport.from_session(
        get_session(), meta=meta, qor=qor, perf=perf, monitor=monitor
    )


__all__ = [
    "EVENT_SCHEMA",
    "SCHEMA",
    "EventLog",
    "MetricRegistry",
    "MetricStream",
    "RunDiff",
    "RunReport",
    "Span",
    "StreamDelta",
    "TelemetrySession",
    "Tracer",
    "diff_runs",
    "disable",
    "enable",
    "event",
    "get_session",
    "is_enabled",
    "merge_worker",
    "observe",
    "render_html",
    "reset",
    "run_report",
    "span",
    "span_tree",
    "stream",
    "traced",
    "worker_snapshot",
]
