"""The process-wide telemetry session.

A :class:`TelemetrySession` bundles the three sinks — tracer, metric
registry, event log — behind one enabled flag.  Like
:mod:`repro.perf`, instrumentation is **off by default** and every
module-level hook degenerates to an early return / shared null object,
so the flow's hot paths are instrumented unconditionally.

Fork-pool workers inherit the session object; :func:`worker_snapshot`
exports (and clears) a worker's records so they can travel back with
its results, and :func:`merge_worker` folds such a payload into the
parent session with span re-parenting.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricRegistry, MetricStream
from repro.telemetry.trace import NULL_SPAN, Span, Tracer


class TelemetrySession:
    """One run's telemetry state (tracer + metrics + events)."""

    def __init__(self, enabled: bool = False, out_dir: Optional[str] = None) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self.out_dir = out_dir
        self.tracer = Tracer(epoch=self.epoch)
        self.metrics = MetricRegistry()
        events_path = None
        if out_dir is not None:
            import os

            os.makedirs(out_dir, exist_ok=True)
            events_path = os.path.join(out_dir, "events.jsonl")
        self.events = EventLog(self.epoch, path=events_path)

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def observe(
        self, name: str, value: float, step: Optional[float] = None, **attrs: Any
    ) -> None:
        if not self.enabled:
            return
        self.metrics.observe(name, value, step=step, **attrs)

    def event(self, event_type: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.events.emit(event_type, **fields)

    # -- worker round-trip ---------------------------------------------
    def worker_snapshot(self) -> Dict[str, Any]:
        """Export-and-clear this (worker) session's records.

        Returns a picklable payload ``{"spans": [...], "metrics": {...},
        "events": [...]}`` for the parent to merge.
        """
        payload = {
            "spans": self.tracer.export(),
            "metrics": self.metrics.export(),
            "events": self.events.export(),
        }
        self.tracer.reset()
        self.metrics.reset()
        self.events.reset()
        return payload

    def merge_worker(
        self, payload: Optional[Dict[str, Any]], **extra_attrs: Any
    ) -> None:
        """Fold a worker payload in; worker root spans are re-parented
        under the span currently active on the calling thread."""
        if not self.enabled or not payload:
            return
        self.tracer.merge(
            payload.get("spans") or [],
            parent_id=self.tracer.current_span_id(),
            extra_attrs=extra_attrs or None,
        )
        self.metrics.merge(payload.get("metrics") or {})
        self.events.merge(payload.get("events") or [], **extra_attrs)

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        self.events.reset()


_SESSION = TelemetrySession()


def get_session() -> TelemetrySession:
    """The process-wide default session."""
    return _SESSION


def enable(out_dir: Optional[str] = None) -> TelemetrySession:
    """Turn telemetry on; replaces the default session with a fresh one.

    ``out_dir`` (optional) enables streaming the event log to
    ``<out_dir>/events.jsonl`` and is where the CLI writes ``run.json``.
    """
    global _SESSION
    _SESSION.events.close()
    _SESSION = TelemetrySession(enabled=True, out_dir=out_dir)
    return _SESSION


def disable() -> None:
    """Turn telemetry off (hooks become no-ops; records are kept)."""
    _SESSION.enabled = False
    _SESSION.events.close()


def is_enabled() -> bool:
    """Whether the default session is recording."""
    return _SESSION.enabled


def reset() -> None:
    """Clear the default session's records."""
    _SESSION.reset()


# -- module-level hooks (the instrumented code calls these) -------------
def span(name: str, **attrs: Any):
    """Open a span on the default session (no-op while disabled)."""
    if not _SESSION.enabled:
        return NULL_SPAN
    return _SESSION.tracer.span(name, **attrs)


def observe(
    name: str, value: float, step: Optional[float] = None, **attrs: Any
) -> None:
    """Observe one point of a QoR metric stream (no-op while disabled)."""
    if not _SESSION.enabled:
        return
    _SESSION.metrics.observe(name, value, step=step, **attrs)


def event(event_type: str, **fields: Any) -> None:
    """Emit one structured event (no-op while disabled)."""
    if not _SESSION.enabled:
        return
    _SESSION.events.emit(event_type, **fields)


def stream(name: str) -> Optional[MetricStream]:
    """Read back a metric stream from the default session."""
    return _SESSION.metrics.stream(name)


def traced(name: str, **attrs: Any):
    """Decorator: wrap every call in a span (enabled checked per call).

    ::

        @telemetry.traced("ml.train")
        def train_model(...): ...
    """
    from repro.telemetry.trace import traced as _traced

    return _traced(
        name, lambda: _SESSION.tracer if _SESSION.enabled else None, **attrs
    )


def worker_snapshot() -> Optional[Dict[str, Any]]:
    """Worker-side: export-and-clear the session (None when disabled)."""
    if not _SESSION.enabled:
        return None
    return _SESSION.worker_snapshot()


def merge_worker(payload: Optional[Dict[str, Any]], **extra_attrs: Any) -> None:
    """Parent-side: fold a worker payload into the default session."""
    _SESSION.merge_worker(payload, **extra_attrs)
