"""Structured event log: JSON-lines records of what the flow decided.

Events are discrete facts ("cluster formed", "shape selected", "cache
miss", "worker error") with a stable schema::

    {"schema": "repro.telemetry/1", "seq": 12, "t": 3.021,
     "type": "vpr.shape_selected", "cluster": 3, "ar": 1.5, ...}

``seq`` is a per-log sequence number, ``t`` seconds since the session
epoch.  When the session has an output directory the log is also
streamed to ``events.jsonl`` as it happens, so a crashed run still
leaves its decision trail on disk.

Checkpointed runs (``docs/recovery.md``) add ``checkpoint.saved`` /
``checkpoint.resumed`` per flow stage, plus ``vpr.item.retry`` /
``vpr.item.failed`` from the sweep's fault-tolerance layer.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

#: Schema tag stamped on every event (and on run.json).
EVENT_SCHEMA = "repro.telemetry/1"


def iter_events(path) -> Iterator[Dict[str, Any]]:
    """Tolerantly iterate the records of an ``events.jsonl`` file.

    The event log is appended one flushed line at a time, so a reader
    racing the writer (``repro top``, a future ``repro serve``) can
    observe a *torn trailing line* — the prefix of a record whose
    write is still in flight.  This reader never raises on that: a
    line that does not parse as a JSON object is skipped (it will be
    complete on the next poll), and a missing or unreadable file
    yields nothing.  Mid-file damage from a crashed run is skipped the
    same way, so every intact record is still recovered.
    """
    try:
        handle = open(path, "r")
    except OSError:
        return
    with handle:
        for line in handle:
            if not line.endswith("\n"):
                # Torn trailing line: the writer is mid-append (or the
                # run crashed mid-record); never a complete record.
                return
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


def tail_events(path, limit: int = 10) -> List[Dict[str, Any]]:
    """The last ``limit`` intact records of an event log (see
    :func:`iter_events` for the tolerance guarantees)."""
    from collections import deque

    return list(deque(iter_events(path), maxlen=max(0, int(limit))))


class EventLog:
    """Thread-safe, optionally file-backed event recorder."""

    def __init__(self, epoch: float, path: Optional[str] = None) -> None:
        self.epoch = epoch
        self.path = path
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._handle = open(path, "a") if path else None

    def emit(self, event_type: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the record."""
        with self._lock:
            record: Dict[str, Any] = {
                "schema": EVENT_SCHEMA,
                "seq": len(self._events),
                "t": time.perf_counter() - self.epoch,
                "type": event_type,
            }
            record.update(fields)
            self._events.append(record)
            if self._handle is not None:
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
            return record

    def export(self) -> List[Dict[str, Any]]:
        """Copy of all recorded events."""
        with self._lock:
            return [dict(e) for e in self._events]

    def merge(self, events: List[Dict[str, Any]], **extra: Any) -> None:
        """Fold a worker's exported events in (re-sequenced)."""
        for event in events or []:
            fields = {
                k: v for k, v in event.items() if k not in ("schema", "seq")
            }
            fields.update(extra)
            fields.pop("type", None)
            self.emit(event.get("type", "unknown"), **fields)

    def reset(self) -> None:
        with self._lock:
            self._events.clear()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
