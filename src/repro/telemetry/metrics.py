"""QoR metric streams: named time-series observed during a run.

A *stream* is an ordered list of (step, value) observations under a
dotted name (``gp.hpwl``, ``vpr.total_cost``, ``sta.wns``).  Streams
capture *trajectories* — how quality evolved over placement iterations
or candidate sweeps — where :class:`~repro.core.metrics.PPAMetrics`
only keeps the final numbers.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional


class MetricStream:
    """One named series of (step, value) observations."""

    __slots__ = ("name", "steps", "values", "attrs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.steps: List[float] = []
        self.values: List[float] = []
        self.attrs: Dict[str, Any] = {}

    @property
    def final(self) -> Optional[float]:
        """Last observed value (None on an empty stream)."""
        return self.values[-1] if self.values else None

    def __len__(self) -> int:
        return len(self.values)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"steps": list(self.steps), "values": list(self.values)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class MetricRegistry:
    """Thread-safe store of metric streams."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._streams: Dict[str, MetricStream] = {}

    def observe(
        self,
        name: str,
        value: float,
        step: Optional[float] = None,
        **attrs: Any,
    ) -> None:
        """Append one observation to stream ``name``.

        ``step`` defaults to the stream's current length, so callers
        without a natural iteration index still produce a monotone
        series.  ``attrs`` are stream-level (last write wins), not
        per-point — use separate streams for per-point dimensions.
        """
        with self._lock:
            stream = self._streams.get(name)
            if stream is None:
                stream = self._streams[name] = MetricStream(name)
            stream.steps.append(float(len(stream)) if step is None else float(step))
            stream.values.append(float(value))
            if attrs:
                stream.attrs.update(attrs)

    def stream(self, name: str) -> Optional[MetricStream]:
        """The stream under ``name`` (None when never observed)."""
        with self._lock:
            return self._streams.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._streams)

    def export(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict copy ``{name: {steps, values[, attrs]}}``."""
        with self._lock:
            return {name: s.to_dict() for name, s in self._streams.items()}

    def merge(self, exported: Dict[str, Dict[str, Any]]) -> None:
        """Fold a worker's exported streams into this registry.

        Worker observations are appended in export order.  Steps are
        kept as-is when explicit, which lets per-iteration series from
        a single worker stay meaningful; auto-stepped worker streams
        are re-stepped onto the end of the parent stream so merged
        series remain monotone.
        """
        if not exported:
            return
        with self._lock:
            for name, data in exported.items():
                stream = self._streams.get(name)
                if stream is None:
                    stream = self._streams[name] = MetricStream(name)
                steps = data.get("steps") or []
                values = data.get("values") or []
                auto = steps == list(range(len(steps)))
                for step, value in zip(steps, values):
                    stream.steps.append(
                        float(len(stream)) if auto else float(step)
                    )
                    stream.values.append(float(value))
                if data.get("attrs"):
                    stream.attrs.update(data["attrs"])

    def reset(self) -> None:
        with self._lock:
            self._streams.clear()
