"""The run report: one machine-readable artifact per flow run.

``run.json`` (schema ``repro.telemetry/1``) bundles everything a run
recorded::

    {
      "schema": "repro.telemetry/1",
      "meta":    { "design": ..., "flow": ..., ... },
      "spans":   [ {id, parent, name, t0, dur, attrs}, ... ],
      "metrics": { "<stream>": {"steps": [...], "values": [...]}, ... },
      "events":  [ {schema, seq, t, type, ...}, ... ],
      "qor":     { ... },   # optional: repro.core.reporting QoR dict
      "perf":    { ... },   # optional: repro.perf report dict
      "monitor": { ... }    # optional: repro.monitor summary (resource
    }                       #   timeline peaks + final progress records)

Two runs' reports can be diffed stream-by-stream (:func:`diff_runs`) —
the regression gate behind ``repro report diff A B`` — and rendered to
a self-contained HTML page with SVG convergence plots
(:func:`render_html`).
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.session import TelemetrySession
from repro.telemetry.trace import span_tree

SCHEMA = "repro.telemetry/1"

#: Streams where a *larger* final value is the better one.  Everything
#: else (wirelength, congestion, cost, power, loss, displacement)
#: defaults to lower-is-better.  Slacks are negative when failing, so
#: "higher" is toward meeting timing.
HIGHER_IS_BETTER = ("sta.wns", "sta.tns", "sta.hold_wns", "ml.train.r2")


@dataclass
class RunReport:
    """A serialisable telemetry run artifact."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    qor: Optional[Dict[str, Any]] = None
    perf: Optional[Dict[str, Any]] = None
    monitor: Optional[Dict[str, Any]] = None

    @classmethod
    def from_session(
        cls,
        session: TelemetrySession,
        meta: Optional[Dict[str, Any]] = None,
        qor: Optional[Dict[str, Any]] = None,
        perf: Optional[Dict[str, Any]] = None,
        monitor: Optional[Dict[str, Any]] = None,
    ) -> "RunReport":
        """Snapshot a telemetry session into a report."""
        return cls(
            meta=dict(meta or {}),
            spans=session.tracer.export(),
            metrics=session.metrics.export(),
            events=session.events.export(),
            qor=qor,
            perf=perf,
            monitor=monitor,
        )

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": SCHEMA,
            "meta": self.meta,
            "spans": self.spans,
            "metrics": self.metrics,
            "events": self.events,
        }
        if self.qor is not None:
            out["qor"] = self.qor
        if self.perf is not None:
            out["perf"] = self.perf
        if self.monitor is not None:
            out["monitor"] = self.monitor
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"not a telemetry run report (schema {schema!r}, "
                f"expected {SCHEMA!r})"
            )
        return cls(
            meta=dict(data.get("meta") or {}),
            spans=list(data.get("spans") or []),
            metrics=dict(data.get("metrics") or {}),
            events=list(data.get("events") or []),
            qor=data.get("qor"),
            perf=data.get("perf"),
            monitor=data.get("monitor"),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- queries -------------------------------------------------------
    def stream_final(self, name: str) -> Optional[float]:
        """Final value of one metric stream (None when absent/empty)."""
        stream = self.metrics.get(name)
        if not stream or not stream.get("values"):
            return None
        return float(stream["values"][-1])

    def span_tree(self) -> List[Dict[str, Any]]:
        """The spans as a forest (see :func:`repro.telemetry.span_tree`)."""
        return span_tree(self.spans)

    def span_names(self) -> List[str]:
        return sorted({s["name"] for s in self.spans})

    def events_of(self, event_type: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("type") == event_type]


# ----------------------------------------------------------------------
# Run diffing (the regression gate)
# ----------------------------------------------------------------------
@dataclass
class StreamDelta:
    """One stream's baseline-vs-candidate comparison."""

    name: str
    baseline: Optional[float]
    candidate: Optional[float]
    #: Positive = candidate worse, in the stream's "badness" direction.
    worsening: float = 0.0
    regressed: bool = False
    missing: bool = False

    def describe(self) -> str:
        if self.missing:
            side = "baseline" if self.baseline is None else "candidate"
            return f"{self.name}: missing in {side}"
        tag = "REGRESSED" if self.regressed else "ok"
        if self.worsening > 0:
            change = f"{self.worsening:+.2%} worse"
        elif self.worsening < 0:
            change = f"{-self.worsening:+.2%} better"
        else:
            change = "unchanged"
        return (
            f"{self.name}: {self.baseline:.6g} -> {self.candidate:.6g} "
            f"({change}) [{tag}]"
        )


@dataclass
class RunDiff:
    """All stream comparisons of two runs."""

    deltas: List[StreamDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[StreamDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _higher_is_better(name: str) -> bool:
    return any(name == k or name.startswith(k + ".") for k in HIGHER_IS_BETTER)


def diff_runs(
    baseline: RunReport,
    candidate: RunReport,
    rel_threshold: float = 0.05,
    abs_threshold: float = 1e-9,
    streams: Optional[List[str]] = None,
) -> RunDiff:
    """Compare two runs' QoR streams; flag regressions past thresholds.

    A stream *regresses* when the candidate's final value is worse than
    the baseline's by more than ``abs_threshold +
    rel_threshold * |baseline|`` in the stream's badness direction
    (lower-is-better unless listed in :data:`HIGHER_IS_BETTER`).
    Streams named in ``streams`` but missing from either run are
    reported as regressions too — a silently vanished metric must not
    pass a gate.
    """
    names = streams or sorted(set(baseline.metrics) | set(candidate.metrics))
    deltas: List[StreamDelta] = []
    for name in names:
        a = baseline.stream_final(name)
        b = candidate.stream_final(name)
        if a is None or b is None:
            missing_matters = streams is not None or (a is None) != (b is None)
            deltas.append(
                StreamDelta(
                    name=name,
                    baseline=a,
                    candidate=b,
                    missing=True,
                    regressed=bool(missing_matters),
                )
            )
            continue
        worse_by = (a - b) if _higher_is_better(name) else (b - a)
        denom = abs(a) if abs(a) > 0 else 1.0
        worsening = worse_by / denom
        limit = abs_threshold + rel_threshold * abs(a)
        deltas.append(
            StreamDelta(
                name=name,
                baseline=a,
                candidate=b,
                worsening=worsening,
                regressed=worse_by > limit,
            )
        )
    return RunDiff(deltas=deltas)


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
def _render_span_node(node: Dict[str, Any], lines: List[str]) -> None:
    attrs = ", ".join(f"{k}={v}" for k, v in node["attrs"].items())
    label = _html.escape(
        f"{node['name']}  {node['dur'] * 1e3:.1f} ms" + (f"  ({attrs})" if attrs else "")
    )
    if node["children"]:
        lines.append(f"<details open><summary>{label}</summary><ul>")
        for child in node["children"]:
            lines.append("<li>")
            _render_span_node(child, lines)
            lines.append("</li>")
        lines.append("</ul></details>")
    else:
        lines.append(f"<span>{label}</span>")


def render_html(report: RunReport, path: Optional[str] = None) -> str:
    """Render a self-contained HTML page: meta, convergence plots for
    every metric stream (inline SVG), the span tree and the event log."""
    from repro.viz.svg import render_series_svg

    title = report.meta.get("design", "run")
    lines = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>repro run report — {_html.escape(str(title))}</title>",
        "<style>body{font-family:sans-serif;margin:2em;}"
        "ul{list-style:none;border-left:1px solid #ccc;margin:0 0 0 .4em;"
        "padding-left:1em;}details>summary{cursor:pointer;}"
        "table{border-collapse:collapse;}td,th{border:1px solid #ccc;"
        "padding:2px 8px;text-align:left;}</style>",
        "</head><body>",
        f"<h1>Run report — {_html.escape(str(title))}</h1>",
        "<h2>Meta</h2><table>",
    ]
    for key in sorted(report.meta):
        lines.append(
            f"<tr><th>{_html.escape(str(key))}</th>"
            f"<td>{_html.escape(str(report.meta[key]))}</td></tr>"
        )
    lines.append("</table>")

    lines.append("<h2>QoR metric streams</h2>")
    for name in sorted(report.metrics):
        stream = report.metrics[name]
        values = stream.get("values") or []
        if not values:
            continue
        svg = render_series_svg(
            stream.get("steps") or list(range(len(values))),
            values,
            title=f"{name} (final {values[-1]:.6g}, n={len(values)})",
        )
        lines.append(f"<div>{svg}</div>")

    if report.monitor:
        lines.append("<h2>Live monitor</h2>")
        peak = report.monitor.get("peak_rss_bytes")
        samples = report.monitor.get("samples")
        if peak is not None:
            lines.append(
                f"<p>Peak RSS {peak / (1024 * 1024):.1f} MiB over "
                f"{samples} samples "
                f"(every {report.monitor.get('interval_s', 0)}s).</p>"
            )
        stage_peaks = report.monitor.get("stage_peak_rss_bytes") or {}
        if stage_peaks:
            lines.append("<table><tr><th>stage</th><th>peak RSS</th></tr>")
            for name in sorted(stage_peaks):
                lines.append(
                    f"<tr><td>{_html.escape(str(name))}</td>"
                    f"<td>{stage_peaks[name] / (1024 * 1024):.1f} MiB</td></tr>"
                )
            lines.append("</table>")
        progress = report.monitor.get("progress") or []
        if progress:
            lines.append(
                "<table><tr><th>loop</th><th>done</th><th>total</th>"
                "<th>unit</th><th>finished</th></tr>"
            )
            for task in progress:
                lines.append(
                    f"<tr><td>{_html.escape(str(task.get('name')))}</td>"
                    f"<td>{task.get('done')}</td><td>{task.get('total')}</td>"
                    f"<td>{_html.escape(str(task.get('unit')))}</td>"
                    f"<td>{task.get('finished')}</td></tr>"
                )
            lines.append("</table>")

    lines.append("<h2>Span tree</h2>")
    for root in report.span_tree():
        lines.append("<div>")
        _render_span_node(root, lines)
        lines.append("</div>")

    lines.append(f"<h2>Events ({len(report.events)})</h2><table>")
    lines.append("<tr><th>t (s)</th><th>type</th><th>fields</th></tr>")
    for event in report.events:
        fields = {
            k: v for k, v in event.items() if k not in ("schema", "seq", "t", "type")
        }
        lines.append(
            f"<tr><td>{event.get('t', 0.0):.3f}</td>"
            f"<td>{_html.escape(str(event.get('type')))}</td>"
            f"<td>{_html.escape(json.dumps(fields, sort_keys=True))}</td></tr>"
        )
    lines.append("</table></body></html>")
    text = "\n".join(lines)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
