"""Runtime breakdown of our flow per stage (the paper publishes this in
its GitHub repository rather than in the six-page text).

For each benchmark: hierarchy clustering, STA extraction, enhanced FC
clustering, V-P&R, cluster placement, seeding and incremental flat
placement — plus the default flow's monolithic placement for reference.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig, default_flow
from repro.designs import load_benchmark

DESIGNS = ["aes", "jpeg", "ariane", "BlackParrot"]
STAGES = [
    "hier_clustering",
    "sta",
    "clustering",
    "vpr",
    "cluster_place",
    "seed",
    "incremental_place",
]
_RESULTS = {}


def _run(name):
    d_ours = load_benchmark(name, use_cache=False)
    ours = ClusteredPlacementFlow(
        FlowConfig(tool="openroad", run_routing=False)
    ).run(d_ours)
    d_def = load_benchmark(name, use_cache=False)
    base = default_flow(d_def, run_routing=False)
    return ours.metrics.runtimes, base.metrics.runtimes.get("place", 0.0)


@pytest.mark.parametrize("name", DESIGNS)
def test_breakdown_design(benchmark, name):
    runtimes, default_place = benchmark.pedantic(
        _run, args=(name,), rounds=1, iterations=1
    )
    _RESULTS[name] = (runtimes, default_place)


def test_breakdown_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DESIGNS:
        entry = _RESULTS.get(name)
        if entry is None:
            continue
        runtimes, default_place = entry
        row = [name]
        for stage in STAGES:
            row.append(f"{runtimes.get(stage, 0.0):.2f}")
        row.append(f"{default_place:.2f}")
        rows.append(row)
    text = format_table(
        "Runtime breakdown of our flow (seconds)",
        ["Design"] + STAGES + ["default place"],
        rows,
        note=(
            "The Table 2 CPU column sums all stages except vpr "
            "(ML-accelerated / reported separately in the paper)."
        ),
    )
    publish("runtime_breakdown", text)
    assert rows
