"""Fleet scaling gate: the distributed V-P&R sweep on local workers.

Runs one shape-selection sweep four ways on a generated design:

* **serial** — the in-process reference (``jobs=1``);
* **fleet x1** — one socket worker (measures protocol + transfer
  overhead against serial);
* **fleet x2** — two socket workers (the scaling measurement);
* **fleet x2 +kill** (``--kill``) — two workers, one armed via
  ``REPRO_FAULTS=kill:vpr.item`` to SIGKILL-style ``os._exit`` inside
  the first item it evaluates, proving a dead worker degrades to
  re-dispatch without touching QoR.

Every arm's selection is reduced to a canonical JSON document and
SHA-256 hashed; **all hashes must be identical** — the fleet's
bit-identity contract (docs/performance.md, "Distributed sweep").

``--gate`` (used by ``make fleet-smoke`` and CI) additionally asserts:

* fleet x2 beats fleet x1 by at least ``--min-speedup`` (default
  1.6x) on sweep wall-clock;
* the kill arm really lost a worker (``vpr.fleet.worker_lost`` >= 1)
  and still produced the identical hash;
* every spawned worker process exited (clean shutdown, no leaks).

Usage::

    python benchmarks/bench_fleet_scaling.py --gate --kill \
        --json benchmarks/results/BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA = "repro.bench_fleet/1"


def _build_problem(instances: int, seed: int):
    from repro.core.ppa_clustering import (
        PPAClusteringConfig,
        ppa_aware_clustering,
    )
    from repro.db.database import DesignDatabase
    from repro.designs.generator import DesignSpec, generate_design

    design = generate_design(
        DesignSpec(name="fleetbench", num_instances=instances, seed=seed)
    )
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(
        db, PPAClusteringConfig(target_cluster_size=150)
    )
    return design, clustering.members()


def _selection_sha256(sweeps) -> str:
    """Canonical hash of a sweep's full QoR surface.

    Covers every (cluster, candidate) cost pair and the chosen shape,
    so two arms hash equal iff their selections are byte-identical.
    """
    doc = [
        {
            "cluster": s.cluster_id,
            "best": [s.best.aspect_ratio, s.best.utilization],
            "evaluations": [
                [e.hpwl_cost, e.congestion_cost] for e in s.evaluations
            ],
        }
        for s in sorted(sweeps, key=lambda s: s.cluster_id)
    ]
    payload = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def _run_arm(
    design,
    members,
    label: str,
    clusters: int,
    iterations: int,
    seed: int,
    fleet_workers: int = 0,
    kill_one: bool = False,
    delay_s: float = 0.0,
) -> Dict[str, Any]:
    from repro import perf
    from repro.core.fanout import FleetExecutor
    from repro.core.vpr import ITEM_DELAY_ENV, VPRConfig, VPRFramework
    from repro.route.steiner import clear_rsmt_cache

    clear_rsmt_cache()
    config = VPRConfig(
        min_cluster_instances=60,
        max_vpr_clusters=clusters,
        placer_iterations=iterations,
        chunk_size=5,
        executor="fleet" if fleet_workers else "local",
        fleet_workers=max(1, fleet_workers),
        jobs=1,
        seed=seed,
    )
    framework = VPRFramework(config)
    executor_box: List[Any] = []
    if fleet_workers:
        # Every fleet worker simulates the blocked-on-external-tool
        # portion of a real P&R item (ITEM_DELAY_ENV), which is what a
        # distributed sweep actually overlaps; the kill arm
        # additionally arms worker 0 to die inside the first item it
        # evaluates (kill acts in worker processes only).
        env: List[Optional[Dict[str, str]]] = [
            {ITEM_DELAY_ENV: str(delay_s)} if delay_s else {}
            for _ in range(fleet_workers)
        ]
        if kill_one:
            env[0] = dict(env[0] or {})
            env[0]["REPRO_FAULTS"] = "kill:vpr.item"

        def factory():
            executor = FleetExecutor(workers=fleet_workers, worker_env=env)
            executor_box.append(executor)
            return executor

        framework.executor_factory = factory

    perf.enable()
    perf.reset()
    cluster_ids = framework.eligible_clusters(members)
    start = time.perf_counter()
    sweeps = framework.sweep_clusters(design, members, cluster_ids)
    wall = time.perf_counter() - start
    counters = dict(perf.report().counters)
    perf.disable()
    perf.reset()

    worker_exits: List[Optional[int]] = []
    for executor in executor_box:
        worker_exits.extend(executor.worker_exit_codes)
    return {
        "label": label,
        "wall_s": wall,
        "sha256": _selection_sha256(sweeps),
        "clusters": len(cluster_ids),
        "items": len(cluster_ids) * len(config.candidates),
        "workers_lost": counters.get("vpr.fleet.worker_lost", 0),
        "redispatches": counters.get("vpr.fleet.redispatch", 0),
        "state_sent": counters.get("vpr.fleet.state_sent", 0),
        "state_bytes": counters.get("vpr.fleet.state_bytes", 0),
        "worker_exits": worker_exits,
    }


def measure(
    instances: int = 900,
    clusters: int = 3,
    iterations: int = 3,
    seed: int = 3,
    kill: bool = False,
    delay_s: float = 0.5,
) -> Dict[str, Any]:
    design, members = _build_problem(instances, seed)
    arms = [
        _run_arm(design, members, "serial", clusters, iterations, seed),
        _run_arm(
            design, members, "fleet x1", clusters, iterations, seed,
            fleet_workers=1, delay_s=delay_s,
        ),
        _run_arm(
            design, members, "fleet x2", clusters, iterations, seed,
            fleet_workers=2, delay_s=delay_s,
        ),
    ]
    if kill:
        arms.append(
            _run_arm(
                design, members, "fleet x2 +kill", clusters, iterations,
                seed, fleet_workers=2, kill_one=True, delay_s=delay_s,
            )
        )
    wall_1w = arms[1]["wall_s"]
    wall_2w = arms[2]["wall_s"]
    return {
        "schema": SCHEMA,
        "instances": instances,
        "item_delay_s": delay_s,
        "cpu_count": os.cpu_count(),
        "arms": arms,
        "speedup_2w_vs_1w": wall_1w / wall_2w if wall_2w else 0.0,
        "hashes_identical": len({arm["sha256"] for arm in arms}) == 1,
    }


def gate(result: Dict[str, Any], min_speedup: float, kill: bool) -> List[str]:
    failures: List[str] = []
    hashes = {arm["label"]: arm["sha256"] for arm in result["arms"]}
    if not result["hashes_identical"]:
        failures.append(f"QoR hashes differ across arms: {hashes}")
    speedup = result["speedup_2w_vs_1w"]
    if speedup < min_speedup:
        failures.append(
            f"fleet x2 speedup {speedup:.2f}x < required {min_speedup}x"
        )
    for arm in result["arms"]:
        if any(code is None for code in arm["worker_exits"]):
            failures.append(
                f"{arm['label']}: worker(s) had to be killed at close()"
            )
        # Non-kill arms must shut down on the polite path (exit 0);
        # the kill arm's armed worker legitimately exits 117.
        if "kill" not in arm["label"] and any(
            code != 0 for code in arm["worker_exits"]
        ):
            failures.append(
                f"{arm['label']}: unclean worker exits "
                f"{arm['worker_exits']}"
            )
    if kill:
        kill_arm = result["arms"][-1]
        if kill_arm["workers_lost"] < 1:
            failures.append(
                "kill arm never lost a worker (fault did not fire)"
            )
        if kill_arm["redispatches"] < 1:
            failures.append("kill arm never re-dispatched the lost chunk")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=900)
    parser.add_argument("--clusters", type=int, default=3)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument(
        "--delay",
        type=float,
        default=0.5,
        metavar="S",
        help="simulated external-tool latency per evaluated item in "
        "fleet workers (the blocked portion a distributed sweep "
        "overlaps; default 0.5)",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--kill",
        action="store_true",
        help="add the worker-kill arm (one worker dies mid-sweep)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 unless identical hashes + speedup + clean shutdown",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.6,
        help="required fleet x2 vs fleet x1 speedup (default 1.6)",
    )
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args(argv)

    result = measure(
        instances=args.instances,
        clusters=args.clusters,
        iterations=args.iterations,
        seed=args.seed,
        kill=args.kill,
        delay_s=args.delay,
    )
    for arm in result["arms"]:
        print(
            f"{arm['label']:<16} wall {arm['wall_s']:7.2f}s  "
            f"sha {arm['sha256'][:12]}  lost={arm['workers_lost']} "
            f"redispatch={arm['redispatches']}"
        )
    print(
        f"fleet x2 vs x1 speedup: {result['speedup_2w_vs_1w']:.2f}x  "
        f"hashes identical: {result['hashes_identical']}"
    )

    failures = gate(result, args.min_speedup, args.kill) if args.gate else []
    result["gate_failures"] = failures

    if args.json_path:
        os.makedirs(
            os.path.dirname(os.path.abspath(args.json_path)), exist_ok=True
        )
        with open(args.json_path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")

    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
