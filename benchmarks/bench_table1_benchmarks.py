"""Table 1: benchmark specifications.

Regenerates the paper's benchmark statistics table (instances, nets,
target clock periods) over the scaled synthetic testcases, and
benchmarks design generation itself.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.designs import benchmark_spec, benchmark_table, generate_design


def test_table1(benchmark):
    rows = benchmark.pedantic(benchmark_table, rounds=1, iterations=1)
    table_rows = [
        [
            r["design"],
            r["instances"],
            r["nets"],
            f'{r["tcp_or"]:.2f}',
            "-",  # TCP_Inv masked in the paper (footnote 6)
            r["macros"],
        ]
        for r in rows
    ]
    text = format_table(
        "Table 1: Specifications of benchmarks (scaled ~1/40)",
        ["Design (NG45)", "#Insts", "#Nets", "TCP_OR", "TCP_Inv", "#Macros"],
        table_rows,
        note=(
            "TCP_Inv is masked in the paper to avoid benchmarking Innovus; "
            "our innovus mode reuses TCP_OR."
        ),
    )
    publish("table1_benchmarks", text)
    assert len(rows) == 6


@pytest.mark.parametrize("name", ["aes", "ariane", "MP-G"])
def test_generation_speed(benchmark, name):
    spec = benchmark_spec(name)
    design = benchmark.pedantic(
        generate_design, args=(spec,), rounds=1, iterations=1
    )
    assert design.validate() == []
