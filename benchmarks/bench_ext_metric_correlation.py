"""Extension: do structural clustering metrics predict PPA?

Section 2 of the paper argues that "previous clustering criteria based
on cutsize and/or modularity are not well-correlated with PPA
outcomes" — the motivation for PPA-aware clustering.  This bench makes
that claim quantitative: it produces a spread of clusterings (different
algorithms and seeds), runs each through the same seeded-placement
flow on jpeg, and reports the Spearman rank correlation between each
structural metric (cut fraction, conductance, modularity, Rent
exponent) and the post-route TNS.
"""

import numpy as np
import pytest
from scipy import stats

from benchmarks._tables import format_table, publish
from repro.cluster import AdjacencyGraph, evaluate_clustering, modularity
from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.ppa_clustering import PPAClusteringConfig
from repro.core.rent import weighted_average_rent
from repro.db import DesignDatabase
from repro.designs import load_benchmark

DESIGN = "jpeg"

#: (label, clusterer, seed) arms producing a spread of clusterings.
ARMS = [
    ("ppa-s0", "ppa", 0),
    ("ppa-s1", "ppa", 1),
    ("mfc-s0", "mfc", 0),
    ("mfc-s1", "mfc", 1),
    ("leiden", "leiden", 0),
    ("louvain", "louvain", 0),
    ("bc", "bc", 0),
    ("ec", "ec", 0),
]


def _run():
    records = []
    for label, method, seed in ARMS:
        design = load_benchmark(DESIGN, use_cache=False)
        db = DesignDatabase(design)
        flow = ClusteredPlacementFlow(
            FlowConfig(tool="openroad", clustering=method, seed=seed)
        )
        result = flow.run(design)
        cluster_of = result.clustering.cluster_of
        hgraph = db.hypergraph
        graph = AdjacencyGraph.from_hypergraph(hgraph)
        quality = evaluate_clustering(hgraph, cluster_of)
        records.append(
            {
                "label": label,
                "cut": quality.cut_fraction,
                "conductance": quality.mean_conductance,
                "modularity": modularity(graph, cluster_of),
                "rent": weighted_average_rent(hgraph, cluster_of),
                "tns": result.metrics.tns,
                "rwl": result.metrics.rwl,
            }
        )
    return records


def test_metric_correlation(benchmark):
    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [
            r["label"],
            f"{r['cut']:.3f}",
            f"{r['conductance']:.3f}",
            f"{r['modularity']:.3f}",
            f"{r['rent']:.3f}",
            f"{r['tns']:.2f}",
            f"{r['rwl']:.0f}",
        ]
        for r in records
    ]
    tns = [r["tns"] for r in records]
    correlations = []
    for metric in ("cut", "conductance", "modularity", "rent"):
        values = [r[metric] for r in records]
        rho, _p = stats.spearmanr(values, tns)
        correlations.append(f"{metric}: rho={rho:+.2f}")
    text = format_table(
        f"Extension: structural metrics vs post-route TNS ({DESIGN})",
        ["Clustering", "Cut", "Conduct", "Q", "Rent", "TNS", "rWL"],
        rows,
        note=(
            "Spearman rank correlation with TNS (|rho| near 1 would mean "
            "the metric predicts PPA): " + "; ".join(correlations) + ". "
            "The paper's Section 2 claim is that these correlations are "
            "weak — PPA-aware clustering is needed."
        ),
    )
    publish("ext_metric_correlation", text)
    assert len(records) == len(ARMS)
