"""Extension: enhanced power-awareness (the paper's future work).

The paper's conclusion plans to enhance the clustering's
power-awareness "to further improve the post-route power metric".
Two knobs implement that here:

* the switching-cost weight gamma of Eq. 3 (clustering-side), and
* activity-directed placement net weights (``FlowConfig.power_emphasis``,
  placement-side).

This bench sweeps both on jpeg and reports the power / TNS / rWL
trade-off.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.costs import CostConfig
from repro.core.ppa_clustering import PPAClusteringConfig
from repro.designs import load_benchmark

DESIGN = "jpeg"

ARMS = [
    ("baseline (gamma=1, emph=0)", 1.0, 0.0),
    ("gamma=4", 4.0, 0.0),
    ("emphasis=2", 1.0, 2.0),
    ("gamma=4 + emphasis=2", 4.0, 2.0),
]
_RESULTS = {}


def _run(label, gamma, emphasis):
    design = load_benchmark(DESIGN, use_cache=False)
    config = FlowConfig(
        tool="openroad",
        clustering_config=PPAClusteringConfig(cost=CostConfig(gamma=gamma)),
        power_emphasis=emphasis,
    )
    return ClusteredPlacementFlow(config).run(design).metrics


@pytest.mark.parametrize("label,gamma,emphasis", ARMS)
def test_power_arm(benchmark, label, gamma, emphasis):
    metrics = benchmark.pedantic(
        _run, args=(label, gamma, emphasis), rounds=1, iterations=1
    )
    _RESULTS[label] = metrics


def test_power_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = _RESULTS.get(ARMS[0][0])
    if base is None:
        pytest.skip("arm stage did not run")
    rows = []
    for label, _g, _e in ARMS:
        m = _RESULTS.get(label)
        if m is None:
            continue
        rows.append(
            [
                label,
                f"{m.power:.3f}",
                f"{m.power / base.power:.4f}",
                f"{m.tns:.2f}",
                f"{m.rwl / base.rwl:.3f}",
            ]
        )
    text = format_table(
        f"Extension: power-awareness knobs on {DESIGN}",
        ["Arm", "Power (mW)", "vs base", "TNS", "rWL"],
        rows,
        note=(
            "gamma is Eq. 3's switching-cost weight (clustering); "
            "emphasis is the activity-directed placement weighting "
            "(the paper's stated power future work)."
        ),
    )
    publish("ext_power_aware", text)
    assert rows
