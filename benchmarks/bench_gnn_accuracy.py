"""Section 4.4 / Figure 4: GNN Total-Cost predictor accuracy.

Builds a labelled corpus by perturbing clustering hyperparameters and
sweeping the 20 shapes with exact V-P&R (as in the paper, at reduced
scale: the paper uses 22700/5600/3200 samples, we default to a few
hundred — the split ratio matches).  Trains the 4-branch hypergraph
GNN and reports MAE and R^2 on train / validation / test.
"""

import numpy as np
import pytest

from benchmarks._tables import bench_scale, format_table, publish
from repro.designs import load_benchmark
from repro.ml import (
    DatasetConfig,
    TrainingConfig,
    build_dataset,
    split_dataset,
    train_model,
)
from repro.core.vpr import VPRConfig

#: Trained model is persisted here for bench_ml_speedup reuse.
MODEL_PATH = "benchmarks/results/total_cost_gnn.npz"

_STATE = {}


def _build_corpus():
    scale = bench_scale()
    designs = [
        load_benchmark("aes", use_cache=False),
        load_benchmark("jpeg", use_cache=False),
        load_benchmark("ariane", use_cache=False),
    ]
    config = DatasetConfig(
        max_clusters_per_design=max(4, int(24 * scale)),
        min_cluster_instances=40,
        max_cluster_instances=500,
        perturbation_seeds=(0, 1, 2, 3, 4, 5),
        cluster_sizes=(50, 80, 120, 200),
        vpr=VPRConfig(placer_iterations=4),
    )
    return build_dataset(designs, config)


def test_gnn_dataset(benchmark):
    samples = benchmark.pedantic(_build_corpus, rounds=1, iterations=1)
    _STATE["samples"] = samples
    labels = np.array([s.label for s in samples])
    assert len(samples) >= 200
    assert labels.std() > 0


def test_gnn_training(benchmark):
    samples = _STATE.get("samples")
    if samples is None:
        pytest.skip("dataset stage did not run")
    train, val, test = split_dataset(samples, seed=0)
    config = TrainingConfig(epochs=max(10, int(26 * bench_scale())), seed=0)
    result = benchmark.pedantic(
        train_model, args=(train, val, test), kwargs={"config": config},
        rounds=1, iterations=1,
    )
    _STATE["result"] = result
    _STATE["split_sizes"] = (len(train), len(val), len(test))
    result.model.save(MODEL_PATH)

    rows = []
    for split in ("train", "val", "test"):
        m = result.metrics[split]
        rows.append([split, f'{m["mae"]:.4f}', f'{m["r2"]:.3f}'])
    labels = np.array([s.label for s in samples])
    text = format_table(
        "Section 4.4: GNN Total-Cost accuracy",
        ["Split", "MAE", "R2"],
        rows,
        note=(
            f"samples train/val/test = {_STATE['split_sizes']}; "
            f"labels in [{labels.min():.3f}, {labels.max():.3f}], "
            f"mean {labels.mean():.3f}, std {labels.std():.3f}. "
            "Paper: MAE 0.105/0.113/0.131, R2 0.788/0.753/0.638 on "
            "22700/5600/3200 samples."
        ),
    )
    publish("gnn_accuracy", text)
    # Shape check: the model learns real signal on held-out data.
    assert result.metrics["train"]["r2"] > 0.5
    assert result.metrics["test"]["mae"] < 2 * labels.std()
