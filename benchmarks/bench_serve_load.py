"""Serve load gate: N clients hammering one daemon on one shared cache.

Launches ``repro serve`` as a real subprocess (ephemeral port,
discovered via ``server.json``), then runs ``--clients`` closed-loop
client threads, each submitting every one of ``--designs`` generated
designs ``--repeats`` times and waiting for completion before the next
submission.  Every job's submit-to-terminal latency is recorded; the
run reports throughput, latency percentiles (p50/p95/p99) and the
shared cache's warm-hit ratio into ``BENCH_serve.json``.

``--gate`` (used by ``make serve-smoke`` and CI) additionally asserts:

* every job finished ``done`` (crash containment never tripped);
* repeat traffic hit the warm path (``vpr.cache.hit`` > 0 overall);
* p99 latency under ``--max-p99`` seconds;
* warm jobs beat cold jobs by at least ``--min-speedup`` (mean runner
  wall seconds, cold = jobs with cache misses, warm = jobs served
  entirely from cache);
* the daemon shuts down cleanly (``POST /shutdown`` -> exit code 0).

Usage::

    python benchmarks/bench_serve_load.py --gate \
        --json benchmarks/results/BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA = "repro.bench_serve/1"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile; q in [0, 100]."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


def _designs(count: int, instances: int) -> List[Dict[str, Any]]:
    return [
        {
            "design": {
                "name": f"load{i}",
                "num_instances": instances,
                "seed": 100 + i,
            },
            "routing": False,
        }
        for i in range(count)
    ]


def _client_loop(
    client, specs: List[Dict[str, Any]], repeats: int,
    records: List[Dict[str, Any]], lock: threading.Lock,
) -> None:
    """One closed-loop client: submit, wait, record, repeat."""
    for rep in range(repeats):
        for spec in specs:
            t0 = time.perf_counter()
            job_id = client.submit(spec)
            final = client.wait(job_id, timeout=600.0)
            latency = time.perf_counter() - t0
            with lock:
                records.append(
                    {
                        "job_id": job_id,
                        "design": final.get("design"),
                        "repeat": rep,
                        "state": final["state"],
                        "latency_s": latency,
                        "wall_s": final.get("wall_s") or 0.0,
                        "counters": final.get("counters") or {},
                    }
                )


def measure(
    clients: int = 4,
    designs: int = 2,
    repeats: int = 2,
    workers: int = 2,
    instances: int = 1500,
) -> Dict[str, Any]:
    """One daemon, ``clients`` threads, ``designs * repeats`` jobs each."""
    from repro.serve import ServeClient

    run_root = tempfile.mkdtemp(prefix="repro-serve-bench-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if p
    )
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--run-root", run_root, "--port", "0",
            "--workers", str(workers),
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    records: List[Dict[str, Any]] = []
    lock = threading.Lock()
    stats: Dict[str, Any] = {}
    clean_shutdown = False
    try:
        base = ServeClient.discover(run_root, timeout=60.0)
        specs = _designs(designs, instances)
        t0 = time.perf_counter()
        threads = [
            threading.Thread(
                # One ServeClient per thread: urllib openers are not
                # meant to be shared across threads.
                target=_client_loop,
                args=(ServeClient(base.url), specs, repeats, records, lock),
                name=f"client-{i}",
            )
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0
        stats = ServeClient(base.url).stats()
        base.shutdown()
        clean_shutdown = daemon.wait(timeout=60.0) == 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        daemon.stdout.close()
        shutil.rmtree(run_root, ignore_errors=True)

    latencies = [r["latency_s"] for r in records]
    # The speedup arms compare runner wall (started -> finished), not
    # client-observed latency: queue wait under N closed-loop clients
    # on fewer workers would otherwise blur cold vs warm.
    cold = [
        r["wall_s"]
        for r in records
        if r["counters"].get("vpr.cache.miss", 0) > 0
    ]
    warm = [
        r["wall_s"]
        for r in records
        if r["counters"].get("vpr.cache.hit", 0) > 0
        and r["counters"].get("vpr.cache.miss", 0) == 0
    ]
    total_hits = sum(r["counters"].get("vpr.cache.hit", 0) for r in records)
    cold_mean = sum(cold) / len(cold) if cold else 0.0
    warm_mean = sum(warm) / len(warm) if warm else 0.0
    return {
        "schema": SCHEMA,
        "config": {
            "clients": clients,
            "designs": designs,
            "repeats": repeats,
            "workers": workers,
            "instances": instances,
        },
        "jobs": {
            "total": len(records),
            "done": sum(1 for r in records if r["state"] == "done"),
            "failed": sum(1 for r in records if r["state"] == "failed"),
            "cold": len(cold),
            "warm": len(warm),
        },
        "wall_s": wall,
        "throughput_jobs_per_s": len(records) / wall if wall else 0.0,
        "latency_s": {
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "p50": _percentile(latencies, 50),
            "p95": _percentile(latencies, 95),
            "p99": _percentile(latencies, 99),
            "max": max(latencies) if latencies else 0.0,
            "cold_mean": cold_mean,
            "warm_mean": warm_mean,
        },
        "warm_speedup": cold_mean / warm_mean if warm_mean else 0.0,
        "cache": stats.get("cache", {}),
        "warm_hits_total": total_hits,
        "clean_shutdown": clean_shutdown,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--designs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--instances", type=int, default=1500,
        help="generated-design size; must be large enough that "
        "clustering yields clusters over min_cluster_instances (200), "
        "or shape selection never touches the cache",
    )
    parser.add_argument("--json", help="write the report here")
    parser.add_argument(
        "--gate", action="store_true",
        help="assert the serve acceptance criteria (exit 1 on failure)",
    )
    parser.add_argument(
        "--max-p99", type=float, default=60.0,
        help="p99 submit-to-done latency gate in seconds",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.1,
        help="warm jobs must beat cold jobs by this factor",
    )
    args = parser.parse_args(argv)

    report = measure(
        clients=args.clients,
        designs=args.designs,
        repeats=args.repeats,
        workers=args.workers,
        instances=args.instances,
    )
    print(
        "serve-load: {total} jobs ({done} done, {failed} failed) in "
        "{wall:.1f}s = {thr:.2f} jobs/s; p99 {p99:.2f}s; "
        "warm speedup {speedup:.2f}x; warm-hit ratio {ratio:.2f}; "
        "clean shutdown: {clean}".format(
            total=report["jobs"]["total"],
            done=report["jobs"]["done"],
            failed=report["jobs"]["failed"],
            wall=report["wall_s"],
            thr=report["throughput_jobs_per_s"],
            p99=report["latency_s"]["p99"],
            speedup=report["warm_speedup"],
            ratio=report["cache"].get("warm_hit_ratio", 0.0),
            clean=report["clean_shutdown"],
        )
    )
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"serve-load: wrote {args.json}")

    if args.gate:
        failures = []
        if report["jobs"]["failed"]:
            failures.append(f"{report['jobs']['failed']} job(s) failed")
        if report["warm_hits_total"] <= 0:
            failures.append("no warm cache hits recorded")
        if report["latency_s"]["p99"] > args.max_p99:
            failures.append(
                f"p99 {report['latency_s']['p99']:.2f}s > {args.max_p99:g}s"
            )
        if report["warm_speedup"] < args.min_speedup:
            failures.append(
                f"warm speedup {report['warm_speedup']:.2f}x < "
                f"{args.min_speedup:g}x"
            )
        if not report["clean_shutdown"]:
            failures.append("daemon did not shut down cleanly")
        if failures:
            for failure in failures:
                print(f"serve-load: GATE FAILED: {failure}")
            return 1
        print("serve-load: gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
