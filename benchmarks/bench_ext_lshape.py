"""Extension: L-shaped cluster shapes (the paper's future work).

The paper's conclusion lists non-rectangular cluster shapes as ongoing
research.  This bench runs the extended V-P&R sweep (20 rectangles +
24 L-shapes) on the largest clusters of jpeg and reports whether any
L-shape achieves a better Total Cost than the best rectangle.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core.ppa_clustering import PPAClusteringConfig, ppa_aware_clustering
from repro.core.shape_extensions import LShapeVPRFramework
from repro.core.vpr import VPRConfig
from repro.db.database import DesignDatabase
from repro.designs import load_benchmark


def _run():
    design = load_benchmark("jpeg", use_cache=False)
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(
        db, PPAClusteringConfig(target_cluster_size=200)
    )
    members = clustering.members()
    config = VPRConfig(min_cluster_instances=100, placer_iterations=4)
    framework = LShapeVPRFramework(config)
    eligible = framework.eligible_clusters(members)[:3]
    records = []
    for c in eligible:
        record = framework.sweep_with_lshapes(design, members[c])
        record["cluster"] = c
        record["size"] = len(members[c])
        records.append(record)
    return records


def test_lshape_extension(benchmark):
    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for r in records:
        rows.append(
            [
                f"cluster {r['cluster']} ({r['size']} insts)",
                f"{r['best_rect_cost']:.4f}",
                str(r["best_rect"]),
                f"{r['best_lshape_cost']:.4f}",
                str(r["best_lshape"]),
                "L-shape" if r["lshape_wins"] else "rectangle",
            ]
        )
    text = format_table(
        "Extension: L-shaped vs rectangular cluster shapes (jpeg)",
        ["Cluster", "Rect cost", "Best rect", "L cost", "Best L", "Winner"],
        rows,
        note=(
            "Total Cost (Eq. 4-5) over 20 rectangles + 24 L-shapes per "
            "cluster.  The paper leaves non-rectangular shapes as future "
            "work; this implements the L-shaped variant."
        ),
    )
    publish("ext_lshape", text)
    assert records
