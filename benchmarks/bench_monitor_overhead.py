"""Monitor overhead gate: the flight recorder must be (nearly) free.

Two claims are gated (docs/observability.md "Live monitoring"):

1. **Overhead** — running the aes flow with the monitor on (RSS/CPU
   sampler thread + progress accounting + status.json refreshes) costs
   at most ``--max-overhead`` (default 5%) extra wall over the same
   flow with telemetry alone.  Both arms are repeated and compared
   min-of-walls vs min-of-walls, so scheduler noise on a sub-second
   flow does not produce flaky verdicts.
2. **Identity** — the monitor is purely observational: the QoR record,
   every non-monitor metric stream and the selected shapes hash
   byte-identically between the two arms.

``--live`` instead runs the *process-level* smoke used by
``make monitor-smoke``: launch ``repro flow --telemetry DIR --monitor``
as a subprocess, poll ``DIR/status.json`` until progress advances
(asserting done <= total and monotonicity at every poll), render
``repro top DIR --once`` from this process, then require a final
``state: done`` document.

Usage::

    python benchmarks/bench_monitor_overhead.py --gate \
        --json benchmarks/results/BENCH_monitor.json
    python benchmarks/bench_monitor_overhead.py --live
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA = "repro.bench_monitor/1"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _identity_hash(run_json_path: str) -> str:
    """Digest of everything the monitor must not change: QoR, the
    non-monitor metric streams and the selected shapes (timing fields
    stripped — walls legitimately differ between arms)."""
    with open(run_json_path) as handle:
        run = json.load(handle)
    qor = {
        k: v
        for k, v in sorted((run.get("qor") or {}).items())
        if "runtime" not in k  # wall-clock, legitimately differs
    }
    streams = {
        name: stream.get("values")
        for name, stream in sorted((run.get("metrics") or {}).items())
        if not name.startswith("monitor.")
    }
    shapes = [
        {
            k: v
            for k, v in event.items()
            if k not in ("schema", "seq", "t")
        }
        for event in run.get("events") or []
        if event.get("type") == "vpr.shape_selected"
    ]
    payload = {"qor": qor, "streams": streams, "shapes": shapes}
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _run_flow_once(
    benchmark: str, seed: int, jobs: int, out_dir: str, monitored: bool
) -> float:
    """One subprocess flow run; returns its wall-clock seconds.

    Subprocesses (rather than in-process runs) keep the arms honest:
    each run pays interpreter + import + sampler lifecycle exactly as
    a user's run would, and no allocator state leaks between arms.
    """
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "flow",
        "--benchmark",
        benchmark,
        "--no-routing",
        "--seed",
        str(seed),
        "--jobs",
        str(jobs),
        "--telemetry",
        out_dir,
    ]
    if monitored:
        cmd.append("--monitor")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if p
    )
    t0 = time.perf_counter()
    subprocess.run(
        cmd, check=True, env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )
    return time.perf_counter() - t0


def measure(
    benchmark: str = "aes",
    seed: int = 0,
    jobs: int = 1,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Run both arms ``repeats`` times; min-of-walls + identity hashes."""
    base_dir = tempfile.mkdtemp(prefix="repro-monitor-bench-")
    walls: Dict[str, List[float]] = {"baseline": [], "monitored": []}
    hashes: Dict[str, str] = {}
    monitor_block: Optional[Dict[str, Any]] = None
    try:
        for rep in range(repeats):
            # Alternate arm order per repeat so slow-host drift (thermal,
            # cache warmup) cannot systematically favour one arm.
            arms = ["baseline", "monitored"]
            if rep % 2:
                arms.reverse()
            for arm in arms:
                out_dir = os.path.join(base_dir, f"{arm}-{rep}")
                wall = _run_flow_once(
                    benchmark, seed, jobs, out_dir, monitored=arm == "monitored"
                )
                walls[arm].append(wall)
                digest = _identity_hash(os.path.join(out_dir, "run.json"))
                previous = hashes.setdefault(arm, digest)
                assert previous == digest, (
                    f"{arm} arm not deterministic across repeats: "
                    f"{previous} vs {digest}"
                )
                if arm == "monitored" and monitor_block is None:
                    with open(os.path.join(out_dir, "run.json")) as handle:
                        monitor_block = json.load(handle).get("monitor")
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)

    baseline = min(walls["baseline"])
    monitored = min(walls["monitored"])
    overhead = (monitored - baseline) / baseline
    return {
        "schema": SCHEMA,
        "benchmark": benchmark,
        "seed": seed,
        "jobs": jobs,
        "repeats": repeats,
        "wall_s": {
            "baseline": walls["baseline"],
            "monitored": walls["monitored"],
        },
        "best_wall_s": {"baseline": baseline, "monitored": monitored},
        "overhead_frac": overhead,
        "identity": {
            "baseline": hashes["baseline"],
            "monitored": hashes["monitored"],
            "identical": hashes["baseline"] == hashes["monitored"],
        },
        "monitor": monitor_block,
    }


# ----------------------------------------------------------------------
# Live smoke (make monitor-smoke)
# ----------------------------------------------------------------------
def live_smoke(
    benchmark: str = "aes",
    seed: int = 0,
    jobs: int = 2,
    timeout: float = 120.0,
) -> Dict[str, Any]:
    """Launch a monitored flow, watch it live, assert the invariants."""
    from repro.monitor.status import load_status

    out_dir = tempfile.mkdtemp(prefix="repro-monitor-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if p
    )
    cmd = [
        sys.executable, "-m", "repro", "flow",
        "--benchmark", benchmark, "--no-routing",
        "--seed", str(seed), "--jobs", str(jobs),
        "--telemetry", out_dir, "--monitor",
    ]
    proc = subprocess.Popen(
        cmd, env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + timeout
    seen: Dict[str, int] = {}
    polls = advances = 0
    progressed = False
    try:
        # Poll until progress visibly advances (monotone at every poll).
        while time.monotonic() < deadline:
            status = load_status(out_dir)
            if status is not None:
                polls += 1
                for task in status.get("progress") or []:
                    name, done = task["name"], int(task["done"])
                    total = int(task["total"])
                    assert 0 <= done <= total, (name, done, total)
                    assert done >= seen.get(name, 0), (
                        f"progress went backwards: {name} "
                        f"{seen.get(name)} -> {done}"
                    )
                    if done > seen.get(name, 0):
                        advances += 1
                    seen[name] = done
                if advances and not progressed:
                    progressed = True
                    # Render one frame from *this* process while the
                    # run is (possibly still) in flight.
                    top = subprocess.run(
                        [sys.executable, "-m", "repro", "top", out_dir,
                         "--once"],
                        env=env, cwd=REPO_ROOT, capture_output=True,
                        text=True, timeout=30,
                    )
                    assert top.returncode == 0, top.stderr
                    assert "progress:" in top.stdout, top.stdout
            if proc.poll() is not None and progressed:
                break
            time.sleep(0.02)
        rc = proc.wait(timeout=max(1.0, deadline - time.monotonic()))
    finally:
        if proc.poll() is None:  # pragma: no cover - only on timeout
            proc.kill()
            proc.wait()
    assert rc == 0, f"monitored flow exited {rc}"
    assert progressed, "status.json never showed progress advancing"
    final = load_status(out_dir)
    assert final is not None and final.get("state") == "done", final
    for task in final.get("progress") or []:
        assert task["done"] == task["total"], task
        assert task["finished"] is True, task
    result = {
        "schema": SCHEMA,
        "mode": "live",
        "benchmark": benchmark,
        "polls": polls,
        "advances": advances,
        "final_progress": final.get("progress"),
        "out_dir": out_dir,
    }
    shutil.rmtree(out_dir, ignore_errors=True)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="aes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="fail when monitored wall exceeds baseline by more than "
        "this fraction (default 0.05)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero on overhead or identity violations",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="run the process-level live smoke instead of the "
        "overhead measurement",
    )
    parser.add_argument("--json", help="write the result record here")
    args = parser.parse_args(argv)

    if args.live:
        record = live_smoke(
            benchmark=args.benchmark,
            seed=args.seed,
            jobs=max(2, args.jobs),
        )
        print(
            f"monitor live smoke: {record['advances']} progress "
            f"advance(s) over {record['polls']} polls; final "
            f"{[(t['name'], t['done'], t['total']) for t in record['final_progress']]}"
        )
    else:
        record = measure(
            benchmark=args.benchmark,
            seed=args.seed,
            jobs=args.jobs,
            repeats=args.repeats,
        )
        print(
            f"monitor overhead: baseline "
            f"{record['best_wall_s']['baseline']:.3f}s, monitored "
            f"{record['best_wall_s']['monitored']:.3f}s "
            f"({record['overhead_frac']:+.2%}); identity "
            f"{'OK' if record['identity']['identical'] else 'MISMATCH'}"
        )
        if args.gate:
            failures = []
            if not record["identity"]["identical"]:
                failures.append(
                    "monitored run changed QoR/streams/shapes: "
                    f"{record['identity']}"
                )
            if record["overhead_frac"] > args.max_overhead:
                failures.append(
                    f"overhead {record['overhead_frac']:.2%} exceeds "
                    f"{args.max_overhead:.0%}"
                )
            for failure in failures:
                print(f"FAIL: {failure}")
            if failures:
                return 1

    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
