"""Extension: materialised buffering + sizing vs the virtual model.

The STA delay model charges a logarithmic *virtual buffering* penalty
on overloaded drivers (what OpenROAD's resizer would fix).  This bench
runs the real optimisation passes (repeater insertion + one gate-sizing
pass) after placement and compares post-route WNS/TNS/power against
the unoptimised placement, validating that the virtual model and the
materialised buffers tell the same story.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core.flow import evaluate_placed_design
from repro.designs import load_benchmark
from repro.opt import buffer_high_fanout_nets, resize_gates
from repro.place import GlobalPlacer, PlacementProblem
from repro.sta import PlacementWireModel, TimingGraph

DESIGNS = ["jpeg", "ariane"]
_RESULTS = {}


def _run(name):
    base_design = load_benchmark(name, use_cache=False)
    GlobalPlacer(PlacementProblem(base_design)).run()
    base = evaluate_placed_design(base_design)

    opt_design = load_benchmark(name, use_cache=False)
    GlobalPlacer(PlacementProblem(opt_design)).run()
    model = PlacementWireModel(opt_design)
    buffering = buffer_high_fanout_nets(opt_design, model)
    graph = TimingGraph(opt_design)  # rebuilt: connectivity changed
    sizing = resize_gates(opt_design, graph, model)
    optimised = evaluate_placed_design(opt_design)
    return {
        "base": base,
        "opt": optimised,
        "buffers": buffering.buffers_inserted,
        "upsized": sizing.upsized,
        "downsized": sizing.downsized,
    }


@pytest.mark.parametrize("name", DESIGNS)
def test_resizer_design(benchmark, name):
    result = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    # Materialised optimisation must not degrade TNS materially.
    assert result["opt"].tns >= result["base"].tns - 0.5


def test_resizer_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DESIGNS:
        r = _RESULTS.get(name)
        if r is None:
            continue
        for label in ("base", "opt"):
            m = r[label]
            rows.append(
                [
                    name if label == "base" else "",
                    "virtual model" if label == "base" else "materialised",
                    f"{m.rwl:.0f}",
                    f"{m.wns * 1e3:.0f}",
                    f"{m.tns:.2f}",
                    f"{m.power:.3f}",
                ]
            )
        rows.append(
            [
                "",
                f"({r['buffers']} buffers, {r['upsized']} up / "
                f"{r['downsized']} down)",
                "",
                "",
                "",
                "",
            ]
        )
    text = format_table(
        "Extension: materialised resizer vs virtual buffering model",
        ["Design", "Netlist", "rWL", "WNS", "TNS", "Power"],
        rows,
        note=(
            "Both rows use the same placement; 'materialised' inserts "
            "real repeaters and resizes gates before evaluation."
        ),
    )
    publish("ext_resizer", text)
    assert rows
