"""Section 3.2: ML acceleration of the V-P&R framework.

Measures, per eligible cluster, the wall-clock of (i) the exact 20-shape
V-P&R sweep and (ii) the GNN predictor (feature extraction + 20
batched forward passes), and reports the speedup plus the agreement of
the selected shapes.  The paper reports ~30x; the achievable factor
here depends on the Python feature-extraction cost, so the *shape*
(order-of-magnitude acceleration with near-equivalent selections) is
the reproduction target.
"""

import time

import numpy as np
import pytest

from benchmarks._tables import format_table, publish
from repro.core.ppa_clustering import PPAClusteringConfig, ppa_aware_clustering
from repro.core.shapes import default_candidate_grid
from repro.core.vpr import VPRConfig, VPRFramework, extract_subnetlist
from repro.db.database import DesignDatabase
from repro.designs import load_benchmark
from repro.ml import FeatureExtractor, TotalCostGNN, TotalCostPredictor

MODEL_PATH = "benchmarks/results/total_cost_gnn.npz"


def _load_or_train_model():
    import os

    if os.path.exists(MODEL_PATH):
        return TotalCostGNN.load(MODEL_PATH)
    # Minimal fallback training (bench_gnn_accuracy normally ran first).
    from repro.ml import DatasetConfig, TrainingConfig, build_dataset, train_model

    samples = build_dataset(
        [load_benchmark("aes", use_cache=False)],
        DatasetConfig(
            max_clusters_per_design=5,
            min_cluster_instances=40,
            max_cluster_instances=400,
            perturbation_seeds=(0,),
            cluster_sizes=(80,),
            vpr=VPRConfig(placer_iterations=3),
        ),
    )
    result = train_model(samples, config=TrainingConfig(epochs=10, seed=0))
    return result.model


def test_ml_speedup(benchmark):
    design = load_benchmark("ariane", use_cache=False)
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(
        db, PPAClusteringConfig(target_cluster_size=150)
    )
    members = clustering.members()
    config = VPRConfig(min_cluster_instances=100, placer_iterations=4)
    framework = VPRFramework(config)
    eligible = framework.eligible_clusters(members)[:4]
    assert eligible, "need at least one V-P&R-eligible cluster"

    model = _load_or_train_model()
    predictor = TotalCostPredictor(model, FeatureExtractor())
    candidates = default_candidate_grid()

    exact_times = []
    ml_times = []
    blockdiag_times = []
    blocked_times = []
    unbatched_times = []
    agreements = []
    for c in eligible:
        t0 = time.perf_counter()
        sweep = framework.sweep_cluster(design, members[c], cluster_id=c)
        exact_times.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        sub = extract_subnetlist(design, members[c])
        costs = predictor(sub, candidates)
        ml_times.append(time.perf_counter() - t0)

        # Inference-only comparison of the three batching strategies
        # (shared feature extraction excluded): one forward per
        # candidate, the block-diagonal batch, and the shared-operator
        # blocked batch the flow path uses.
        base = predictor.extractor.extract(sub)
        samples = [base.with_shape(cand) for cand in candidates]
        t0 = time.perf_counter()
        for s in samples:
            model.predict([s])
        unbatched_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        block_costs = model.predict(samples)
        blockdiag_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        features = np.repeat(base.features[None, :, :], len(candidates), 0)
        for i, cand in enumerate(candidates):
            features[i, :, 0] = cand.utilization
            features[i, :, 1] = cand.aspect_ratio
        shared_costs = model.predict_shared(features, base.operator)
        blocked_times.append(time.perf_counter() - t0)
        assert np.allclose(block_costs, costs, rtol=1e-9, atol=1e-9)
        assert np.array_equal(shared_costs, costs)
        ml_choice = candidates[int(np.argmin(costs))]
        # Rank of the ML choice under the exact costs (1 = identical).
        exact_costs = [e.total(config.delta) for e in sweep.evaluations]
        order = np.argsort(exact_costs)
        rank = [candidates[i] for i in order].index(ml_choice) + 1
        agreements.append(rank)

    def _measured():
        return sum(exact_times) / max(sum(ml_times), 1e-9)

    speedup = benchmark.pedantic(_measured, rounds=1, iterations=1)
    rows = [
        [
            f"cluster {eligible[i]}",
            f"{exact_times[i]:.3f}",
            f"{ml_times[i]:.3f}",
            f"{exact_times[i] / max(ml_times[i], 1e-9):.1f}x",
            agreements[i],
        ]
        for i in range(len(eligible))
    ]
    text = format_table(
        "Section 3.2: ML acceleration of V-P&R",
        ["Cluster", "Exact (s)", "ML (s)", "Speedup", "ML-choice rank"],
        rows,
        note=(
            f"Aggregate speedup: {speedup:.1f}x (paper: ~30x). "
            "Rank = position of the ML-selected shape in the exact "
            "cost ordering (1 = identical choice, 20 = worst). "
            "GNN batching (inference only, feature extraction "
            f"excluded): per-candidate loop {sum(unbatched_times):.3f}s, "
            f"block-diagonal batch {sum(blockdiag_times):.3f}s, "
            f"shared-operator blocked batch {sum(blocked_times):.3f}s "
            f"({sum(unbatched_times) / max(sum(blocked_times), 1e-9):.1f}x "
            "loop->blocked, "
            f"{sum(blockdiag_times) / max(sum(blocked_times), 1e-9):.1f}x "
            "block-diag->blocked); predictions bit-identical across "
            "all three."
        ),
    )
    publish("ml_speedup", text)
    assert speedup > 2.0
