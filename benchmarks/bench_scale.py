"""Netlist-core scaling benchmark: arrays vs objects -> BENCH_scale.json.

Measures, per design size (10k -> 1M instances by default):

* **arrays**: the array-native path — ``generate_arrays`` build wall,
  hypergraph construction (``hyperedge_csr`` + ``Hypergraph.from_csr``),
  STA-graph construction (``TimingGraph`` on bare ``NetlistArrays``),
  an HPWL evaluation, the exact ``NetlistArrays.nbytes`` footprint and
  the process peak RSS.
* **object** (up to ``--object-max`` instances): the same netlist
  materialized with ``to_design``, timing the pre-existing object-walk
  hypergraph / STA builds (``use_arrays=False``) and a deep
  ``sys.getsizeof`` traversal of the linked graph.

Each (size, representation) cell runs in its own subprocess so peak-RSS
numbers are not polluted by earlier cells.  Results are written to
``BENCH_scale.json``; at the gate size (default 100k) ``--gate``
enforces the PR's acceptance thresholds:

* arrays bytes/instance at least ``--min-bytes-ratio`` (5x) below the
  object graph's,
* hypergraph + STA construction at least ``--min-build-ratio`` (3x)
  faster than the object walks,
* absolute smoke ceilings on the arrays build wall and peak RSS.

Usage::

    python benchmarks/bench_scale.py                        # full ladder
    python benchmarks/bench_scale.py --smoke --gate         # CI: 100k only
    python benchmarks/bench_scale.py --sizes 10000,1000000
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SIZES = (10_000, 100_000, 1_000_000)
GATE_SIZE = 100_000


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (shared probe with the live monitor)."""
    from repro.perf import peak_rss_bytes

    return peak_rss_bytes() / (1024.0 * 1024.0)


def _spec(size: int):
    from repro.designs.generator import DesignSpec

    return DesignSpec(name=f"scale{size}", num_instances=size, seed=1)


# ----------------------------------------------------------------------
# Child measurements (one subprocess per cell)
# ----------------------------------------------------------------------
def _measure_arrays(size: int) -> dict:
    import numpy as np

    from repro.designs.generator import generate_arrays
    from repro.netlist.hypergraph import Hypergraph
    from repro.place.hpwl import hpwl_arrays
    from repro.sta.graph import TimingGraph

    t0 = time.perf_counter()
    arrays = generate_arrays(_spec(size))
    t_gen = time.perf_counter() - t0

    t0 = time.perf_counter()
    indptr, verts, sel = arrays.hyperedge_csr()
    hg = Hypergraph.from_csr(
        arrays.num_instances,
        indptr,
        verts,
        edge_weights=arrays.current_net_weights()[sel],
        vertex_areas=arrays.current_inst_areas(),
        edge_net_indices=sel,
    )
    t_hyper = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph = TimingGraph(arrays)
    t_sta = time.perf_counter() - t0

    t0 = time.perf_counter()
    pin_vertex, offsets, _ = arrays.pin_vertex_csr()
    n_total = arrays.num_instances + arrays.num_ports
    xs, ys = arrays.current_positions()
    x = np.zeros(n_total)
    y = np.zeros(n_total)
    x[: arrays.num_instances] = xs
    y[: arrays.num_instances] = ys
    wl = hpwl_arrays(pin_vertex, offsets, x, y)
    t_hpwl = time.perf_counter() - t0

    return {
        "repr": "arrays",
        "instances": arrays.num_instances,
        "nets": arrays.num_nets,
        "pins": arrays.num_pins,
        "sta_nodes": graph.num_nodes,
        "hypergraph_edges": hg.num_edges,
        "hpwl": wl,
        "bytes": arrays.nbytes,
        "bytes_per_instance": arrays.nbytes / size,
        "gen_s": t_gen,
        "hypergraph_s": t_hyper,
        "sta_s": t_sta,
        "hpwl_s": t_hpwl,
        "build_s": t_hyper + t_sta,
        "peak_rss_mb": _peak_rss_mb(),
    }


def _deep_bytes(design) -> int:
    """Deep ``sys.getsizeof`` of the linked netlist graph.

    Counts each object once (shared strings / interned pins are not
    double-counted) and ignores allocator overhead, so it *understates*
    the object graph's real RSS — a conservative denominator for the
    bytes-ratio gate.
    """
    seen: set = set()

    def add(obj) -> int:
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        return sys.getsizeof(obj)

    total = add(design)
    total += add(design.ports) + add(design.masters)
    total += add(design.instances) + add(design.nets)
    for name, port in design.ports.items():
        total += add(name) + add(port) + add(port.__dict__)
    for master in design.masters.values():
        total += add(master) + add(master.__dict__)
        total += add(master.pins) + add(master.name)
        for pin_name, pin in master.pins.items():
            total += add(pin_name) + add(pin)
    for inst in design.instances:
        total += add(inst) + add(inst.name) + add(inst.pin_nets)
        total += add(inst.index) + add(inst.x) + add(inst.y)
        for pin_name in inst.pin_nets:
            total += add(pin_name)
    for net in design.nets:
        total += add(net) + add(net.name) + add(net.sinks) + add(net.index)
        if net.driver is not None:
            total += add(net.driver)
        for ref in net.sinks:
            total += add(ref)
    total += add(design._instance_by_name) + add(design._net_by_name)
    return total


def _measure_object(size: int) -> dict:
    from repro.designs.generator import generate_arrays
    from repro.netlist.hypergraph import Hypergraph
    from repro.place.hpwl import net_hpwl
    from repro.sta.graph import TimingGraph

    arrays = generate_arrays(_spec(size))
    t0 = time.perf_counter()
    design = arrays.to_design()
    t_gen = time.perf_counter() - t0
    del arrays
    design._netlist_arrays = None
    gc.collect()

    t0 = time.perf_counter()
    hg = Hypergraph.from_design(design, use_arrays=False)
    t_hyper = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph = TimingGraph(design, use_arrays=False)
    t_sta = time.perf_counter() - t0

    t0 = time.perf_counter()
    wl = sum(net_hpwl(design, net) for net in design.nets if not net.is_clock)
    t_hpwl = time.perf_counter() - t0

    deep = _deep_bytes(design)
    return {
        "repr": "object",
        "instances": design.num_instances,
        "nets": design.num_nets,
        "pins": sum(net.degree for net in design.nets),
        "sta_nodes": graph.num_nodes,
        "hypergraph_edges": hg.num_edges,
        "hpwl": wl,
        "bytes": deep,
        "bytes_per_instance": deep / size,
        "gen_s": t_gen,
        "hypergraph_s": t_hyper,
        "sta_s": t_sta,
        "hpwl_s": t_hpwl,
        "build_s": t_hyper + t_sta,
        "peak_rss_mb": _peak_rss_mb(),
    }


# ----------------------------------------------------------------------
# Parent driver
# ----------------------------------------------------------------------
def _run_cell(size: int, repr_name: str, timeout: int) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, __file__, "--child", repr_name, "--child-size", str(size)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=str(REPO_ROOT),
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"bench child {repr_name}@{size} failed:\n{out.stdout}\n{out.stderr}"
        )
    return json.loads(out.stdout.splitlines()[-1])


def _check_gates(results: dict, args) -> list:
    failures = []
    gate = results["cells"].get(str(args.gate_size), {})
    arrays = gate.get("arrays")
    obj = gate.get("object")
    if arrays is None:
        return [f"gate size {args.gate_size} was not measured"]
    if arrays["gen_s"] + arrays["build_s"] > args.max_build_wall:
        failures.append(
            f"arrays gen+build {arrays['gen_s'] + arrays['build_s']:.2f}s "
            f"exceeds {args.max_build_wall:.1f}s at {args.gate_size}"
        )
    if arrays["peak_rss_mb"] > args.max_rss_mb:
        failures.append(
            f"arrays peak RSS {arrays['peak_rss_mb']:.0f}MB exceeds "
            f"{args.max_rss_mb:.0f}MB at {args.gate_size}"
        )
    if obj is not None:
        bytes_ratio = obj["bytes_per_instance"] / arrays["bytes_per_instance"]
        build_ratio = obj["build_s"] / arrays["build_s"]
        results["bytes_ratio"] = bytes_ratio
        results["build_ratio"] = build_ratio
        if bytes_ratio < args.min_bytes_ratio:
            failures.append(
                f"bytes/instance ratio {bytes_ratio:.2f}x below "
                f"{args.min_bytes_ratio:.1f}x"
            )
        if build_ratio < args.min_build_ratio:
            failures.append(
                f"hypergraph+STA build ratio {build_ratio:.2f}x below "
                f"{args.min_build_ratio:.1f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", choices=("arrays", "object"))
    parser.add_argument("--child-size", type=int)
    parser.add_argument("--sizes", default=",".join(str(s) for s in DEFAULT_SIZES))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"measure the gate size ({GATE_SIZE}) only",
    )
    parser.add_argument("--gate", action="store_true", help="enforce thresholds")
    parser.add_argument("--gate-size", type=int, default=GATE_SIZE)
    parser.add_argument(
        "--object-max",
        type=int,
        default=200_000,
        help="skip the object representation above this size",
    )
    parser.add_argument("--min-bytes-ratio", type=float, default=5.0)
    parser.add_argument("--min-build-ratio", type=float, default=3.0)
    parser.add_argument("--max-build-wall", type=float, default=20.0)
    parser.add_argument("--max-rss-mb", type=float, default=2048.0)
    parser.add_argument("--timeout", type=int, default=900)
    parser.add_argument(
        "--json",
        default=str(REPO_ROOT / "benchmarks" / "results" / "BENCH_scale.json"),
    )
    args = parser.parse_args(argv)

    if args.child:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        fn = _measure_arrays if args.child == "arrays" else _measure_object
        print(json.dumps(fn(args.child_size)))
        return 0

    sizes = (
        [args.gate_size]
        if args.smoke
        else sorted({int(s) for s in args.sizes.split(",")})
    )
    results = {"sizes": sizes, "cells": {}}
    for size in sizes:
        cell = {}
        cell["arrays"] = _run_cell(size, "arrays", args.timeout)
        if size <= args.object_max:
            cell["object"] = _run_cell(size, "object", args.timeout)
        results["cells"][str(size)] = cell
        a = cell["arrays"]
        line = (
            f"{size:>9}  arrays: gen {a['gen_s']:6.2f}s  "
            f"hyper {a['hypergraph_s']:6.2f}s  sta {a['sta_s']:6.2f}s  "
            f"{a['bytes_per_instance']:6.1f} B/inst  "
            f"peak {a['peak_rss_mb']:7.1f}MB"
        )
        print(line)
        if "object" in cell:
            o = cell["object"]
            print(
                f"{'':>9}  object: gen {o['gen_s']:6.2f}s  "
                f"hyper {o['hypergraph_s']:6.2f}s  sta {o['sta_s']:6.2f}s  "
                f"{o['bytes_per_instance']:6.1f} B/inst  "
                f"peak {o['peak_rss_mb']:7.1f}MB"
            )

    failures = _check_gates(results, args)
    results["gates"] = {
        "enforced": bool(args.gate),
        "gate_size": args.gate_size,
        "failures": failures,
    }
    if "bytes_ratio" in results:
        print(
            f"\n@{args.gate_size}: bytes ratio {results['bytes_ratio']:.2f}x "
            f"(gate >= {args.min_bytes_ratio:.1f}x), build ratio "
            f"{results['build_ratio']:.2f}x (gate >= {args.min_build_ratio:.1f}x)"
        )

    out = Path(args.json)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1 if args.gate else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
