"""Extension: second design enablement (ASAP7-lite).

The paper's conclusion pursues confirmation of the methods' benefits on
additional design enablements.  This bench runs default vs. our flow on
an ASAP7-lite (7 nm-class) design and checks the Table 2/3 shape
transfers: similar HPWL, faster clustering+seeded placement, better
TNS.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig, default_flow
from repro.designs import DesignSpec, generate_design

SPECS = {
    "jpeg-a7": DesignSpec(
        name="jpeg-a7",
        num_instances=3000,
        seq_fraction=0.14,
        logic_depth=14,
        hierarchy_depth=3,
        hierarchy_branching=4,
        clock_period=0.28,
        high_fanout_nets=3,
        enablement="asap7",
        seed=102,
    ),
    "ariane-a7": DesignSpec(
        name="ariane-a7",
        num_instances=6000,
        seq_fraction=0.16,
        logic_depth=32,
        hierarchy_depth=4,
        hierarchy_branching=4,
        clock_period=0.62,
        high_fanout_nets=4,
        enablement="asap7",
        seed=103,
    ),
}
_RESULTS = {}


def _run(name):
    spec = SPECS[name]
    base = default_flow(generate_design(spec)).metrics
    ours = (
        ClusteredPlacementFlow(FlowConfig(tool="openroad"))
        .run(generate_design(spec))
        .metrics
    )
    return {"default": base, "ours": ours}


@pytest.mark.parametrize("name", list(SPECS))
def test_enablement_design(benchmark, name):
    result = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    assert result["ours"].hpwl / result["default"].hpwl < 1.15


def test_enablement_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in SPECS:
        r = _RESULTS.get(name)
        if r is None:
            continue
        base, ours = r["default"], r["ours"]
        for label, m in (("Default", base), ("Ours", ours)):
            rows.append(
                [
                    name if label == "Default" else "",
                    label,
                    f"{m.rwl / base.rwl:.3f}",
                    f"{m.wns * 1e3:.0f}",
                    f"{m.tns:.3f}",
                    f"{m.power:.3f}",
                    f"{m.placement_runtime / base.placement_runtime:.2f}",
                ]
            )
    text = format_table(
        "Extension: ASAP7-lite enablement (rWL/CPU normalised to Default)",
        ["Design", "Flow", "rWL", "WNS", "TNS", "Power", "CPU"],
        rows,
        note=(
            "Same flow, 7nm-class library: the paper's conclusion plans "
            "validation on additional enablements."
        ),
    )
    publish("ext_enablement", text)
    assert rows
