"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures.  Results are
printed (visible with ``pytest -s`` or on the benchmark summary) and
written to ``benchmarks/results/<name>.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` leaves the reproduced tables on
disk next to the code that generated them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def publish(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def bench_scale() -> float:
    """Global scale knob: REPRO_BENCH_SCALE shrinks/extends the runs
    (1.0 = defaults documented in EXPERIMENTS.md)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
