"""Extension: PPA-aware clustering in two-tier 3D placement (the
paper's stated future work).

Runs the two-tier flow on ariane and BlackParrot, with the PPA-aware
clustering vs. plain FC driving the tier assignment, and reports the
3D/2D wirelength ratio, via counts and footprint halving — the classic
3D benefit (WL -> ~1/sqrt(2)) traded against vias.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core.ppa_clustering import PPAClusteringConfig
from repro.core.three_d import three_d_placement_flow
from repro.designs import load_benchmark

DESIGNS = ["ariane", "BlackParrot"]
_RESULTS = {}


def _run(name):
    out = {}
    for label, config in (
        ("PPA-aware", PPAClusteringConfig()),
        (
            "plain FC",
            PPAClusteringConfig(
                use_hierarchy=False, use_timing=False, use_switching=False
            ),
        ),
    ):
        design = load_benchmark(name, use_cache=False)
        out[label] = three_d_placement_flow(design, clustering_config=config)
    return out


@pytest.mark.parametrize("name", DESIGNS)
def test_3d_design(benchmark, name):
    result = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    for record in result.values():
        assert record.wirelength_ratio < 1.0  # 3D must beat 2D WL


def test_3d_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DESIGNS:
        result = _RESULTS.get(name)
        if result is None:
            continue
        for label in ("PPA-aware", "plain FC"):
            r = result[label]
            rows.append(
                [
                    name if label == "PPA-aware" else "",
                    label,
                    f"{r.wirelength_ratio:.3f}",
                    r.via_count,
                    f"{r.footprint_3d / r.footprint_2d:.2f}",
                    r.num_clusters,
                ]
            )
    text = format_table(
        "Extension: two-tier 3D placement (WL normalised to the 2D flow)",
        ["Design", "Clustering", "3D/2D WL", "Vias", "Footprint", "Clusters"],
        rows,
        note=(
            "Face-to-face two-tier model: half footprint, density "
            "budget 2.0, one via per tier-crossing net.  The paper "
            "lists 3D placement as future work."
        ),
    )
    publish("ext_3d", text)
    assert rows
