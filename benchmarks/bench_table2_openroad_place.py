"""Table 2: post-place HPWL and CPU with OpenROAD-mode flows.

For each of the six designs: the default flat flow, the blob placement
[9] baseline (Louvain + 4x IO weights) and our PPA-aware clustered
flow, all stopped after global placement.  HPWL and CPU are normalised
to the default flow, exactly as in the paper.  The paper's "NA" for
[9] on MegaBoom / MemPool Group (Louvain clustering costing ~2x the
placement runtime) is reproduced by reporting those entries with their
measured — clearly unfavourable — ratios instead of running forever.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig, blob_placement_flow, default_flow
from repro.designs import BENCHMARKS, load_benchmark

DESIGNS = list(BENCHMARKS)
_RESULTS = {}


def _run_design(name):
    d_default = load_benchmark(name, use_cache=False)
    base = default_flow(d_default, run_routing=False)
    base_hpwl = base.metrics.hpwl
    base_cpu = base.metrics.placement_runtime

    d_blob = load_benchmark(name, use_cache=False)
    blob = blob_placement_flow(d_blob)

    d_ours = load_benchmark(name, use_cache=False)
    ours = ClusteredPlacementFlow(
        FlowConfig(tool="openroad", run_routing=False)
    ).run(d_ours)

    return {
        "blob_hpwl": blob.metrics.hpwl / base_hpwl,
        "blob_cpu": blob.metrics.placement_runtime / base_cpu,
        "ours_hpwl": ours.metrics.hpwl / base_hpwl,
        "ours_cpu": ours.metrics.placement_runtime / base_cpu,
    }


@pytest.mark.parametrize("name", DESIGNS)
def test_table2_design(benchmark, name):
    result = benchmark.pedantic(_run_design, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    # The paper's headline: similar HPWL (within ~12%).
    assert result["ours_hpwl"] < 1.12


def test_table2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    cpu_ratios = []
    for name in DESIGNS:
        r = _RESULTS.get(name)
        if r is None:
            continue
        rows.append(
            [
                name,
                f'{r["blob_hpwl"]:.3f}',
                f'{r["blob_cpu"]:.3f}',
                f'{r["ours_hpwl"]:.3f}',
                f'{r["ours_cpu"]:.3f}',
            ]
        )
        cpu_ratios.append(r["ours_cpu"])
    text = format_table(
        "Table 2: Post-place results, OpenROAD mode "
        "(normalised to the default flow)",
        ["Design", "[9] HPWL", "[9] CPU", "Ours HPWL", "Ours CPU"],
        rows,
        note=(
            "CPU = clustering + seeded placement over default placement "
            "(V-P&R reported separately; ML-accelerated in the paper). "
            f"Mean ours CPU ratio: {sum(cpu_ratios)/len(cpu_ratios):.3f}"
            if cpu_ratios
            else ""
        ),
    )
    publish("table2_openroad_place", text)
    assert rows
