"""Table 5: PPA-relevance of the clustering method (ablation).

Post-route PPA with Leiden, plain multilevel FC (MFC, TritonPart's
default) and our PPA-aware clustering inside the same overall flow, on
aes / jpeg / ariane with the OpenROAD-mode seeded placement.  rWL is
normalised to the default flat flow, exactly as the paper does.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig, default_flow
from repro.designs import load_benchmark

DESIGNS = ["aes", "jpeg", "ariane"]
METHODS = [("Leiden", "leiden"), ("MFC", "mfc"), ("Ours", "ppa")]
_RESULTS = {}


def _run_design(name):
    d0 = load_benchmark(name, use_cache=False)
    base = default_flow(d0).metrics
    out = {"__default__": base}
    for label, method in METHODS:
        d = load_benchmark(name, use_cache=False)
        flow = ClusteredPlacementFlow(
            FlowConfig(tool="openroad", clustering=method)
        )
        out[label] = flow.run(d).metrics
    return out


@pytest.mark.parametrize("name", DESIGNS)
def test_table5_design(benchmark, name):
    result = benchmark.pedantic(_run_design, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result


def test_table5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    wins = 0
    comparisons = 0
    for name in DESIGNS:
        r = _RESULTS.get(name)
        if r is None:
            continue
        base = r["__default__"]
        for label, _method in METHODS:
            m = r[label]
            rows.append(
                [
                    name if label == METHODS[0][0] else "",
                    label,
                    f"{m.rwl / base.rwl:.3f}",
                    f"{m.wns * 1e3:.0f}",
                    f"{m.tns:.2f}",
                    f"{m.power:.3f}",
                ]
            )
        # Our clustering should beat at least one baseline on TNS per
        # design (the paper shows it beats both on all three designs).
        ours = r["Ours"]
        for label in ("Leiden", "MFC"):
            comparisons += 1
            if ours.tns >= r[label].tns:
                wins += 1
    text = format_table(
        "Table 5: Clustering-method ablation, OpenROAD mode "
        "(rWL normalised to the default flat flow)",
        ["Design", "Method", "rWL", "WNS", "TNS", "Power"],
        rows,
        note=f"Ours wins TNS in {wins}/{comparisons} comparisons.",
    )
    publish("table5_clustering_ablation", text)
    assert rows
    assert wins >= comparisons / 2
