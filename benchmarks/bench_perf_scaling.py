"""V-P&R engine scaling: sweep wall-clock vs ``jobs`` + cache rates.

Times the full shape-selection sweep at jobs = 1, 2, 4 on one design
and reports the sub-netlist / RSMT cache hit rates the engine achieved.
The determinism contract (tests/core/test_vpr_parallel.py) means every
row selects identical shapes — only wall-clock may differ, so the table
is a pure throughput measurement.

On single-core containers the parallel rows mostly measure pool
overhead; the interesting number there is the serial row against the
pre-optimisation baseline (see README "Performance").

Env knobs: ``REPRO_PERF_DESIGN`` picks the benchmark (default jpeg);
``REPRO_BENCH_SCALE`` < 1 shrinks the swept cluster count.
"""

import os
import time

from benchmarks._tables import bench_scale, format_table, publish
from repro import perf
from repro.core.ppa_clustering import PPAClusteringConfig, ppa_aware_clustering
from repro.core.vpr import VPRConfig, VPRShapeSelector, _fork_available
from repro.db.database import DesignDatabase
from repro.designs import load_benchmark
from repro.route.steiner import clear_rsmt_cache

JOB_LEVELS = (1, 2, 4)


def _clusters():
    design = load_benchmark(
        os.environ.get("REPRO_PERF_DESIGN", "jpeg"), use_cache=False
    )
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(
        db, PPAClusteringConfig(target_cluster_size=200)
    )
    return design, clustering.members()


def _timed_select(design, members, jobs, max_clusters, warm=False):
    config = VPRConfig(
        min_cluster_instances=100,
        placer_iterations=5,
        max_vpr_clusters=max_clusters,
        jobs=jobs,
    )
    if not warm:
        clear_rsmt_cache()
    perf.enable()
    perf.reset()
    start = time.perf_counter()
    selection = VPRShapeSelector(config).select(design, members)
    wall = time.perf_counter() - start
    report = perf.report()
    perf.disable()
    perf.reset()
    return selection, wall, report


def test_perf_scaling(benchmark):
    design, members = benchmark.pedantic(_clusters, rounds=1, iterations=1)
    max_clusters = max(1, int(6 * bench_scale()))

    rows = []
    reference = None
    # The warm row re-runs jobs=1 without clearing caches and must come
    # right after the cold serial run: parallel runs compute RSMT in
    # worker processes, so they never warm the parent's cache.
    runs = [(1, False), (1, True)] + [(j, False) for j in JOB_LEVELS if j > 1]
    for jobs, warm in runs:
        label = f"{jobs} (warm)" if warm else str(jobs)
        if jobs > 1 and not _fork_available():
            rows.append([label, "n/a", "n/a", "n/a", "fork unavailable"])
            continue
        selection, wall, report = _timed_select(
            design, members, jobs, max_clusters, warm=warm
        )
        shapes = {
            s.cluster_id: (s.best.aspect_ratio, s.best.utilization)
            for s in selection.sweeps
        }
        if reference is None:
            reference = (wall, shapes)
        assert shapes == reference[1], "jobs/cache must not change selection"
        sub_rate = report.cache_rate("vpr.subnetlist")
        rsmt_rate = report.cache_rate("steiner.rsmt")
        rows.append(
            [
                label,
                f"{wall:.2f}",
                f"{reference[0] / wall:.2f}x",
                f"{100 * sub_rate:.0f}%" if sub_rate is not None else "-",
                f"{100 * rsmt_rate:.0f}%" if rsmt_rate is not None else "-",
            ]
        )

    text = format_table(
        f"V-P&R engine scaling ({design.name}, {max_clusters} clusters x 20 shapes)",
        ["jobs", "wall [s]", "vs jobs=1", "subnet cache", "RSMT cache"],
        rows,
        note=(
            "Identical shapes at every jobs level (asserted). Parallel "
            "rows fan (cluster, candidate) items over a fork pool; on "
            f"this host os.cpu_count()={os.cpu_count()}. The sub-netlist "
            "cache is per-framework, so it reads 0% here (each row builds "
            "a fresh selector); it pays off when one framework re-induces "
            "a cluster (ML labelling, L-shape sweeps)."
        ),
    )
    publish("perf_scaling", text)
    assert rows
