"""Figure 5: hyperparameter validation.

Sweeps multipliers (1..6, step 1) on each of alpha, beta, gamma, mu —
one at a time, others at their defaults — over aes / jpeg / ariane,
recording post-place HPWL normalised to the default hyperparameter
setting (the paper's score).  The expected outcome (Figure 5) is that
the default setting is a reasonable choice: normalised scores stay
near 1.0 with no multiplier dominating.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.costs import CostConfig
from repro.core.ppa_clustering import PPAClusteringConfig
from repro.designs import load_benchmark

DESIGNS = ["aes", "jpeg", "ariane"]
PARAMS = ["alpha", "beta", "gamma", "mu"]
MULTIPLIERS = [1, 2, 3, 4, 5, 6]
_RESULTS = {}


def _run_flow(name, cost):
    design = load_benchmark(name, use_cache=False)
    flow = ClusteredPlacementFlow(
        FlowConfig(
            tool="openroad",
            run_routing=False,
            clustering_config=PPAClusteringConfig(cost=cost),
        )
    )
    return flow.run(design).metrics.hpwl


def _sweep_param(param):
    defaults = CostConfig()
    out = {}
    for name in DESIGNS:
        baseline = _run_flow(name, CostConfig())
        series = []
        for multiplier in MULTIPLIERS:
            kwargs = {
                "alpha": defaults.alpha,
                "beta": defaults.beta,
                "gamma": defaults.gamma,
                "mu": defaults.mu,
            }
            kwargs[param] = kwargs[param] * multiplier
            hpwl = _run_flow(name, CostConfig(**kwargs))
            series.append(hpwl / baseline)
        out[name] = series
    return out


@pytest.mark.parametrize("param", PARAMS)
def test_fig5_param(benchmark, param):
    result = benchmark.pedantic(_sweep_param, args=(param,), rounds=1, iterations=1)
    _RESULTS[param] = result
    # The default setting is a reasonable choice: no multiplier wins
    # by a large margin on average.
    for series in result.values():
        assert min(series) > 0.85


def test_fig5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for param in PARAMS:
        result = _RESULTS.get(param)
        if result is None:
            continue
        for name in DESIGNS:
            series = result[name]
            rows.append(
                [param if name == DESIGNS[0] else "", name]
                + [f"{v:.3f}" for v in series]
            )
    text = format_table(
        "Figure 5: hyperparameter sweep "
        "(post-place HPWL normalised to default setting)",
        ["Param", "Design"] + [f"x{m}" for m in MULTIPLIERS],
        rows,
        note="Values near 1.0 across multipliers: the default "
        "(alpha=beta=gamma=1, mu=2) is a reasonable choice (paper Fig. 5).",
    )
    publish("fig5_hyperparameters", text)
    assert rows
