"""Ablation of the flow's individual design choices (DESIGN.md §5).

Toggles, one at a time, on jpeg with the OpenROAD-mode flow:

* the 4x IO-net weighting of the clustered netlist (line 22, [9]),
* the timing cost term (beta = 0),
* the switching cost term (gamma = 0),
* the hierarchy grouping guides (Algorithm 2 off),
* soft vs hard grouping semantics,
* criticality-weighted placement nets (the timing-driven-placement
  stand-in documented in DESIGN.md).

Reports post-route rWL / WNS / TNS / Power against the full flow.
"""

import dataclasses

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.costs import CostConfig
from repro.core.ppa_clustering import PPAClusteringConfig
from repro.core.seeded import IO_NET_WEIGHT
from repro.designs import load_benchmark

DESIGN = "jpeg"
_RESULTS = {}


def _run(label, config, io_weight_override=None):
    import repro.core.seeded as seeded_mod

    design = load_benchmark(DESIGN, use_cache=False)
    if io_weight_override is not None:
        original = seeded_mod.IO_NET_WEIGHT
        seeded_mod.IO_NET_WEIGHT = io_weight_override
        # flow.py imported the constant by value; patch there too.
        import repro.core.flow as flow_mod

        flow_original = flow_mod.IO_NET_WEIGHT
        flow_mod.IO_NET_WEIGHT = io_weight_override
        try:
            metrics = ClusteredPlacementFlow(config).run(design).metrics
        finally:
            seeded_mod.IO_NET_WEIGHT = original
            flow_mod.IO_NET_WEIGHT = flow_original
    else:
        metrics = ClusteredPlacementFlow(config).run(design).metrics
    return metrics


VARIANTS = [
    ("full flow", FlowConfig(tool="openroad"), None),
    ("no IO x4", FlowConfig(tool="openroad"), 1.0),
    (
        "no timing cost",
        FlowConfig(
            tool="openroad",
            clustering_config=PPAClusteringConfig(use_timing=False),
        ),
        None,
    ),
    (
        "no switching cost",
        FlowConfig(
            tool="openroad",
            clustering_config=PPAClusteringConfig(use_switching=False),
        ),
        None,
    ),
    (
        "no hierarchy guides",
        FlowConfig(
            tool="openroad",
            clustering_config=PPAClusteringConfig(use_hierarchy=False),
        ),
        None,
    ),
    (
        "no criticality weights",
        FlowConfig(tool="openroad", timing_weighted_cluster_nets=False),
        None,
    ),
]


@pytest.mark.parametrize("label,config,io_weight", VARIANTS)
def test_ablation_variant(benchmark, label, config, io_weight):
    metrics = benchmark.pedantic(
        _run, args=(label, config, io_weight), rounds=1, iterations=1
    )
    _RESULTS[label] = metrics


def test_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = _RESULTS.get("full flow")
    if full is None:
        pytest.skip("variant stage did not run")
    rows = []
    for label, _cfg, _io in VARIANTS:
        m = _RESULTS.get(label)
        if m is None:
            continue
        rows.append(
            [
                label,
                f"{m.rwl / full.rwl:.3f}",
                f"{m.wns * 1e3:.0f}",
                f"{m.tns:.2f}",
                f"{m.power:.3f}",
            ]
        )
    text = format_table(
        f"Flow-feature ablation on {DESIGN} "
        "(rWL normalised to the full flow)",
        ["Variant", "rWL", "WNS", "TNS", "Power"],
        rows,
        note="Each row disables exactly one design choice of Algorithm 1.",
    )
    publish("ablation_flow_features", text)
    assert rows
