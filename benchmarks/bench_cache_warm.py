"""Cross-run cache benchmark: cold vs warm V-P&R sweep -> BENCH_cache.json.

Runs the clustered flow on one benchmark three ways at a fixed seed:

* ``nocache`` — no evaluation cache at all (the pre-cache baseline);
* ``cold``    — a fresh cache directory per repeat: every candidate
  evaluation is computed and stored (measures bookkeeping overhead);
* ``warm``    — the cache directory the cold run populated: every
  candidate evaluation is served from disk.

Recorded per mode: the V-P&R sweep's stage wall (the cached stage —
clustering, STA, placement are never cached), the flow's identity
hashes (cluster assignment, selected shapes, flat placement, QoR) and
the ``vpr.cache.*`` counters.  The headline numbers:

* ``warm_speedup``  = cold sweep wall / warm sweep wall (gate: >= 5x);
* ``cold_overhead`` = cold sweep wall / nocache sweep wall - 1 (the
  digest + key + atomic-write bookkeeping; gate: <= 5%);
* identity — warm results must be byte-identical to cold and to the
  cache-free baseline (all four hashes).

Usage::

    python benchmarks/bench_cache_warm.py --design aes \
        --json benchmarks/results/BENCH_cache.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))

from benchmarks.bench_flow_e2e import run_design  # noqa: E402

SCHEMA = "repro.bench_cache/1"

#: Acceptance gates (recorded in the JSON next to the measurements).
MIN_WARM_SPEEDUP = 5.0
MAX_COLD_OVERHEAD = 0.05

_CACHE_COUNTERS = (
    "vpr.cache.hit",
    "vpr.cache.miss",
    "vpr.cache.store",
    "vpr.cache.evict",
)


def _sweep_wall(record: Dict[str, Any]) -> float:
    return float(record["stages"].get("vpr", 0.0))


def _mode_summary(record: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "sweep_wall_s": _sweep_wall(record),
        "wall_total_s": float(record["wall_total"]),
        "hashes": record["hashes"],
        "cache_counters": {
            k: record["counters"].get(k, 0) for k in _CACHE_COUNTERS
        },
    }


def run_modes(
    design: str, seed: int, jobs: int, repeats: int
) -> Dict[str, Any]:
    """Measure nocache / cold / warm; best-of-``repeats`` sweep walls."""
    nocache = run_design(design, seed=seed, repeats=repeats, jobs=jobs)

    scratch = tempfile.mkdtemp(prefix="bench_cache_")
    try:
        # Cold: a fresh store per repeat so no repeat ever hits.
        cold: Optional[Dict[str, Any]] = None
        for rep in range(max(1, repeats)):
            directory = os.path.join(scratch, f"cold{rep}")
            record = run_design(
                design, seed=seed, repeats=1, jobs=jobs, cache_dir=directory
            )
            if cold is None or _sweep_wall(record) < _sweep_wall(cold):
                cold = record
        assert cold is not None
        if cold["counters"].get("vpr.cache.hit", 0):
            raise AssertionError("cold run hit the cache")
        if not cold["counters"].get("vpr.cache.store", 0):
            raise AssertionError("cold run stored nothing")

        # Warm: every repeat reads the store the last cold run wrote.
        warm_dir = os.path.join(scratch, f"cold{max(1, repeats) - 1}")
        warm = run_design(
            design, seed=seed, repeats=repeats, jobs=jobs, cache_dir=warm_dir
        )
        if not warm["counters"].get("vpr.cache.hit", 0):
            raise AssertionError("warm run never hit the cache")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    for label, record in (("cold", cold), ("warm", warm)):
        if record["hashes"] != nocache["hashes"]:
            raise AssertionError(
                f"{label} run diverged from the cache-free baseline: "
                f"{record['hashes']} vs {nocache['hashes']}"
            )

    cold_wall = _sweep_wall(cold)
    warm_wall = _sweep_wall(warm)
    nocache_wall = _sweep_wall(nocache)
    return {
        "design": design,
        "seed": seed,
        "jobs": jobs,
        "repeats": repeats,
        "nocache": _mode_summary(nocache),
        "cold": _mode_summary(cold),
        "warm": _mode_summary(warm),
        "warm_speedup": round(cold_wall / max(warm_wall, 1e-9), 3),
        "cold_overhead": round(cold_wall / max(nocache_wall, 1e-9) - 1.0, 4),
        "identical_hashes": True,  # asserted above
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", default="aes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N sweep walls (cold gets a fresh store per repeat)",
    )
    parser.add_argument(
        "--json",
        default="benchmarks/results/BENCH_cache.json",
        metavar="PATH",
    )
    parser.add_argument(
        "--no-gates",
        action="store_true",
        help="record measurements without enforcing the speedup/overhead gates",
    )
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    result = run_modes(args.design, args.seed, args.jobs, args.repeats)
    result["schema"] = SCHEMA
    result["gates"] = {
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "max_cold_overhead": MAX_COLD_OVERHEAD,
    }

    directory = os.path.dirname(args.json)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(args.json, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"{result['design']}: sweep cold={result['cold']['sweep_wall_s']:.3f}s "
        f"warm={result['warm']['sweep_wall_s']:.3f}s "
        f"nocache={result['nocache']['sweep_wall_s']:.3f}s"
    )
    print(
        f"warm speedup {result['warm_speedup']:.1f}x, "
        f"cold overhead {result['cold_overhead'] * 100:+.1f}%, "
        f"hashes identical across all modes"
    )
    print(f"wrote {args.json} ({time.perf_counter() - t0:.1f}s total)")

    if not args.no_gates:
        if result["warm_speedup"] < MIN_WARM_SPEEDUP:
            print(
                f"GATE FAILED: warm speedup {result['warm_speedup']:.2f}x "
                f"< {MIN_WARM_SPEEDUP}x"
            )
            return 1
        if result["cold_overhead"] > MAX_COLD_OVERHEAD:
            print(
                f"GATE FAILED: cold overhead "
                f"{result['cold_overhead'] * 100:.1f}% "
                f"> {MAX_COLD_OVERHEAD * 100:.0f}%"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
