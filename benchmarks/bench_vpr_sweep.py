"""Figure 3 / design-choice ablations of the V-P&R framework.

Regenerates the per-cluster cost surface over the 20 shape candidates
(the data behind Figure 3's selection step), and ablates two of the
paper's fixed hyperparameters: the congestion weight delta (0.01) and
the Congestion Cost percentile X (10), plus the 200-instance
eligibility bound.
"""

import numpy as np
import pytest

from benchmarks._tables import format_table, publish
from repro.core.ppa_clustering import PPAClusteringConfig, ppa_aware_clustering
from repro.core.vpr import VPRConfig, VPRFramework
from repro.db.database import DesignDatabase
from repro.designs import load_benchmark

_STATE = {}


def _sweep():
    design = load_benchmark("jpeg", use_cache=False)
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(
        db, PPAClusteringConfig(target_cluster_size=200)
    )
    members = clustering.members()
    config = VPRConfig(min_cluster_instances=100, placer_iterations=5)
    framework = VPRFramework(config)
    eligible = framework.eligible_clusters(members)
    cluster = eligible[0]
    sweep = framework.sweep_cluster(design, members[cluster], cluster_id=cluster)
    return design, members, cluster, config, sweep


def test_vpr_cost_surface(benchmark):
    design, members, cluster, config, sweep = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    _STATE.update(
        design=design, members=members, cluster=cluster, config=config, sweep=sweep
    )
    rows = []
    for ev in sweep.evaluations:
        rows.append(
            [
                f"{ev.candidate.aspect_ratio:.2f}",
                f"{ev.candidate.utilization:.2f}",
                f"{ev.hpwl_cost:.4f}",
                f"{ev.congestion_cost:.4f}",
                f"{ev.total(config.delta):.4f}",
                "<-- best" if ev.candidate == sweep.best else "",
            ]
        )
    text = format_table(
        f"Figure 3: V-P&R cost surface (jpeg, cluster {cluster}, "
        f"{len(members[cluster])} instances)",
        ["AR", "Util", "Cost_HPWL", "Cost_Cong", "Total", ""],
        rows,
        note=f"Chosen shape: {sweep.best}; sweep runtime {sweep.runtime:.2f}s.",
    )
    publish("vpr_cost_surface", text)
    totals = [ev.total(config.delta) for ev in sweep.evaluations]
    assert max(totals) > min(totals), "shapes must be distinguishable"


def test_vpr_delta_ablation(benchmark):
    sweep = _STATE.get("sweep")
    if sweep is None:
        pytest.skip("sweep stage did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for delta in (0.0, 0.01, 0.1, 1.0):
        best = min(sweep.evaluations, key=lambda e: e.total(delta))
        rows.append(
            [f"{delta:.2f}", str(best.candidate), f"{best.total(delta):.4f}"]
        )
    text = format_table(
        "Ablation: congestion weight delta in Total Cost",
        ["delta", "Chosen shape", "Total Cost"],
        rows,
        note="The paper fixes delta = 0.01 following MAPLE [13].",
    )
    publish("vpr_delta_ablation", text)
    assert rows


def test_vpr_eligibility_bound(benchmark):
    members = _STATE.get("members")
    if members is None:
        pytest.skip("sweep stage did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for bound in (50, 100, 200, 400):
        framework = VPRFramework(VPRConfig(min_cluster_instances=bound))
        eligible = framework.eligible_clusters(members)
        swept_insts = sum(len(members[c]) for c in eligible)
        total = sum(len(m) for m in members)
        rows.append(
            [bound, len(eligible), f"{100 * swept_insts / total:.0f}%"]
        )
    text = format_table(
        "Ablation: V-P&R eligibility bound (paper default: 200 instances)",
        ["Min instances", "Eligible clusters", "Instances covered"],
        rows,
        note="Footnote 3: 200 gave the best PPA in the paper's tuning.",
    )
    publish("vpr_eligibility", text)
    assert rows
