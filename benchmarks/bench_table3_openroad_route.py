"""Table 3: post-route PPA with OpenROAD-mode flows.

Default vs ours through CTS + global routing + post-route STA/power on
aes / jpeg / ariane / BlackParrot (the paper excludes MegaBoom and
MemPool Group because OpenROAD fails to route them; we keep the same
design set).  rWL is normalised to the default flow; WNS in ps, TNS in
ns, Power in mW.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig, default_flow
from repro.designs import load_benchmark

DESIGNS = ["aes", "jpeg", "ariane", "BlackParrot"]
_RESULTS = {}


def _run_design(name):
    d1 = load_benchmark(name, use_cache=False)
    base = default_flow(d1).metrics
    d2 = load_benchmark(name, use_cache=False)
    ours = ClusteredPlacementFlow(FlowConfig(tool="openroad")).run(d2).metrics
    return {"default": base, "ours": ours}


@pytest.mark.parametrize("name", DESIGNS)
def test_table3_design(benchmark, name):
    result = benchmark.pedantic(_run_design, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    assert result["ours"].rwl / result["default"].rwl < 1.15


def test_table3_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    tns_improvements = []
    for name in DESIGNS:
        r = _RESULTS.get(name)
        if r is None:
            continue
        base, ours = r["default"], r["ours"]
        for label, m in (("Default", base), ("Ours", ours)):
            rows.append(
                [
                    name if label == "Default" else "",
                    label,
                    f"{m.rwl / base.rwl:.3f}",
                    f"{m.wns * 1e3:.0f}",
                    f"{m.tns:.2f}",
                    f"{m.power:.3f}",
                ]
            )
        if base.tns < 0:
            tns_improvements.append(1.0 - ours.tns / base.tns)
    note = (
        "WNS in ps, TNS in ns, Power in mW; rWL normalised to Default. "
        + (
            f"Mean TNS improvement: {100 * sum(tns_improvements) / len(tns_improvements):.0f}%"
            if tns_improvements
            else ""
        )
    )
    text = format_table(
        "Table 3: Post-route results, OpenROAD mode",
        ["Design", "Flow", "rWL", "WNS", "TNS", "Power"],
        rows,
        note=note,
    )
    publish("table3_openroad_route", text)
    assert rows
