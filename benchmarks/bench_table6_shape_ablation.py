"""Table 6: cluster-shape ablation (V-P&R vs Random vs Uniform).

The paper compares ML-accelerated V-P&R against random and fixed
(AR = 1.0, util = 0.9) shape assignments on ariane / jpeg / MegaBoom
with Innovus.  Here the V-P&R arm uses the exact framework (the target
the GNN is trained to approximate — its selections define the
acceleration's quality ceiling; bench_gnn_accuracy / bench_ml_speedup
cover the ML approximation itself).  rWL is normalised to the Uniform
arm, as in the paper.
"""

import pytest

from benchmarks._tables import format_table, publish
from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.vpr import (
    RandomShapeSelector,
    UniformShapeSelector,
    VPRConfig,
    VPRShapeSelector,
)
from repro.designs import load_benchmark

DESIGNS = ["ariane", "jpeg", "MegaBoom"]
_RESULTS = {}


def _selectors():
    vpr_config = VPRConfig(min_cluster_instances=100, max_vpr_clusters=8)
    return [
        ("Random", RandomShapeSelector(seed=0)),
        ("Uniform", UniformShapeSelector()),
        ("V-P&R", VPRShapeSelector(vpr_config)),
    ]


SEEDS = (0, 1, 2)


class _Mean:
    """Seed-averaged metric record with the fields the table prints."""

    def __init__(self, metrics):
        self.rwl = sum(m.rwl for m in metrics) / len(metrics)
        self.wns = sum(m.wns for m in metrics) / len(metrics)
        self.tns = sum(m.tns for m in metrics) / len(metrics)
        self.power = sum(m.power for m in metrics) / len(metrics)


def _run_design(name):
    out = {}
    for label, _sel in _selectors():
        runs = []
        for seed in SEEDS:
            design = load_benchmark(name, use_cache=False)
            selector = dict(_selectors())[label]
            flow = ClusteredPlacementFlow(
                FlowConfig(
                    tool="innovus",
                    shape_selector=selector,
                    vpr_config=VPRConfig(
                        min_cluster_instances=100, max_vpr_clusters=8
                    ),
                    seed=seed,
                )
            )
            runs.append(flow.run(design).metrics)
        out[label] = _Mean(runs)
    return out


@pytest.mark.parametrize("name", DESIGNS)
def test_table6_design(benchmark, name):
    result = benchmark.pedantic(_run_design, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result


def test_table6_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in DESIGNS:
        r = _RESULTS.get(name)
        if r is None:
            continue
        uniform_rwl = r["Uniform"].rwl
        for label in ("Random", "Uniform", "V-P&R"):
            m = r[label]
            rows.append(
                [
                    name if label == "Random" else "",
                    label,
                    f"{m.rwl / uniform_rwl:.3f}",
                    f"{m.wns * 1e3:.0f}",
                    f"{m.tns:.2f}",
                    f"{m.power:.3f}",
                ]
            )
    text = format_table(
        "Table 6: Cluster-shape ablation, Innovus mode "
        "(rWL normalised to Uniform)",
        ["Design", "Shape", "rWL", "WNS", "TNS", "Power"],
        rows,
        note=(
            "V-P&R here is the exact framework the GNN approximates; "
            f"metrics averaged over seeds {SEEDS}."
        ),
    )
    publish("table6_shape_ablation", text)
    assert rows
