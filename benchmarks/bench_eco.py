"""ECO delta-path benchmark: cold re-run vs incremental -> BENCH_eco.json.

Measures the PR-10 contract on one generated design:

* ``base``  — a cold clustered flow on the pristine design, writing the
  stage checkpoint and evaluation cache the ECO path consumes;
* ``cold``  — a cold flow on the *edited* design (the pre-ECO answer to
  "one cell changed": rerun everything), best-of-``repeats`` walls;
* ``eco``   — :func:`repro.eco.run_eco` over the base checkpoint with
  the same edit script, best-of-``repeats`` walls.  Each repeat opens a
  fresh session, so the measured wall includes checkpoint hydration —
  the honest CLI-shaped cost, not just the warm ``apply``;
* ``noop``  — an empty edit script, which must reproduce the base
  run's metrics bit-for-bit (it serves the checkpointed QoR).

Gates (recorded in the JSON next to the measurements):

* ``speedup``     = cold wall / eco wall, gate >= 10x for an edit
  touching < 1% of instances;
* ``hpwl_drift``  = |eco HPWL - cold HPWL| / cold HPWL, gate <= 5%
  (the frozen majority constrains the incremental placement, so the
  two answers differ but must stay close);
* ``noop_identical`` — exact metric equality with the base run.

Usage::

    python benchmarks/bench_eco.py --gate \
        --json benchmarks/results/BENCH_eco.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.flow import ClusteredPlacementFlow, FlowConfig  # noqa: E402
from repro.core.ppa_clustering import PPAClusteringConfig  # noqa: E402
from repro.core.shapes import default_candidate_grid  # noqa: E402
from repro.core.vpr import VPRConfig  # noqa: E402
from repro.designs import DesignSpec, generate_design  # noqa: E402
from repro.designs.nangate45 import make_library  # noqa: E402
from repro.eco import apply_edits, parse_edits, run_eco  # noqa: E402

SCHEMA = "repro.bench_eco/1"

#: Acceptance gates (see module docstring).
MIN_SPEEDUP = 10.0
MAX_HPWL_DRIFT = 0.05
MAX_TOUCHED_FRACTION = 0.01

_METRIC_FIELDS = ("hpwl", "rwl", "wns", "tns", "power", "hold_wns", "hold_tns")


def _spec(num_instances: int, seed: int) -> DesignSpec:
    return DesignSpec(
        "eco_bench",
        num_instances,
        clock_period=0.8,
        logic_depth=10,
        hierarchy_depth=3,
        hierarchy_branching=3,
        seed=seed,
    )


def _flow_config(
    checkpoint_dir: Optional[str], cache_dir: Optional[str]
) -> FlowConfig:
    return FlowConfig(
        clustering_config=PPAClusteringConfig(target_cluster_size=200),
        vpr_config=VPRConfig(
            min_cluster_instances=100,
            max_vpr_clusters=16,
            placer_iterations=4,
            candidates=default_candidate_grid()[:6],
        ),
        run_routing=False,
        checkpoint_dir=checkpoint_dir,
        cache_dir=cache_dir,
    )


def _edit_script(design) -> List[Dict[str, Any]]:
    """One resize: the canonical sub-1%-of-instances ECO."""
    victim = next(
        inst
        for inst in design.instances
        if inst.master.name == "NAND2_X1" and not inst.fixed
    )
    return [
        {"kind": "resize", "instance": victim.name, "master": "NAND2_X2"}
    ]


def _edited_design(num_instances: int, seed: int, edits):
    design = generate_design(_spec(num_instances, seed))
    if "NAND2_X2" not in design.masters:
        design.add_master(make_library()["NAND2_X2"])
    apply_edits(design, parse_edits(edits))
    return design


def _metrics_dict(metrics) -> Dict[str, Optional[float]]:
    return {field: getattr(metrics, field) for field in _METRIC_FIELDS}


def run_bench(
    num_instances: int, seed: int, repeats: int
) -> Dict[str, Any]:
    scratch = tempfile.mkdtemp(prefix="bench_eco_")
    ckpt = os.path.join(scratch, "ckpt")
    cache = os.path.join(scratch, "cache")
    try:
        # Base run: the checkpointed cold flow every ECO shortcuts.
        t0 = time.perf_counter()
        base = ClusteredPlacementFlow(_flow_config(ckpt, cache)).run(
            generate_design(_spec(num_instances, seed))
        )
        base_wall = time.perf_counter() - t0

        edits = _edit_script(generate_design(_spec(num_instances, seed)))
        touched_fraction = 1.0 / num_instances

        # Cold arm: full flow on the edited design, no checkpoint and a
        # fresh (empty) cache per repeat — the pre-ECO workflow.
        cold_wall = float("inf")
        cold_result = None
        for rep in range(max(1, repeats)):
            design = _edited_design(num_instances, seed, edits)
            config = _flow_config(None, os.path.join(scratch, f"cc{rep}"))
            t0 = time.perf_counter()
            result = ClusteredPlacementFlow(config).run(design)
            wall = time.perf_counter() - t0
            if wall < cold_wall:
                cold_wall, cold_result = wall, result

        # ECO arm: checkpoint + warm cache; fresh session per repeat.
        eco_wall = float("inf")
        eco_result = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = run_eco(ckpt, parse_edits(edits), cache_dir=cache)
            wall = time.perf_counter() - t0
            if wall < eco_wall:
                eco_wall, eco_result = wall, result

        # No-op arm: bit-identity against the base run's metrics.
        noop = run_eco(ckpt, [], cache_dir=cache)
        noop_identical = all(
            getattr(noop.metrics, field) == getattr(base.metrics, field)
            for field in _METRIC_FIELDS
        )

        assert cold_result is not None and eco_result is not None
        hpwl_cold = cold_result.metrics.hpwl
        hpwl_eco = eco_result.metrics.hpwl
        return {
            "num_instances": num_instances,
            "seed": seed,
            "repeats": repeats,
            "edits": edits,
            "touched_fraction": touched_fraction,
            "base": {
                "wall_s": round(base_wall, 4),
                "metrics": _metrics_dict(base.metrics),
            },
            "cold": {
                "wall_s": round(cold_wall, 4),
                "metrics": _metrics_dict(cold_result.metrics),
            },
            "eco": {
                "wall_s": round(eco_wall, 4),
                "metrics": _metrics_dict(eco_result.metrics),
                "dirty_clusters": len(eco_result.dirty_clusters),
                "reused_clusters": eco_result.reused_clusters,
                "free_instances": eco_result.free_instances,
                "total_instances": eco_result.total_instances,
                "runtimes_s": {
                    k: round(v, 4) for k, v in eco_result.runtimes.items()
                },
            },
            "noop": {
                "identical": noop_identical,
                "metrics": _metrics_dict(noop.metrics),
            },
            "speedup": round(cold_wall / max(eco_wall, 1e-9), 2),
            "hpwl_drift": round(
                abs(hpwl_eco - hpwl_cold) / max(hpwl_cold, 1e-9), 5
            ),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=6000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of-N walls per arm"
    )
    parser.add_argument(
        "--json", default="benchmarks/results/BENCH_eco.json", metavar="PATH"
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="enforce the speedup / QoR / no-op gates (exit 1 on failure)",
    )
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    result = run_bench(args.instances, args.seed, args.repeats)
    result["schema"] = SCHEMA
    result["gates"] = {
        "min_speedup": MIN_SPEEDUP,
        "max_hpwl_drift": MAX_HPWL_DRIFT,
        "max_touched_fraction": MAX_TOUCHED_FRACTION,
    }

    directory = os.path.dirname(args.json)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(args.json, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    eco = result["eco"]
    print(
        f"{args.instances} instances: cold={result['cold']['wall_s']:.2f}s "
        f"eco={eco['wall_s']:.2f}s -> {result['speedup']:.1f}x "
        f"(edit touches {result['touched_fraction'] * 100:.3f}% of cells)"
    )
    print(
        f"eco re-placed {eco['free_instances']}/{eco['total_instances']} "
        f"cells across {eco['dirty_clusters']} dirty clusters "
        f"({eco['reused_clusters']} reused); HPWL drift "
        f"{result['hpwl_drift'] * 100:.2f}%; "
        f"no-op identical: {result['noop']['identical']}"
    )
    print(f"wrote {args.json} ({time.perf_counter() - t0:.1f}s total)")

    if args.gate:
        failed = False
        if result["touched_fraction"] > MAX_TOUCHED_FRACTION:
            print(
                f"GATE FAILED: edit touches "
                f"{result['touched_fraction'] * 100:.2f}% of instances "
                f"(needs < {MAX_TOUCHED_FRACTION * 100:.0f}%)"
            )
            failed = True
        if result["speedup"] < MIN_SPEEDUP:
            print(
                f"GATE FAILED: speedup {result['speedup']:.2f}x "
                f"< {MIN_SPEEDUP:.0f}x"
            )
            failed = True
        if result["hpwl_drift"] > MAX_HPWL_DRIFT:
            print(
                f"GATE FAILED: HPWL drift {result['hpwl_drift'] * 100:.2f}% "
                f"> {MAX_HPWL_DRIFT * 100:.0f}%"
            )
            failed = True
        if not result["noop"]["identical"]:
            print("GATE FAILED: no-op ECO diverged from the base run")
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
