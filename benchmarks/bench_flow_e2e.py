"""End-to-end flow benchmark: per-stage wall times + QoR -> BENCH_flow.json.

Runs ``ClusteredPlacementFlow`` on the requested benchmarks at a fixed
seed and records, per design:

* per-stage wall-clock times (the ``runtimes`` dict the flow reports),
  including the paper's Table 2 "CPU" aggregate ``non_vpr_total``
  (hier_clustering + sta + clustering + cluster_place + seed +
  incremental_place);
* the QoR record (HPWL, and WNS/TNS/power when routing is enabled);
* identity hashes of the cluster assignment, the selected shapes, the
  final flat placement and the QoR values, so two runs of the flow can
  be asserted bit-identical;
* the ``repro.perf`` counters (cache hit rates, ``sta.incremental.*``
  arc-skip counters, ...).

Results are merged into ``BENCH_flow.json`` under a ``--label``
("before" / "after"); once both labels are present the speedup table
and hash-identity comparison are computed automatically, which is how
the committed before/after numbers in ``benchmarks/results/`` were
produced (see docs/performance.md).

With ``--run-json`` the same measurements are also emitted as a
``repro.telemetry/1`` run report whose metric streams
(``flow.wall.*``, ``flow.wallnorm.*``, ``qor.*``) feed the
``repro report diff`` regression gate used by the ``bench-flow`` CI
job (``make bench-flow``).  ``flow.wallnorm.*`` streams are wall times
divided by a fixed single-threaded NumPy calibration kernel measured
on the same host, so a 10% gate keeps meaning across machines of
different speeds.

Usage::

    python benchmarks/bench_flow_e2e.py --designs ariane,BlackParrot \
        --label after --json benchmarks/results/BENCH_flow.json
    python benchmarks/bench_flow_e2e.py --designs aes \
        --run-json bench-flow/run.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA = "repro.bench_flow/1"

#: The Table 2 "CPU" column: every flow stage except the V-P&R sweep.
NON_VPR_STAGES = (
    "hier_clustering",
    "sta",
    "clustering",
    "cluster_place",
    "seed",
    "incremental_place",
)


def calibration_seconds(reps: int = 5) -> float:
    """A fixed single-threaded NumPy kernel; returns its best wall time.

    Used to express wall times in host-independent units
    (``flow.wallnorm.*``): sort + prefix-sum + gather over 1M doubles,
    which tracks the memory-bound NumPy work the flow itself does and
    does not depend on BLAS threading.
    """
    rng = np.random.default_rng(12345)
    data = rng.standard_normal(1_000_000)
    index = rng.integers(0, len(data), len(data))
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        out = np.sort(data, kind="stable")
        out = np.cumsum(out)
        out = out[index]
        float(out.sum())
        best = min(best, time.perf_counter() - t0)
    return best


def _sha(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _qor_dict(metrics) -> Dict[str, float]:
    qor = {"hpwl": metrics.hpwl}
    for key in ("rwl", "wns", "tns", "power", "hold_wns", "hold_tns"):
        value = getattr(metrics, key, None)
        if value is not None:
            qor[key] = float(value)
    return qor


def run_design(
    name: str,
    seed: int = 0,
    routing: bool = False,
    repeats: int = 1,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the flow ``repeats`` times; best stage walls, first-run QoR.

    QoR and identity hashes are asserted identical across repeats (the
    flow is deterministic at a fixed seed), so taking the minimum wall
    time per stage never mixes results from different answers.
    """
    from repro import perf
    from repro.core import ClusteredPlacementFlow, FlowConfig
    from repro.designs import load_benchmark

    record: Optional[Dict[str, Any]] = None
    for rep in range(max(1, repeats)):
        design = load_benchmark(name, use_cache=False)
        perf.enable()
        perf.reset()
        config = FlowConfig(
            run_routing=routing, seed=seed, jobs=jobs, cache_dir=cache_dir
        )
        t0 = time.perf_counter()
        result = ClusteredPlacementFlow(config).run(design)
        wall_total = time.perf_counter() - t0
        counters = dict(perf.report().to_dict().get("counters") or {})
        # The per-design counter block always carries the evaluation
        # cache's hit/miss/store/evict counts (zeros when the counter
        # never fired), so warm/cold comparisons and the cache-smoke CI
        # job can read them without key-existence checks.
        for counter in (
            "vpr.cache.hit",
            "vpr.cache.miss",
            "vpr.cache.store",
            "vpr.cache.evict",
        ):
            counters.setdefault(counter, 0)
        perf.disable()

        runtimes = {k: float(v) for k, v in result.metrics.runtimes.items()}
        non_vpr = sum(runtimes.get(k, 0.0) for k in NON_VPR_STAGES)
        qor = _qor_dict(result.metrics)
        shapes = sorted(
            (int(c), float(s.aspect_ratio), float(s.utilization))
            for c, s in result.selection.shapes.items()
        )
        coords = np.concatenate(
            [
                np.array([i.x for i in design.instances], dtype=np.float64),
                np.array([i.y for i in design.instances], dtype=np.float64),
            ]
        )
        hashes = {
            "cluster_of": _sha(
                np.asarray(result.clustering.cluster_of, dtype=np.int64).tobytes()
            ),
            "shapes": _sha(repr(shapes).encode()),
            "placement": _sha(coords.tobytes()),
            "qor": _sha(
                json.dumps({k: repr(v) for k, v in qor.items()}, sort_keys=True).encode()
            ),
        }
        rep_record = {
            "design": name,
            "instances": design.num_instances,
            "nets": design.num_nets,
            "seed": seed,
            "routing": routing,
            "clusters": result.num_clusters,
            "stages": runtimes,
            "non_vpr_total": non_vpr,
            "wall_total": wall_total,
            "qor": qor,
            "hashes": hashes,
            "counters": counters,
        }
        if record is None:
            record = rep_record
        else:
            if record["hashes"] != hashes:
                raise AssertionError(
                    f"{name}: repeat {rep} diverged from repeat 0: "
                    f"{record['hashes']} vs {hashes}"
                )
            for key, value in runtimes.items():
                record["stages"][key] = min(record["stages"][key], value)
            record["non_vpr_total"] = sum(
                record["stages"].get(k, 0.0) for k in NON_VPR_STAGES
            )
            record["wall_total"] = min(record["wall_total"], wall_total)
    assert record is not None
    return record


# ----------------------------------------------------------------------
# BENCH_flow.json merging (before / after + speedups)
# ----------------------------------------------------------------------
def merge_bench_json(
    path: str, label: str, records: Dict[str, Dict[str, Any]], calib: float
) -> Dict[str, Any]:
    """Merge a labelled measurement set into BENCH_flow.json."""
    doc: Dict[str, Any] = {"schema": SCHEMA}
    if os.path.exists(path):
        with open(path) as handle:
            doc = json.load(handle)
        if doc.get("schema") != SCHEMA:
            raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    doc.setdefault("non_vpr_stages", list(NON_VPR_STAGES))
    doc[label] = {
        "calibration_seconds": calib,
        "designs": records,
    }
    if "before" in doc and "after" in doc:
        doc["comparison"] = compare(doc["before"], doc["after"])
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def compare(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Speedup table + identity verdicts for designs in both labels."""
    out: Dict[str, Any] = {}
    for name, b in before["designs"].items():
        a = after["designs"].get(name)
        if a is None:
            continue
        stages = {}
        for key in set(b["stages"]) | set(a["stages"]):
            bt, at = b["stages"].get(key), a["stages"].get(key)
            if bt and at:
                stages[key] = round(bt / at, 3)
        out[name] = {
            "non_vpr_total_before_s": round(b["non_vpr_total"], 4),
            "non_vpr_total_after_s": round(a["non_vpr_total"], 4),
            "non_vpr_speedup": round(b["non_vpr_total"] / a["non_vpr_total"], 3),
            "stage_speedups": stages,
            "identical_cluster_of": b["hashes"]["cluster_of"]
            == a["hashes"]["cluster_of"],
            "identical_shapes": b["hashes"]["shapes"] == a["hashes"]["shapes"],
            "identical_placement": b["hashes"]["placement"]
            == a["hashes"]["placement"],
            "identical_qor": b["hashes"]["qor"] == a["hashes"]["qor"],
        }
    return out


# ----------------------------------------------------------------------
# repro.telemetry/1 run report (the CI regression-gate artifact)
# ----------------------------------------------------------------------
def write_run_json(
    path: str, records: Dict[str, Dict[str, Any]], calib: float
) -> None:
    """Emit the measurements as a run report ``repro report diff`` groks.

    One-point metric streams per design:

    * ``flow.wall.<design>.<stage>`` and ``...non_vpr_total`` (seconds)
    * ``flow.wallnorm.<design>.non_vpr_total`` (calibration units; the
      10% wall-time gate stream — host-speed independent)
    * ``qor.<design>.<metric>`` (the any-regression QoR gate streams)
    """
    from repro.telemetry.report import RunReport

    metrics: Dict[str, Dict[str, Any]] = {}

    def stream(name: str, value: float) -> None:
        metrics[name] = {"steps": [0], "values": [float(value)]}

    for name, record in records.items():
        for stage, seconds in record["stages"].items():
            stream(f"flow.wall.{name}.{stage}", seconds)
        stream(f"flow.wall.{name}.non_vpr_total", record["non_vpr_total"])
        stream(
            f"flow.wallnorm.{name}.non_vpr_total",
            record["non_vpr_total"] / calib,
        )
        for metric, value in record["qor"].items():
            stream(f"qor.{name}.{metric}", value)
    report = RunReport(
        meta={
            "benchmark": "bench_flow_e2e",
            "designs": sorted(records),
            "seed": records[next(iter(records))]["seed"] if records else 0,
            "calibration_seconds": calib,
        },
        metrics=metrics,
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    report.write(path)


def gate_streams(records: Dict[str, Dict[str, Any]]) -> Dict[str, List[str]]:
    """The stream names the CI gate pins (missing => regression)."""
    wall = [f"flow.wallnorm.{name}.non_vpr_total" for name in sorted(records)]
    qor = [
        f"qor.{name}.{metric}"
        for name in sorted(records)
        for metric in sorted(records[name]["qor"])
    ]
    return {"wall": wall, "qor": qor}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--designs", default="ariane,BlackParrot", help="comma-separated"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--routing", action="store_true", help="run CTS+route+post-route STA"
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="evaluate V-P&R candidates through a cross-run cache in DIR "
        "(flow --cache); vpr.cache.* counters land in the counter block",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="merge results into this BENCH_flow.json under --label",
    )
    parser.add_argument("--label", default="after", choices=["before", "after"])
    parser.add_argument(
        "--run-json",
        default=None,
        metavar="PATH",
        help="also write a repro.telemetry/1 run report for `repro report diff`",
    )
    args = parser.parse_args(argv)

    calib = calibration_seconds()
    print(f"calibration kernel: {calib * 1e3:.1f} ms")
    records: Dict[str, Dict[str, Any]] = {}
    for name in [d.strip() for d in args.designs.split(",") if d.strip()]:
        t0 = time.perf_counter()
        record = run_design(
            name,
            seed=args.seed,
            routing=args.routing,
            repeats=args.repeats,
            jobs=args.jobs,
            cache_dir=args.cache,
        )
        records[record["design"]] = record
        print(
            f"{record['design']:<14} non_vpr={record['non_vpr_total']:.3f}s "
            f"vpr={record['stages'].get('vpr', 0.0):.3f}s "
            f"hpwl={record['qor']['hpwl']:.1f} "
            f"({time.perf_counter() - t0:.1f}s incl. load)"
        )
        for stage in NON_VPR_STAGES:
            if stage in record["stages"]:
                print(f"    {stage:<18}: {record['stages'][stage]:.3f} s")

    if args.json:
        doc = merge_bench_json(args.json, args.label, records, calib)
        print(f"wrote {args.json} [{args.label}]")
        for name, cmp in (doc.get("comparison") or {}).items():
            print(
                f"  {name}: non-vpr {cmp['non_vpr_total_before_s']:.3f}s -> "
                f"{cmp['non_vpr_total_after_s']:.3f}s "
                f"({cmp['non_vpr_speedup']:.2f}x), identical "
                f"cluster_of={cmp['identical_cluster_of']} "
                f"shapes={cmp['identical_shapes']} "
                f"placement={cmp['identical_placement']} "
                f"qor={cmp['identical_qor']}"
            )
    if args.run_json:
        write_run_json(args.run_json, records, calib)
        print(f"wrote {args.run_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
