"""V-P&R shape exploration for one cluster (Figure 3).

Extracts the largest PPA-aware cluster of a benchmark, sweeps the
paper's 20 (aspect ratio, utilization) candidates through virtualized
place-and-route, and prints the Total Cost surface plus the chosen
shape.  Then compares the flow-level effect of V-P&R, Random and
Uniform shape selection (the Table 6 ablation at example scale).

    python examples/shape_exploration.py [benchmark-name]
"""

import sys

from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.ppa_clustering import PPAClusteringConfig, ppa_aware_clustering
from repro.core.shapes import ASPECT_RATIOS, UTILIZATIONS
from repro.core.vpr import (
    RandomShapeSelector,
    UniformShapeSelector,
    VPRConfig,
    VPRFramework,
    VPRShapeSelector,
)
from repro.db import DesignDatabase
from repro.designs import load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jpeg"
    design = load_benchmark(name, use_cache=False)
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(
        db, PPAClusteringConfig(target_cluster_size=150)
    )
    members = clustering.members()
    config = VPRConfig(min_cluster_instances=100)
    framework = VPRFramework(config)
    eligible = framework.eligible_clusters(members)
    if not eligible:
        print("no cluster above the V-P&R bound; try a larger benchmark")
        return
    cluster = eligible[0]
    print(
        f"=== {name}: V-P&R sweep on cluster {cluster} "
        f"({len(members[cluster])} instances) ==="
    )
    sweep = framework.sweep_cluster(design, members[cluster], cluster_id=cluster)

    by_shape = {
        (e.candidate.aspect_ratio, e.candidate.utilization): e
        for e in sweep.evaluations
    }
    print("\nTotal Cost surface (rows: aspect ratio; cols: utilization):")
    header = "AR\\U " + "".join(f"{u:>9.2f}" for u in UTILIZATIONS)
    print(header)
    for ar in ASPECT_RATIOS:
        cells = []
        for u in UTILIZATIONS:
            ev = by_shape[(ar, u)]
            mark = "*" if ev.candidate == sweep.best else " "
            cells.append(f"{ev.total(config.delta):>8.4f}{mark}")
        print(f"{ar:>4.2f} " + "".join(cells))
    print(f"\nchosen shape: {sweep.best}  (sweep took {sweep.runtime:.2f}s)")

    print("\n=== flow-level shape ablation (post-route TNS) ===")
    for label, selector in (
        ("Random", RandomShapeSelector(seed=0)),
        ("Uniform", UniformShapeSelector()),
        ("V-P&R", VPRShapeSelector(config)),
    ):
        d = load_benchmark(name, use_cache=False)
        flow = ClusteredPlacementFlow(
            FlowConfig(tool="innovus", shape_selector=selector, vpr_config=config)
        )
        metrics = flow.run(d).metrics
        print(
            f"  {label:>8}: rWL={metrics.rwl:>10.0f}  "
            f"WNS={metrics.wns * 1e3:>7.0f}ps  TNS={metrics.tns:>8.2f}ns  "
            f"Power={metrics.power:.3f}mW"
        )


if __name__ == "__main__":
    main()
