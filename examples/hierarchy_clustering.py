"""Algorithm 2 walkthrough: dendrogram-based hierarchy clustering.

Shows the levelized dendrogram of a benchmark's logical hierarchy, the
weighted-average Rent exponent (Eq. 1) of each level's clustering, the
level Algorithm 2 selects, and how the result compares to
connectivity-only community detection.

    python examples/hierarchy_clustering.py [benchmark-name]
"""

import sys

from repro.cluster import AdjacencyGraph, louvain_communities
from repro.core import hierarchy_based_clustering, weighted_average_rent
from repro.core.hier_clustering import Dendrogram
from repro.db import DesignDatabase
from repro.designs import load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ariane"
    design = load_benchmark(name)
    db = DesignDatabase(design)
    tree = db.hierarchy
    hgraph = db.hypergraph

    print(f"=== {name}: logical hierarchy ===")
    print(f"modules: {tree.num_modules}, max depth: {tree.max_depth()}")

    dendrogram = Dendrogram.from_hierarchy(tree)
    print(f"dendrogram level_max: {dendrogram.level_max}")

    result = hierarchy_based_clustering(hgraph, tree)
    print("\nlevel   #clusters   R_avg (Eq. 1)")
    for level, rent in sorted(result.rent_by_level.items()):
        assignment = dendrogram.clustering_at_level(level)
        marker = "  <-- selected" if level == result.best_level else ""
        print(
            f"{level:>5}   {assignment.max() + 1:>9}   {rent:.4f}{marker}"
        )

    print(
        f"\nAlgorithm 2 picks level {result.best_level} "
        f"({result.num_clusters} clusters)."
    )

    # Compare against a connectivity-only clustering at similar
    # granularity: the hierarchy-based solution should have a
    # comparable (often better) Rent exponent despite using no
    # connectivity information at all.
    graph = AdjacencyGraph.from_hypergraph(hgraph)
    louvain = louvain_communities(graph, seed=0)
    print("\ncomparison (lower R_avg = better clustering):")
    print(
        f"  hierarchy (Alg. 2): "
        f"{weighted_average_rent(hgraph, result.cluster_of):.4f}"
    )
    print(
        f"  Louvain ({louvain.max() + 1} communities): "
        f"{weighted_average_rent(hgraph, louvain):.4f}"
    )


if __name__ == "__main__":
    main()
