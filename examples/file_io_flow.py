"""The file-based flow: .v/.lib/.def/.sdc in, cluster .lef out.

Algorithm 1's inputs are netlist files; this example writes a
benchmark out in all four formats, reloads it through the OpenDB-style
loader, runs the clustered flow, and writes the artefacts the paper's
flow produces: the cluster soft-macro .lef (line 13) and the placed
.def.

    python examples/file_io_flow.py [output-dir]
"""

import sys
from pathlib import Path

from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.clustered_netlist import build_clustered_netlist
from repro.db import load_design_files
from repro.designs import load_benchmark
from repro.netlist.def_format import write_def
from repro.netlist.lef import write_lef
from repro.netlist.liberty import write_liberty
from repro.netlist.sdc import SdcConstraints, write_sdc
from repro.netlist.verilog import write_verilog


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "/tmp/repro_aes")
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Write the benchmark to disk in the paper's input formats.
    design = load_benchmark("aes", use_cache=False)
    (out_dir / "aes.v").write_text(write_verilog(design))
    (out_dir / "aes.lib").write_text(write_liberty(design.masters))
    (out_dir / "aes.def").write_text(write_def(design))
    sdc = SdcConstraints(clock_period=design.clock_period, clock_port="clk")
    (out_dir / "aes.sdc").write_text(write_sdc(sdc))
    print(f"wrote aes.v/.lib/.def/.sdc to {out_dir}")

    # 2. Reload through the OpenDB-substitute loader.
    db = load_design_files(
        out_dir / "aes.v",
        out_dir / "aes.lib",
        def_path=out_dir / "aes.def",
        sdc_path=out_dir / "aes.sdc",
    )
    reloaded = db.design
    print(
        f"reloaded: {reloaded.num_instances} instances, "
        f"{reloaded.num_nets} nets, TCP {reloaded.clock_period} ns, "
        f"problems: {len(reloaded.validate())}"
    )

    # 3. Run the clustered flow on the reloaded design.
    flow = ClusteredPlacementFlow(FlowConfig(tool="openroad"))
    result = flow.run(reloaded)
    m = result.metrics
    print(
        f"flow done: {result.num_clusters} clusters, "
        f"HPWL={m.hpwl:.0f}um, rWL={m.rwl:.0f}um, "
        f"WNS={m.wns * 1e3:.0f}ps, TNS={m.tns:.2f}ns, "
        f"Power={m.power:.3f}mW"
    )

    # 4. Emit the flow artefacts: cluster .lef and placed .def.
    clustered = build_clustered_netlist(
        reloaded, result.clustering.cluster_of, shapes=result.selection.shapes
    )
    lef_macros = {m.name: m for m in clustered.lef.macros.values()}
    (out_dir / "aes_clusters.lef").write_text(write_lef(lef_macros))
    (out_dir / "aes_placed.def").write_text(write_def(reloaded))
    print(f"wrote aes_clusters.lef ({len(lef_macros)} macros) and aes_placed.def")


if __name__ == "__main__":
    main()
