"""Quickstart: the paper's flow vs the default flat flow on aes.

Runs Algorithm 1 end to end (PPA-aware clustering, V-P&R shape
selection, seeded placement, CTS + global routing, post-route STA and
power) and prints the Table 2/3-style comparison.

    python examples/quickstart.py [benchmark-name]
"""

import sys

from repro.core import ClusteredPlacementFlow, FlowConfig, default_flow
from repro.designs import load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "aes"
    print(f"=== {name} ===")

    design_default = load_benchmark(name, use_cache=False)
    print(
        f"design: {design_default.num_instances} instances, "
        f"{design_default.num_nets} nets, "
        f"TCP {design_default.clock_period} ns"
    )

    print("\nrunning the default flat flow ...")
    base = default_flow(design_default)

    print("running the clustered placement flow (ours) ...")
    design_ours = load_benchmark(name, use_cache=False)
    flow = ClusteredPlacementFlow(FlowConfig(tool="openroad"))
    ours = flow.run(design_ours)

    print(
        f"\nclustering: {ours.num_clusters} clusters "
        f"({ours.singleton_clusters} singletons kept unmerged), "
        f"{len(ours.selection.sweeps)} clusters shaped by V-P&R"
    )

    headers = f"{'metric':>12} {'default':>12} {'ours':>12} {'ratio':>8}"
    print("\n" + headers)
    print("-" * len(headers))
    rows = [
        ("HPWL (um)", base.metrics.hpwl, ours.metrics.hpwl),
        ("rWL (um)", base.metrics.rwl, ours.metrics.rwl),
        ("WNS (ps)", base.metrics.wns * 1e3, ours.metrics.wns * 1e3),
        ("TNS (ns)", base.metrics.tns, ours.metrics.tns),
        ("Power (mW)", base.metrics.power, ours.metrics.power),
        (
            "CPU (s)",
            base.metrics.placement_runtime,
            ours.metrics.placement_runtime,
        ),
    ]
    for label, a, b in rows:
        ratio = b / a if a else float("nan")
        print(f"{label:>12} {a:>12.2f} {b:>12.2f} {ratio:>8.3f}")


if __name__ == "__main__":
    main()
