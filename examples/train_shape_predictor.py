"""Train the Total-Cost GNN and use it to accelerate V-P&R.

Reproduces the Section 3.2 / 4.4 pipeline at example scale:

1. generate labelled (cluster, shape) samples by perturbing the
   clustering hyperparameters and labelling with exact V-P&R,
2. train the 4-branch hypergraph-convolution model (Figure 4),
3. report MAE / R^2 on train / val / test,
4. plug the trained predictor into the flow as the ML-accelerated
   shape selector and compare its selections with exact V-P&R.

    python examples/train_shape_predictor.py
"""

import time

import numpy as np

from repro.core.ppa_clustering import PPAClusteringConfig, ppa_aware_clustering
from repro.core.shapes import default_candidate_grid
from repro.core.vpr import VPRConfig, VPRFramework, extract_subnetlist
from repro.db import DesignDatabase
from repro.designs import load_benchmark
from repro.ml import (
    DatasetConfig,
    FeatureExtractor,
    TotalCostPredictor,
    TrainingConfig,
    build_dataset,
    split_dataset,
    train_model,
)


def main() -> None:
    print("=== 1. dataset generation (exact V-P&R labels) ===")
    t0 = time.time()
    designs = [load_benchmark("aes", use_cache=False)]
    dataset_config = DatasetConfig(
        max_clusters_per_design=8,
        min_cluster_instances=40,
        max_cluster_instances=400,
        perturbation_seeds=(0, 1),
        cluster_sizes=(60, 120),
        vpr=VPRConfig(placer_iterations=4),
    )
    samples = build_dataset(designs, dataset_config)
    labels = np.array([s.label for s in samples])
    print(
        f"{len(samples)} samples in {time.time() - t0:.1f}s; "
        f"labels in [{labels.min():.3f}, {labels.max():.3f}]"
    )

    print("\n=== 2. training (Figure 4 architecture) ===")
    train, val, test = split_dataset(samples, seed=0)
    result = train_model(
        train, val, test, TrainingConfig(epochs=15, batch_size=24, seed=0)
    )
    print(f"trained in {result.runtime:.1f}s")
    for split in ("train", "val", "test"):
        m = result.metrics[split]
        print(f"  {split:>5}: MAE={m['mae']:.4f}  R2={m['r2']:.3f}")
    print(
        "  (example-sized corpus: held-out R2 is noisy here; "
        "benchmarks/bench_gnn_accuracy.py trains the full corpus)"
    )

    print("\n=== 3. ML-accelerated shape selection vs exact V-P&R ===")
    design = load_benchmark("jpeg", use_cache=False)
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(
        db, PPAClusteringConfig(target_cluster_size=150)
    )
    members = clustering.members()
    config = VPRConfig(min_cluster_instances=100)
    framework = VPRFramework(config)
    predictor = TotalCostPredictor(result.model, FeatureExtractor())
    candidates = default_candidate_grid()

    for cluster in framework.eligible_clusters(members)[:3]:
        t0 = time.time()
        sweep = framework.sweep_cluster(design, members[cluster], cluster)
        exact_time = time.time() - t0

        t0 = time.time()
        sub = extract_subnetlist(design, members[cluster])
        costs = predictor(sub, candidates)
        ml_time = time.time() - t0
        ml_choice = candidates[int(np.argmin(costs))]
        print(
            f"  cluster {cluster:>4} ({len(members[cluster])} insts): "
            f"exact={sweep.best} ({exact_time:.2f}s)  "
            f"ml={ml_choice} ({ml_time:.2f}s, {exact_time / ml_time:.0f}x faster)"
        )


if __name__ == "__main__":
    main()
