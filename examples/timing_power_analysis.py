"""Standalone STA / power analysis walkthrough (the OpenSTA-substitute
API the clustering consumes).

Shows the artefacts Algorithm 1 extracts before clustering: the top-|P|
critical paths (findPathEnds-equivalent), per-net switching activity
(findClkedActivity-equivalent) and the vectorless power breakdown —
then re-runs timing post-placement and post-routing to show the model
fidelity ladder.

    python examples/timing_power_analysis.py [benchmark-name]
"""

import sys

from repro.designs import load_benchmark
from repro.place import GlobalPlacer, PlacementProblem
from repro.route import GlobalRouter, synthesize_clock_tree
from repro.sta import (
    FanoutWireModel,
    PlacementWireModel,
    RoutedWireModel,
    TimingAnalyzer,
    TimingGraph,
    analyze_power,
    find_path_ends,
    propagate_activity,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jpeg"
    design = load_benchmark(name, use_cache=False)
    graph = TimingGraph(design)
    print(f"=== {name}: timing graph ===")
    print(
        f"{graph.num_nodes} pins, "
        f"{len(graph.startpoints)} startpoints, "
        f"{len(graph.endpoints)} endpoints"
    )

    # --- Pre-placement (the model the clustering uses) -----------------
    analyzer = TimingAnalyzer(graph, FanoutWireModel(design))
    report = analyzer.update()
    print(
        f"\npre-place (fanout wireload): WNS={report.wns * 1e3:.0f}ps "
        f"TNS={report.tns:.2f}ns failing={report.num_failing}"
    )
    paths = find_path_ends(analyzer, group_count=5)
    print("top critical paths:")
    for path in paths:
        start = analyzer.graph.node_name(path.startpoint)
        end = analyzer.graph.node_name(path.endpoint)
        print(
            f"  slack={path.slack * 1e3:>8.0f}ps  stages={len(path) // 2:>3}  "
            f"{start} -> {end}"
        )

    activity = propagate_activity(graph)
    hot = sorted(activity.items(), key=lambda kv: -kv[1])[:3]
    print("\nhighest switching activity nets:")
    for net_index, a in hot:
        print(f"  {design.nets[net_index].name}: {a:.3f} toggles/cycle")

    # --- Post-placement -------------------------------------------------
    GlobalPlacer(PlacementProblem(design)).run()
    placed = TimingAnalyzer(graph, PlacementWireModel(design)).update()
    print(
        f"\npost-place: WNS={placed.wns * 1e3:.0f}ps TNS={placed.tns:.2f}ns"
    )

    # --- Post-routing ----------------------------------------------------
    cts = synthesize_clock_tree(design)
    routing = GlobalRouter(design).run()
    wire_model = RoutedWireModel(design, routing.net_lengths)
    routed = TimingAnalyzer(
        graph, wire_model, clock_uncertainty=cts.skew
    ).update()
    print(
        f"post-route: WNS={routed.wns * 1e3:.0f}ps TNS={routed.tns:.2f}ns  "
        f"(rWL={routing.routed_wirelength:.0f}um, "
        f"clock WL={cts.wirelength:.0f}um, skew={cts.skew * 1e3:.2f}ps)"
    )

    power = analyze_power(
        design,
        wire_model,
        net_activity=activity,
        clock_wirelength=cts.wirelength,
        clock_buffers=cts.num_buffers,
    )
    print(
        f"\npower: total={power.total:.3f}mW  "
        f"(switching={power.switching:.3f}, internal={power.internal:.3f}, "
        f"leakage={power.leakage:.4f}, clock={power.clock:.3f})"
    )


if __name__ == "__main__":
    main()
