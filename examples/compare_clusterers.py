"""Compare clustering algorithms: structural quality vs. PPA outcome.

The paper argues (Section 2) that cutsize/modularity objectives are not
well correlated with PPA.  This example makes that argument measurable:
for each clusterer (PPA-aware, plain FC, Best Choice, edge coarsening,
Louvain, Leiden), print the structural quality metrics next to the
post-route TNS the same clusters produce through the seeded-placement
flow — the clusterer with the best cut is typically *not* the one with
the best TNS.

    python examples/compare_clusterers.py [benchmark-name]
"""

import sys

from repro.cluster import (
    AdjacencyGraph,
    best_choice_clustering,
    edge_coarsening,
    first_choice_clustering,
    leiden_communities,
    louvain_communities,
    modularity,
)
from repro.cluster.evaluation import evaluate_clustering
from repro.cluster.fc import FirstChoiceConfig
from repro.core import ClusteredPlacementFlow, FlowConfig
from repro.core.ppa_clustering import ppa_aware_clustering
from repro.core.rent import weighted_average_rent
from repro.db import DesignDatabase
from repro.designs import load_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jpeg"
    base = load_benchmark(name)
    db = DesignDatabase(base)
    hgraph = db.hypergraph
    graph = AdjacencyGraph.from_hypergraph(hgraph)
    target = max(8, hgraph.num_vertices // 100)

    clusterings = {
        "ppa": ppa_aware_clustering(db).cluster_of,
        "mfc": first_choice_clustering(
            hgraph, FirstChoiceConfig(target_clusters=target)
        ),
        "bc": best_choice_clustering(hgraph, target_clusters=target),
        "ec": edge_coarsening(hgraph, target_clusters=target),
        "louvain": louvain_communities(graph, seed=0),
        "leiden": leiden_communities(graph, seed=0),
    }

    print(f"=== {name}: structural quality ===")
    header = (
        f"{'method':>8} {'k':>5} {'cut':>7} {'conduct':>8} "
        f"{'rent':>7} {'Q':>7}"
    )
    print(header)
    for label, cluster_of in clusterings.items():
        quality = evaluate_clustering(hgraph, cluster_of)
        rent = weighted_average_rent(hgraph, cluster_of)
        q = modularity(graph, cluster_of)
        print(
            f"{label:>8} {quality.num_clusters:>5} "
            f"{quality.cut_fraction:>7.3f} {quality.mean_conductance:>8.3f} "
            f"{rent:>7.3f} {q:>7.3f}"
        )

    print(f"\n=== {name}: PPA through the seeded flow (post-route) ===")
    print(f"{'method':>8} {'rWL(um)':>10} {'WNS(ps)':>8} {'TNS(ns)':>8} {'P(mW)':>7}")
    for method in ("ppa", "mfc", "leiden", "louvain", "bc", "ec"):
        design = load_benchmark(name, use_cache=False)
        flow = ClusteredPlacementFlow(
            FlowConfig(tool="openroad", clustering=method)
        )
        metrics = flow.run(design).metrics
        print(
            f"{method:>8} {metrics.rwl:>10.0f} {metrics.wns * 1e3:>8.0f} "
            f"{metrics.tns:>8.2f} {metrics.power:>7.3f}"
        )


if __name__ == "__main__":
    main()
