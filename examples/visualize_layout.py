"""Render placement, cluster map and congestion SVGs for a benchmark.

Produces the figures a placement paper is made of: the flat placement,
the same placement coloured by PPA-aware cluster, and the post-route
GCell congestion heat map.

    python examples/visualize_layout.py [benchmark-name] [output-dir]
"""

import sys
from pathlib import Path

from repro.core.ppa_clustering import ppa_aware_clustering
from repro.db import DesignDatabase
from repro.designs import load_benchmark
from repro.place import GlobalPlacer, PlacementProblem
from repro.route import GlobalRouter
from repro.viz import (
    render_clusters_svg,
    render_congestion_svg,
    render_placement_svg,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jpeg"
    out_dir = Path(sys.argv[2] if len(sys.argv) > 2 else "/tmp/repro_viz")
    out_dir.mkdir(parents=True, exist_ok=True)

    design = load_benchmark(name, use_cache=False)
    db = DesignDatabase(design)
    clustering = ppa_aware_clustering(db)
    GlobalPlacer(PlacementProblem(design)).run()
    routing = GlobalRouter(design).run()

    placement = out_dir / f"{name}_placement.svg"
    clusters = out_dir / f"{name}_clusters.svg"
    congestion = out_dir / f"{name}_congestion.svg"
    render_placement_svg(design, path=str(placement))
    render_clusters_svg(design, clustering.cluster_of, path=str(clusters))
    render_congestion_svg(design, routing.grid, path=str(congestion))

    print(f"{name}: {design.num_instances} instances, "
          f"{clustering.num_clusters} clusters")
    print(f"wrote {placement}")
    print(f"wrote {clusters}")
    print(f"wrote {congestion} "
          f"(max congestion {routing.max_congestion:.2f})")


if __name__ == "__main__":
    main()
